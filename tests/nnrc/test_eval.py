"""Unit tests for NNRC semantics (paper §5)."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.data.operators import OpAdd, OpBag, OpDot, OpEq, OpFlatten
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc
from repro.nraenv.eval import EvalError


class TestBasics:
    def test_var(self):
        assert eval_nnrc(ast.Var("x"), {"x": 3}) == 3

    def test_unbound_var(self):
        with pytest.raises(EvalError):
            eval_nnrc(ast.Var("x"))

    def test_const(self):
        assert eval_nnrc(ast.Const(bag(1))) == bag(1)

    def test_get_constant(self):
        assert eval_nnrc(ast.GetConstant("T"), {}, {"T": 5}) == 5

    def test_unop_binop(self):
        expr = ast.Binop(OpAdd(), ast.Const(1), ast.Unop(OpDot("a"), ast.Var("r")))
        assert eval_nnrc(expr, {"r": rec(a=2)}) == 3


class TestBinders:
    def test_let(self):
        expr = ast.Let("x", ast.Const(2), ast.Binop(OpAdd(), ast.Var("x"), ast.Var("x")))
        assert eval_nnrc(expr) == 4

    def test_let_shadowing(self):
        expr = ast.Let("x", ast.Const(1), ast.Let("x", ast.Const(2), ast.Var("x")))
        assert eval_nnrc(expr) == 2

    def test_let_is_strict(self):
        failing = ast.Unop(OpDot("a"), ast.Const(5))
        expr = ast.Let("x", failing, ast.Const(0))
        with pytest.raises(EvalError):
            eval_nnrc(expr)

    def test_for_comprehension(self):
        expr = ast.For("x", ast.Const(bag(1, 2, 3)), ast.Binop(OpAdd(), ast.Var("x"), ast.Const(10)))
        assert eval_nnrc(expr) == bag(11, 12, 13)

    def test_for_over_empty(self):
        expr = ast.For("x", ast.Const(Bag([])), ast.Var("x"))
        assert eval_nnrc(expr) == Bag([])

    def test_for_over_non_bag(self):
        with pytest.raises(EvalError):
            eval_nnrc(ast.For("x", ast.Const(5), ast.Var("x")))

    def test_nested_for(self):
        expr = ast.For(
            "x",
            ast.Const(bag(bag(1), bag(2, 3))),
            ast.For("y", ast.Var("x"), ast.Var("y")),
        )
        # {{y | y ∈ x} | x ∈ ...}: the inner comprehension rebuilds each
        # inner bag, so the result keeps the nesting.
        assert eval_nnrc(expr) == bag(bag(1), bag(2, 3))

    def test_outer_var_visible_in_for_body(self):
        expr = ast.Let(
            "k",
            ast.Const(10),
            ast.For("x", ast.Const(bag(1, 2)), ast.Binop(OpAdd(), ast.Var("x"), ast.Var("k"))),
        )
        assert eval_nnrc(expr) == bag(11, 12)


class TestIf:
    def test_branches(self):
        assert eval_nnrc(ast.If(ast.Const(True), ast.Const(1), ast.Const(2))) == 1
        assert eval_nnrc(ast.If(ast.Const(False), ast.Const(1), ast.Const(2))) == 2

    def test_laziness(self):
        failing = ast.Unop(OpDot("a"), ast.Const(5))
        assert eval_nnrc(ast.If(ast.Const(True), ast.Const(1), failing)) == 1

    def test_non_boolean_condition(self):
        with pytest.raises(EvalError):
            eval_nnrc(ast.If(ast.Const(3), ast.Const(1), ast.Const(2)))


class TestMetrics:
    def test_size(self):
        expr = ast.Let("x", ast.Const(1), ast.Var("x"))
        assert expr.size() == 3

    def test_depth_counts_binders(self):
        expr = ast.For("x", ast.Const(bag()), ast.Let("y", ast.Var("x"), ast.Var("y")))
        assert expr.depth() == 2
        assert ast.Const(1).depth() == 0

    def test_equality_structural(self):
        left = ast.Let("x", ast.Const(1), ast.Var("x"))
        right = ast.Let("x", ast.Const(1), ast.Var("x"))
        other = ast.Let("y", ast.Const(1), ast.Var("y"))
        assert left == right
        assert left != other  # equality is literal, not α-equivalence

    def test_pretty(self):
        expr = ast.For("x", ast.Const(bag(1)), ast.Var("x"))
        assert repr(expr) == "{x | x ∈ {1}}"
