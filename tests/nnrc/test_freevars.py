"""Unit tests for free variables and capture-avoiding substitution."""

from repro.data.model import bag
from repro.data.operators import OpAdd, OpBag
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc
from repro.nnrc.freevars import (
    FreshNames,
    all_names,
    bound_vars,
    count_occurrences,
    free_vars,
    rename_bound,
    substitute,
)


def add(left, right):
    return ast.Binop(OpAdd(), left, right)


class TestFreeVars:
    def test_var_is_free(self):
        assert free_vars(ast.Var("x")) == {"x"}

    def test_let_binds(self):
        expr = ast.Let("x", ast.Var("y"), ast.Var("x"))
        assert free_vars(expr) == {"y"}

    def test_let_defn_not_in_scope(self):
        expr = ast.Let("x", ast.Var("x"), ast.Var("x"))
        assert free_vars(expr) == {"x"}  # the defn's x is free

    def test_for_binds(self):
        expr = ast.For("x", ast.Var("xs"), add(ast.Var("x"), ast.Var("y")))
        assert free_vars(expr) == {"xs", "y"}

    def test_bound_vars(self):
        expr = ast.Let("x", ast.Const(1), ast.For("y", ast.Var("x"), ast.Var("y")))
        assert bound_vars(expr) == {"x", "y"}


class TestCountOccurrences:
    def test_counts_free_only(self):
        expr = ast.Let("x", ast.Var("x"), ast.Var("x"))
        assert count_occurrences(expr, "x") == 1  # only the defn occurrence

    def test_counts_multiple(self):
        expr = add(ast.Var("x"), add(ast.Var("x"), ast.Var("y")))
        assert count_occurrences(expr, "x") == 2


class TestSubstitute:
    def test_simple(self):
        assert substitute(ast.Var("x"), "x", ast.Const(1)) == ast.Const(1)

    def test_shadowed_occurrence_untouched(self):
        expr = ast.Let("x", ast.Var("x"), ast.Var("x"))
        result = substitute(expr, "x", ast.Const(9))
        assert result == ast.Let("x", ast.Const(9), ast.Var("x"))

    def test_capture_avoidance(self):
        # (let y = 1 in x + y)[y/x] must NOT capture the payload's y.
        expr = ast.Let("y", ast.Const(1), add(ast.Var("x"), ast.Var("y")))
        result = substitute(expr, "x", ast.Var("y"))
        # Semantics check with y bound in the outer environment:
        assert eval_nnrc(result, {"y": 100}) == 101

    def test_capture_avoidance_in_for(self):
        expr = ast.For("y", ast.Const(bag(1, 2)), add(ast.Var("x"), ast.Var("y")))
        result = substitute(expr, "x", ast.Var("y"))
        assert eval_nnrc(result, {"y": 10}) == bag(11, 12)

    def test_substitution_preserves_semantics(self):
        expr = ast.Let("a", ast.Var("x"), add(ast.Var("a"), ast.Var("x")))
        result = substitute(expr, "x", ast.Const(5))
        assert eval_nnrc(result) == eval_nnrc(expr, {"x": 5}) == 10


class TestRenameBound:
    def test_normalises_shadowing(self):
        expr = ast.Let("x", ast.Const(1), ast.Let("x", ast.Const(2), ast.Var("x")))
        renamed = rename_bound(expr, FreshNames(avoid=all_names(expr)))
        assert eval_nnrc(renamed) == eval_nnrc(expr) == 2
        binders = [n.var for n in renamed.walk() if isinstance(n, ast.Let)]
        assert len(set(binders)) == 2  # distinct names now

    def test_free_vars_unchanged(self):
        expr = ast.For("x", ast.Var("xs"), add(ast.Var("x"), ast.Var("y")))
        renamed = rename_bound(expr, FreshNames(avoid=all_names(expr)))
        assert free_vars(renamed) == {"xs", "y"}


class TestFreshNames:
    def test_avoids_given_names(self):
        names = FreshNames(avoid=["x0", "x1"])
        assert names.fresh("x") == "x2"

    def test_never_repeats(self):
        names = FreshNames()
        generated = {names.fresh() for _ in range(50)}
        assert len(generated) == 50
