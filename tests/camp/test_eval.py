"""Unit tests for CAMP semantics (paper §7): matching, failure, unification."""

import pytest

from repro.camp import (
    MatchFail,
    PAssert,
    PBinop,
    PConst,
    PEnv,
    PGetConstant,
    PIt,
    PLetEnv,
    PLetIt,
    PMap,
    POrElse,
    PUnop,
    eval_camp,
    matches,
)
from repro.data.model import Bag, Record, bag, rec
from repro.data.operators import OpDot, OpEq, OpLt, OpRec
from repro.nraenv.eval import EvalError


class TestBasics:
    def test_const(self):
        assert eval_camp(PConst(5), None) == 5

    def test_it(self):
        assert eval_camp(PIt(), 42) == 42

    def test_env(self):
        assert eval_camp(PEnv(), None, rec(x=1)) == rec(x=1)

    def test_get_constant(self):
        assert eval_camp(PGetConstant("W"), None, None, {"W": bag(1)}) == bag(1)

    def test_let_it(self):
        pattern = PLetIt(PConst(rec(a=7)), PUnop(OpDot("a"), PIt()))
        assert eval_camp(pattern, None) == 7


class TestUnification:
    def test_let_env_merges_compatible_bindings(self):
        pattern = PLetEnv(PConst(rec(y=2)), PEnv())
        assert eval_camp(pattern, None, rec(x=1)) == rec(x=1, y=2)

    def test_let_env_same_binding_unifies(self):
        # Re-binding x to the same value succeeds (unification, not shadowing).
        pattern = PLetEnv(PConst(rec(x=1)), PEnv())
        assert eval_camp(pattern, None, rec(x=1)) == rec(x=1)

    def test_let_env_conflicting_binding_fails(self):
        pattern = PLetEnv(PConst(rec(x=2)), PEnv())
        with pytest.raises(MatchFail):
            eval_camp(pattern, None, rec(x=1))

    def test_let_env_requires_record(self):
        with pytest.raises(EvalError):
            eval_camp(PLetEnv(PConst(5), PEnv()), None)


class TestFailureHandling:
    def test_assert_true_returns_empty_record(self):
        assert eval_camp(PAssert(PConst(True)), None) == Record({})

    def test_assert_false_fails(self):
        with pytest.raises(MatchFail):
            eval_camp(PAssert(PConst(False)), None)

    def test_assert_non_boolean_is_terminal(self):
        with pytest.raises(EvalError):
            eval_camp(PAssert(PConst(3)), None)

    def test_orelse_recovers_from_match_failure(self):
        pattern = POrElse(PAssert(PConst(False)), PConst("saved"))
        assert eval_camp(pattern, None) == "saved"

    def test_orelse_does_not_recover_terminal_errors(self):
        pattern = POrElse(PUnop(OpDot("a"), PConst(5)), PConst("saved"))
        with pytest.raises(EvalError):
            eval_camp(pattern, None)

    def test_map_collects_successes_only(self):
        # keep elements > 2, returning them
        keep = PLetIt(
            PBinop(OpLt(), PConst(2), PIt()),
            PLetIt(PAssert(PIt()), PConst(None)),
        )
        # simpler: assert it > 2 then return it
        keep = PLetEnv(PAssert(PBinop(OpLt(), PConst(2), PIt())), PIt())
        assert eval_camp(PMap(keep), bag(1, 2, 3, 4)) == bag(3, 4)

    def test_map_never_fails_itself(self):
        always_fail = PAssert(PConst(False))
        assert eval_camp(PMap(always_fail), bag(1, 2)) == Bag([])

    def test_map_requires_bag(self):
        with pytest.raises(EvalError):
            eval_camp(PMap(PIt()), 5)

    def test_matches_returns_none_on_failure(self):
        assert matches(PAssert(PConst(False)), None) is None
        assert matches(PConst(1), None) == 1


class TestAggregationIdiom:
    def test_sum_over_matches(self):
        from repro.data.operators import OpSum

        keep = PLetEnv(PAssert(PBinop(OpLt(), PConst(1), PIt())), PIt())
        pattern = PUnop(OpSum(), PMap(keep))
        assert eval_camp(pattern, bag(1, 2, 3)) == 5

    def test_pretty(self):
        pattern = PLetEnv(PUnop(OpRec("x"), PIt()), PEnv())
        assert repr(pattern) == "let env += rec(it) in env"
