"""Cross-cutting integration tests: every path agrees on every answer.

For each CAMP suite program, six evaluations must coincide:

1. CAMP interpreter (the semantics of record);
2. NRAe interpreter on the translated plan;
3. NRAe interpreter on the *optimized* plan;
4. NRA interpreter on the direct CAMP→NRA plan (optimized);
5. NNRC interpreter on the fully compiled expression;
6. generated Python code.

This is the strongest end-to-end statement the repository makes — the
analog of Q*cert's stacked correctness theorems.
"""

import pytest

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.compiler.pipeline import compile_camp, compile_camp_via_nra
from repro.data.model import Record, bag
from repro.nnrc.eval import eval_nnrc
from repro.nra import eval_nra
from repro.nraenv.eval import eval_nraenv
from repro.optim.defaults import optimize_nra, optimize_nraenv
from repro.translate.camp_to_nra import camp_to_nra, encode_input
from repro.translate.camp_to_nraenv import camp_to_nraenv


@pytest.mark.parametrize("name", ["p%02d" % i for i in range(1, 15)])
def test_all_paths_agree(name, camp_programs):
    program = camp_programs[name]
    constants = {"WORLD": program.world}
    env = Record({})
    expected = bag(program.run())

    # 2. translated NRAe plan
    plan = camp_to_nraenv(program.pattern)
    assert eval_nraenv(plan, env, program.world, constants) == expected

    # 3. optimized NRAe plan
    optimized = optimize_nraenv(plan).plan
    assert eval_nraenv(optimized, env, program.world, constants) == expected

    # 4. direct NRA plan, optimized
    nra_plan = optimize_nra(camp_to_nra(program.pattern)).plan
    assert eval_nra(nra_plan, encode_input(env, program.world), constants) == expected

    # 5. compiled NNRC
    compiled = compile_camp(program.pattern)
    nnrc_env = {"d0": program.world, "e0": env}
    assert eval_nnrc(compiled.final, nnrc_env, constants) == expected

    # 6. generated Python
    fn = compile_nnrc_to_callable(compiled.final, name=name)
    assert fn(constants, program.world, env) == expected


@pytest.mark.parametrize("name", ["p01", "p06", "p12"])
def test_via_nra_pipeline_agrees(name, camp_programs):
    program = camp_programs[name]
    constants = {"WORLD": program.world}
    expected = bag(program.run())
    result = compile_camp_via_nra(program.pattern)
    nnrc_env = {"d0": encode_input(Record({}), program.world)}
    assert eval_nnrc(result.final, nnrc_env, constants) == expected


def test_sql_view_example_from_paper(tpch_db):
    """§6's revenue0 view (TPC-H q15): the full script end to end."""
    from repro.compiler.pipeline import compile_sql
    from repro.tpch.queries import QUERIES
    from repro.tpch.reference import REFERENCES

    result = compile_sql(QUERIES["q15"])
    fn = compile_nnrc_to_callable(result.final, name="q15")
    rows = fn(tpch_db)
    expected = REFERENCES["q15"](tpch_db)
    assert len(rows) == len(expected)
    got = sorted(row["s_suppkey"] for row in rows)
    assert got == sorted(row["s_suppkey"] for row in expected)


def test_lnra_to_python_quickstart(people):
    """The README quickstart path: NRAλ → … → Python function."""
    from repro.compiler.pipeline import compile_lnra, compile_to_python
    from repro.data.operators import OpDot, OpLt
    from repro.lambda_nra import Lambda, LBinop, LConst, LFilter, LMap, LTable, LUnop, LVar

    expr = LMap(
        Lambda("p", LUnop(OpDot("name"), LVar("p"))),
        LFilter(
            Lambda("p", LBinop(OpLt(), LUnop(OpDot("age"), LVar("p")), LConst(35))),
            LTable("people"),
        ),
    )
    result = compile_lnra(expr)
    fn = compile_to_python(result.final)
    assert fn({"people": people}) == bag("bob", "cyd")
