"""Correctness of NRAe → NNRC (Figure 5) and NRA → NNRC.

    eval_nraenv(q, γ, d) == eval_nnrc(JqK_{xd,xe}, {xd: d, xe: γ})
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, bag, rec
from repro.nnrc import ast as nnrc
from repro.nnrc.eval import eval_nnrc
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.verify import (
    gen_plan,
    random_constants,
    random_datum,
    random_environment,
)
from repro.translate.nraenv_to_nnrc import nra_to_nnrc, nraenv_to_nnrc

_FAILED = object()


def roundtrip(plan, env, datum, constants):
    try:
        expected = eval_nraenv(plan, env, datum, constants)
    except EvalError:
        expected = _FAILED
    expr = nraenv_to_nnrc(plan)
    try:
        actual = eval_nnrc(expr, {"d0": datum, "e0": env}, constants)
    except EvalError:
        actual = _FAILED
    if expected is _FAILED:
        assert actual is _FAILED
    else:
        assert actual == expected, "plan %r -> %r" % (plan, expr)


TABLE = {"T": bag(rec(a=1, b=2), rec(a=3, b=4))}


class TestPerConstructor:
    def test_in_and_env_map_to_variables(self):
        assert nraenv_to_nnrc(b.id_()) == nnrc.Var("d0")
        assert nraenv_to_nnrc(b.env()) == nnrc.Var("e0")

    def test_comp_becomes_let(self):
        expr = nraenv_to_nnrc(b.comp(b.id_(), b.const(1)))
        assert isinstance(expr, nnrc.Let)

    def test_map_becomes_comprehension(self):
        expr = nraenv_to_nnrc(b.chi(b.id_(), b.table("T")))
        assert isinstance(expr, nnrc.For)

    def test_map(self):
        roundtrip(b.chi(b.dot(b.id_(), "a"), b.table("T")), rec(), None, TABLE)

    def test_select(self):
        plan = b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.table("T"))
        roundtrip(plan, rec(), None, TABLE)

    def test_product(self):
        plan = b.product(b.table("T"), b.coll(b.rec_field("z", b.const(9))))
        roundtrip(plan, rec(), None, TABLE)

    def test_dep_join(self):
        body = b.coll(b.rec_field("c", b.dot(b.id_(), "a")))
        roundtrip(b.djoin(body, b.table("T")), rec(), None, TABLE)

    def test_default_empty_and_nonempty(self):
        roundtrip(b.default(b.const(Bag([])), b.table("T")), rec(), None, TABLE)
        roundtrip(b.default(b.table("T"), b.const(Bag([]))), rec(), None, TABLE)

    def test_appenv(self):
        plan = b.appenv(b.dot(b.env(), "y"), b.const(rec(y=3)))
        roundtrip(plan, rec(x=1), None, {})

    def test_mapenv(self):
        plan = b.appenv(b.chie(b.dot(b.env(), "u")), b.const(bag(rec(u=1), rec(u=2))))
        roundtrip(plan, rec(), None, {})

    def test_environment_visible_inside_map_body(self):
        plan = b.chi(b.dot(b.env(), "x"), b.table("T"))
        roundtrip(plan, rec(x=7), None, TABLE)

    def test_failure_preserved(self):
        roundtrip(b.dot(b.id_(), "nope"), rec(), 5, {})


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=80, deadline=None)
def test_figure5_on_random_plans(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    env = random_environment(rng, bag_env=rng.random() < 0.2)
    datum = random_datum(rng)
    constants = random_constants(rng)
    roundtrip(plan, env, datum, constants)


class TestNraToNnrc:
    def test_requires_pure_nra(self):
        with pytest.raises(ValueError):
            nra_to_nnrc(b.env())

    def test_agrees_with_nra_eval(self):
        from repro.nra import eval_nra

        plan = b.chi(b.dot(b.id_(), "a"), b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.id_()))
        datum = bag(rec(a=1), rec(a=2))
        expr = nra_to_nnrc(plan)
        assert eval_nnrc(expr, {"d0": datum}) == eval_nra(plan, datum)
