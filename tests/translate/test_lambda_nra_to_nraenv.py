"""Correctness of the NRAλ → NRAe translation (paper Figure 6)."""

from repro.data.model import Record, bag, rec
from repro.data.operators import OpAdd, OpDot, OpLt, OpRec
from repro.lambda_nra import (
    Lambda,
    LBinop,
    LConst,
    LDJoin,
    LFilter,
    LMap,
    LProduct,
    LTable,
    LUnop,
    LVar,
    eval_lnra,
)
from repro.nraenv.eval import eval_nraenv
from repro.translate.lambda_nra_to_nraenv import lnra_to_nraenv


def dot(expr, field):
    return LUnop(OpDot(field), expr)


PERSONS = bag(
    rec(name="ann", age=40, addr=rec(city="NY"), kids=bag(rec(name="k", age=9))),
    rec(name="bob", age=20, addr=rec(city="SF"), kids=bag()),
)
CONSTANTS = {"P": PERSONS}


def assert_translation_correct(expr, env=None):
    """eval_lnra(l, ρ) == eval_nraenv(JlK, ρ-as-record, ·)."""
    env = env or {}
    expected = eval_lnra(expr, env, CONSTANTS)
    plan = lnra_to_nraenv(expr)
    actual = eval_nraenv(plan, Record(env), None, CONSTANTS)
    assert actual == expected, "%r:\n  expected %r\n  got %r" % (expr, expected, actual)


class TestTranslation:
    def test_variable_becomes_env_access(self):
        assert repr(lnra_to_nraenv(LVar("x"))) == "Env.x"

    def test_lambda_becomes_env_extension(self):
        plan = lnra_to_nraenv(LMap(Lambda("x", LVar("x")), LTable("P")))
        assert repr(plan) == "χ⟨(Env.x ∘e (Env ⊕ [x:In]))⟩($P)"

    def test_map(self):
        assert_translation_correct(LMap(Lambda("p", dot(LVar("p"), "name")), LTable("P")))

    def test_filter(self):
        assert_translation_correct(
            LFilter(Lambda("p", LBinop(OpLt(), dot(LVar("p"), "age"), LConst(30))), LTable("P"))
        )

    def test_closure_over_outer_variable(self):
        expr = LMap(
            Lambda("p", LBinop(OpAdd(), dot(LVar("p"), "age"), LVar("y"))), LTable("P")
        )
        assert_translation_correct(expr, {"y": 100})

    def test_shadowing(self):
        inner = LMap(Lambda("x", LVar("x")), LConst(bag(7)))
        assert_translation_correct(LMap(Lambda("x", inner), LConst(bag(1, 2))))

    def test_nested_map_over_field(self):
        expr = LMap(
            Lambda("p", LMap(Lambda("k", dot(LVar("k"), "name")), dot(LVar("p"), "kids"))),
            LTable("P"),
        )
        assert_translation_correct(expr)

    def test_dependent_join(self):
        expr = LDJoin(
            Lambda("p", LMap(Lambda("k", LUnop(OpRec("kid"), dot(LVar("k"), "name"))), dot(LVar("p"), "kids"))),
            LTable("P"),
        )
        assert_translation_correct(expr)

    def test_product(self):
        expr = LProduct(
            LMap(Lambda("p", LUnop(OpRec("l"), dot(LVar("p"), "name"))), LTable("P")),
            LConst(bag(rec(r=1))),
        )
        assert_translation_correct(expr)

    def test_linq_example(self):
        expr = LMap(
            Lambda("p", dot(LVar("p"), "name")),
            LFilter(Lambda("p", LBinop(OpLt(), dot(LVar("p"), "age"), LConst(30))), LTable("P")),
        )
        assert_translation_correct(expr)


class TestFigure1:
    """The paper's Figure 1: T1 and A4 in NRAλ vs NRAe."""

    def test_t1_lambda_forms_equivalent(self):
        # map(λa.a.city)(map(λp.p.addr)(P)) ≡ map(λp.p.addr.city)(P)
        fused = LMap(Lambda("p", dot(dot(LVar("p"), "addr"), "city")), LTable("P"))
        unfused = LMap(
            Lambda("a", dot(LVar("a"), "city")),
            LMap(Lambda("p", dot(LVar("p"), "addr")), LTable("P")),
        )
        assert eval_lnra(fused, {}, CONSTANTS) == eval_lnra(unfused, {}, CONSTANTS)
        # ... and their NRAe translations agree too (T1e).
        assert eval_nraenv(lnra_to_nraenv(fused), Record({}), None, CONSTANTS) == eval_nraenv(
            lnra_to_nraenv(unfused), Record({}), None, CONSTANTS
        )

    def test_a4(self):
        # map(λp.[person: p, kids: filter(λc.p.age > 25)(p.kids)])(P)
        from repro.data.operators import OpConcat, OpGt

        body = LBinop(
            OpConcat(),
            LUnop(OpRec("person"), LVar("p")),
            LUnop(
                OpRec("kids"),
                LFilter(
                    Lambda("c", LBinop(OpGt(), dot(LVar("p"), "age"), LConst(25))),
                    dot(LVar("p"), "kids"),
                ),
            ),
        )
        expr = LMap(Lambda("p", body), LTable("P"))
        result = eval_lnra(expr, {}, CONSTANTS)
        assert_translation_correct(expr)
        # ann (age 40 > 25) keeps her kids; bob's filter never runs (empty).
        people = {person["person"]["name"]: person["kids"] for person in result}
        assert people["ann"] == bag(rec(name="k", age=9))
