"""Correctness of both CAMP translations (Figure 11).

Invariant from [34]: a translated pattern evaluates to ∅ exactly when
CAMP evaluation raises a recoverable match failure, and to ``{v}`` when
it succeeds with ``v`` — for the same environment and datum, on both the
NRAe path (right column) and the direct NRA path (left column).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camp import ast as camp
from repro.camp.eval import MatchFail, eval_camp
from repro.data import operators as ops
from repro.data.model import Bag, Record, bag, rec
from repro.nra import eval_nra, is_nra
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.translate.camp_to_nra import camp_to_nra, encode_input
from repro.translate.camp_to_nraenv import camp_to_nraenv

_FAILED = object()
_MATCH_FAIL = object()

CONSTANTS = {"W": bag(1, 2, 3)}


def camp_outcome(pattern, datum, env):
    try:
        return eval_camp(pattern, datum, env, CONSTANTS)
    except MatchFail:
        return _MATCH_FAIL
    except EvalError:
        return _FAILED


def check_both_paths(pattern, datum=None, env=None):
    env = env if env is not None else Record({})
    expected = camp_outcome(pattern, datum, env)

    plan_e = camp_to_nraenv(pattern)
    try:
        via_nraenv = eval_nraenv(plan_e, env, datum, CONSTANTS)
    except EvalError:
        via_nraenv = _FAILED

    plan_a = camp_to_nra(pattern)
    assert is_nra(plan_a)
    try:
        via_nra = eval_nra(plan_a, encode_input(env, datum), CONSTANTS)
    except EvalError:
        via_nra = _FAILED

    for label, actual in (("NRAe", via_nraenv), ("NRA", via_nra)):
        if expected is _FAILED:
            assert actual is _FAILED, "%s: expected terminal error" % label
        elif expected is _MATCH_FAIL:
            assert actual == Bag([]), "%s: expected ∅ for match failure" % label
        else:
            assert actual == bag(expected), "%s: expected {%r}, got %r" % (
                label,
                expected,
                actual,
            )


class TestPerConstructor:
    def test_const(self):
        check_both_paths(camp.PConst(5))

    def test_it_env(self):
        check_both_paths(camp.PIt(), datum=7)
        check_both_paths(camp.PEnv(), env=rec(x=1))

    def test_get_constant(self):
        check_both_paths(camp.PGetConstant("W"))

    def test_unop_and_binop(self):
        check_both_paths(camp.PUnop(ops.OpRec("a"), camp.PIt()), datum=1)
        check_both_paths(
            camp.PBinop(ops.OpAdd(), camp.PConst(1), camp.PConst(2))
        )

    def test_binop_failure_propagates(self):
        failing = camp.PAssert(camp.PConst(False))
        check_both_paths(camp.PBinop(ops.OpAdd(), failing, camp.PConst(2)))

    def test_let_it(self):
        check_both_paths(
            camp.PLetIt(camp.PConst(rec(a=1)), camp.PUnop(ops.OpDot("a"), camp.PIt()))
        )

    def test_let_env_success_and_failure(self):
        bind = camp.PLetEnv(camp.PUnop(ops.OpRec("x"), camp.PIt()), camp.PEnv())
        check_both_paths(bind, datum=9, env=rec())
        check_both_paths(bind, datum=9, env=rec(x=1))  # conflicting x ⇒ fail

    def test_let_env_unification_same_value(self):
        bind = camp.PLetEnv(camp.PConst(rec(x=1)), camp.PEnv())
        check_both_paths(bind, env=rec(x=1))

    def test_map(self):
        keep_big = camp.PLetEnv(
            camp.PAssert(camp.PBinop(ops.OpLt(), camp.PConst(1), camp.PIt())),
            camp.PIt(),
        )
        check_both_paths(camp.PMap(keep_big), datum=bag(1, 2, 3))

    def test_assert(self):
        check_both_paths(camp.PAssert(camp.PConst(True)))
        check_both_paths(camp.PAssert(camp.PConst(False)))

    def test_orelse(self):
        check_both_paths(
            camp.POrElse(camp.PAssert(camp.PConst(False)), camp.PConst("b"))
        )
        check_both_paths(camp.POrElse(camp.PConst("a"), camp.PConst("b")))

    def test_terminal_error(self):
        check_both_paths(camp.PUnop(ops.OpDot("a"), camp.PConst(5)))


def _random_pattern(rng: random.Random, depth: int) -> camp.CampNode:
    leaves = [
        lambda: camp.PConst(rng.randint(0, 3)),
        lambda: camp.PConst(rec(x=rng.randint(0, 2))),
        lambda: camp.PIt(),
        lambda: camp.PEnv(),
        lambda: camp.PGetConstant("W"),
    ]
    if depth <= 0:
        return rng.choice(leaves)()
    combinators = [
        lambda: camp.PUnop(ops.OpRec(rng.choice("xy")), _random_pattern(rng, depth - 1)),
        lambda: camp.PBinop(
            rng.choice([ops.OpEq(), ops.OpLt()]),
            _random_pattern(rng, depth - 1),
            _random_pattern(rng, depth - 1),
        ),
        lambda: camp.PLetIt(
            _random_pattern(rng, depth - 1), _random_pattern(rng, depth - 1)
        ),
        lambda: camp.PLetEnv(
            camp.PUnop(ops.OpRec(rng.choice("xy")), _random_pattern(rng, depth - 1)),
            _random_pattern(rng, depth - 1),
        ),
        lambda: camp.PMap(_random_pattern(rng, depth - 1)),
        lambda: camp.PAssert(
            camp.PBinop(
                ops.OpLt(),
                camp.PConst(rng.randint(0, 3)),
                _random_pattern(rng, depth - 1),
            )
        ),
        lambda: camp.POrElse(
            _random_pattern(rng, depth - 1), _random_pattern(rng, depth - 1)
        ),
    ]
    return rng.choice(combinators + leaves)()


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=80, deadline=None)
def test_figure11_on_random_patterns(seed):
    rng = random.Random(seed)
    pattern = _random_pattern(rng, depth=3)
    datum = rng.choice([1, rec(x=1), bag(1, 2), bag(rec(x=0), rec(x=1))])
    env = rng.choice([rec(), rec(x=1), rec(y=2)])
    check_both_paths(pattern, datum=datum, env=env)


def test_camp_suite_via_both_paths(camp_programs):
    """Every p01–p14 program agrees across CAMP, NRAe, and NRA."""
    for name, program in camp_programs.items():
        constants = {"WORLD": program.world}
        expected = program.run()
        plan_e = camp_to_nraenv(program.pattern)
        got_e = eval_nraenv(plan_e, Record({}), program.world, constants)
        assert got_e == bag(expected), name
        plan_a = camp_to_nra(program.pattern)
        got_a = eval_nra(plan_a, encode_input(Record({}), program.world), constants)
        assert got_a == bag(expected), name


def test_nraenv_plans_much_smaller_than_nra(camp_programs):
    """The §7 claim: direct NRA plans blow up vs NRAe (pre-optimization)."""
    for name, program in camp_programs.items():
        size_e = camp_to_nraenv(program.pattern).size()
        size_a = camp_to_nra(program.pattern).size()
        assert size_a > 2 * size_e, (name, size_a, size_e)
