"""Theorem 2: correctness of the NRAe → NRA translation (Figure 4).

    γ ⊢ q @ d ⇓a d'  ⇔  ⊢ JqK @ ([E: γ] ⊕ [D: d]) ⇓n d'

checked on hand-written plans covering every constructor and on random
plans, against the *independent* NRA evaluator.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, bag, rec
from repro.nra import eval_nra, is_nra
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.verify import (
    gen_plan,
    random_constants,
    random_datum,
    random_environment,
)
from repro.translate.nraenv_to_nra import encode_input, nraenv_to_nra

_FAILED = object()


def roundtrip(plan, env, datum, constants):
    try:
        expected = eval_nraenv(plan, env, datum, constants)
    except EvalError:
        expected = _FAILED
    translated = nraenv_to_nra(plan)
    assert is_nra(translated), "translation must produce pure NRA"
    try:
        actual = eval_nra(translated, encode_input(env, datum), constants)
    except EvalError:
        actual = _FAILED
    if expected is _FAILED:
        assert actual is _FAILED
    else:
        assert actual == expected, "plan %r" % (plan,)


TABLE = {"T": bag(rec(a=1, b=2), rec(a=3, b=4))}


class TestPerConstructor:
    def test_env(self):
        roundtrip(b.env(), rec(x=1), 7, {})

    def test_id(self):
        roundtrip(b.id_(), rec(x=1), 7, {})

    def test_appenv(self):
        plan = b.appenv(b.dot(b.env(), "y"), b.const(rec(y=9)))
        roundtrip(plan, rec(x=1), None, {})

    def test_comp_preserves_env(self):
        plan = b.comp(b.env(), b.const(5))
        roundtrip(plan, rec(x=1), None, {})

    def test_map_with_env_in_body(self):
        plan = b.chi(b.dot(b.env(), "x"), b.table("T"))
        roundtrip(plan, rec(x=9), None, TABLE)

    def test_select_with_env_in_pred(self):
        plan = b.sigma(b.eq(b.dot(b.id_(), "a"), b.dot(b.env(), "x")), b.table("T"))
        roundtrip(plan, rec(x=1), None, TABLE)

    def test_product(self):
        plan = b.product(b.table("T"), b.coll(b.rec_field("z", b.dot(b.env(), "x"))))
        roundtrip(plan, rec(x=5), None, TABLE)

    def test_dep_join(self):
        body = b.coll(b.rec_field("c", b.dot(b.id_(), "a")))
        plan = b.djoin(body, b.table("T"))
        roundtrip(plan, rec(), None, TABLE)

    def test_default(self):
        plan = b.default(b.sigma(b.const(False), b.table("T")), b.coll(b.env()))
        roundtrip(plan, rec(x=1), None, TABLE)

    def test_mapenv(self):
        plan = b.appenv(b.chie(b.dot(b.env(), "u")), b.const(bag(rec(u=1), rec(u=2))))
        roundtrip(plan, rec(), 7, {})

    def test_mapenv_body_keeps_input(self):
        plan = b.appenv(b.chie(b.id_()), b.const(bag(rec(), rec())))
        roundtrip(plan, rec(), 42, {})

    def test_merge_example(self):
        from repro.data.operators import OpAdd

        body = b.binop(OpAdd(), b.dot(b.env(), "A"), b.dot(b.env(), "C"))
        plan = b.appenv(b.chie(body), b.merge(b.env(), b.const(rec(B=3, C=4))))
        roundtrip(plan, rec(A=1, B=3), None, {})

    def test_failure_translates_to_failure(self):
        plan = b.dot(b.id_(), "nope")
        roundtrip(plan, rec(), 5, {})


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=80, deadline=None)
def test_theorem2_on_random_plans(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    env = random_environment(rng, bag_env=rng.random() < 0.2)
    datum = random_datum(rng)
    constants = random_constants(rng)
    roundtrip(plan, env, datum, constants)


def test_translation_blow_up_is_visible():
    """The Figure 4 encoding re-introduces the nesting NRAe avoids."""
    plan = b.chi(b.dot(b.env(), "x"), b.table("T"))
    assert nraenv_to_nra(plan).size() > 3 * plan.size()
