"""Tests for the S-expression interchange (paper §8's frontend format)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camp_suite.programs import all_programs
from repro.data.foreign import DateValue
from repro.data.model import Bag, bag, rec
from repro.nraenv import builders as b
from repro.optim.verify import gen_plan
from repro.sexp import (
    SexpError,
    dumps_camp,
    dumps_plan,
    loads_camp,
    loads_plan,
    parse_sexp,
    print_sexp,
    sexp_to_value,
    value_to_sexp,
)
from tests.strategies import values


class TestReader:
    def test_atoms(self):
        assert parse_sexp("42") == 42
        assert parse_sexp("-2.5") == -2.5
        assert parse_sexp("foo") == "foo"
        assert parse_sexp('"hi there"') == "hi there"

    def test_nesting(self):
        assert parse_sexp("(a (b 1) 2)") == ["a", ["b", 1], 2]

    def test_comments(self):
        assert parse_sexp("(a ; comment\n b)") == ["a", "b"]

    def test_string_escapes(self):
        assert parse_sexp(r'"say \"hi\""') == 'say "hi"'

    def test_errors(self):
        with pytest.raises(SexpError):
            parse_sexp("(a")
        with pytest.raises(SexpError):
            parse_sexp(")")
        with pytest.raises(SexpError):
            parse_sexp("a b")

    def test_print_round_trip(self):
        expr = ["map", ["unop", ["dot", "a"], "in"], ["table", "T"]]
        assert parse_sexp(print_sexp(expr)) == expr


class TestValues:
    def test_tagged_forms(self):
        value = rec(a=bag(1, DateValue(1994, 1, 2)), b=None, c=True)
        assert sexp_to_value(value_to_sexp(value)) == value

    @given(values(max_leaves=8))
    @settings(max_examples=80)
    def test_value_round_trip(self, value):
        assert sexp_to_value(value_to_sexp(value)) == value


class TestPlans:
    def test_readable_output(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.table("T"))
        assert dumps_plan(plan) == "(map (unop (dot a) in) (table T))"

    def test_hand_written_input(self):
        plan = loads_plan("(select (binop gt (unop (dot a) in) (const 2)) (table T))")
        from repro.nraenv.eval import eval_nraenv

        assert eval_nraenv(plan, rec(), None, {"T": bag(rec(a=1), rec(a=5))}) == bag(
            rec(a=5)
        )

    @given(st.integers(min_value=0, max_value=500_000))
    @settings(max_examples=120, deadline=None)
    def test_plan_round_trip(self, seed):
        rng = random.Random(seed)
        plan = gen_plan(rng, "any", depth=3)
        assert loads_plan(dumps_plan(plan)) == plan

    def test_sql_pipeline_plans_round_trip(self):
        from repro.sql.parser import parse_sql
        from repro.sql.to_nraenv import sql_to_nraenv
        from repro.tpch.queries import QUERIES

        for name in ("q1", "q6", "q15"):
            plan = sql_to_nraenv(parse_sql(QUERIES[name]))
            assert loads_plan(dumps_plan(plan)) == plan

    def test_unknown_head_rejected(self):
        with pytest.raises(SexpError):
            loads_plan("(frobnicate 1 2)")


class TestCampPatterns:
    def test_round_trip_whole_suite(self, camp_programs):
        for name, program in camp_programs.items():
            text = dumps_camp(program.pattern)
            assert loads_camp(text) == program.pattern, name

    def test_external_frontend_shape(self):
        # what a JRules-style external parser would hand the compiler:
        text = """
        (pmap
          (let-env (unop (rec x) it)
            (binop eq it (unop (dot x) env))))
        """
        pattern = loads_camp(text)
        from repro.camp.eval import eval_camp
        from repro.data.model import Record

        assert eval_camp(pattern, bag(1, 2), Record({})) == bag(True, True)
