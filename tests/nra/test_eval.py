"""Unit tests for the independent NRA semantics ``⇓n``."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.nra import check_nra, eval_nra
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv


class TestNraEval:
    def test_basic_pipeline(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.id_()))
        assert eval_nra(plan, bag(rec(a=1), rec(a=2), rec(a=3))) == bag(2, 3)

    def test_constants(self):
        assert eval_nra(b.table("T"), None, {"T": bag(1)}) == bag(1)

    def test_env_operators_rejected(self):
        with pytest.raises(EvalError):
            eval_nra(b.env(), rec())
        with pytest.raises(EvalError):
            eval_nra(b.appenv(b.id_(), b.id_()), 1)
        with pytest.raises(EvalError):
            eval_nra(b.chie(b.id_()), bag())

    def test_default_rules(self):
        assert eval_nra(b.default(b.const(Bag([])), b.const(bag(1))), None) == bag(1)
        assert eval_nra(b.default(b.const(bag(2)), b.const(bag(1))), None) == bag(2)

    def test_dep_join(self):
        body = b.chi(b.rec_field("y", b.id_()), b.dot(b.id_(), "xs"))
        plan = b.djoin(body, b.id_())
        result = eval_nra(plan, bag(rec(xs=bag(1))))
        assert result == bag(rec(xs=bag(1), y=1))

    def test_check_nra(self):
        assert check_nra(b.id_()) == b.id_()
        with pytest.raises(ValueError):
            check_nra(b.env())

    def test_agrees_with_nraenv_semantics_on_nra_plans(self):
        # §3.3: NRA queries behave the same under ⇓n and ⇓a.
        plans = [
            b.chi(b.dot(b.id_(), "a"), b.id_()),
            b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.id_()),
            b.product(b.coll(b.rec_field("x", b.const(1))), b.id_()),
            b.default(b.sigma(b.const(False), b.id_()), b.const(bag(rec(a=0)))),
        ]
        datum = bag(rec(a=1), rec(a=2))
        for plan in plans:
            assert eval_nra(plan, datum) == eval_nraenv(plan, rec(), datum)
