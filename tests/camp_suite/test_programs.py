"""Pins for the p01–p14 experiment suite: exact expected results."""

import pytest

from repro.camp_suite.programs import SAMPLE_WORLD, all_programs
from repro.data.model import Bag, bag, rec


@pytest.fixture(scope="module")
def programs():
    return all_programs()


class TestSuiteShape:
    def test_fourteen_programs(self, programs):
        assert sorted(programs) == ["p%02d" % i for i in range(1, 15)]

    def test_descriptions_match_paper_mix(self, programs):
        assert "select" in programs["p02"].description
        assert "join" in programs["p03"].description
        assert "negation" in programs["p04"].description
        assert "negation" in programs["p05"].description
        for name in ("p06", "p07", "p08"):
            assert "aggregation" in programs[name].description
        for name in ("p09", "p10", "p11", "p12", "p13", "p14"):
            assert "aggregation" in programs[name].description


class TestExpectedResults:
    def test_p01_pairs_clients_with_reps(self, programs):
        assert programs["p01"].run() == bag(
            rec(client="ada", rep="mia"),
            rec(client="bob", rep="mia"),
            rec(client="cyd", rep="noa"),
        )

    def test_p02_selects_gold_clients(self, programs):
        assert programs["p02"].run() == bag("ada", "cyd")

    def test_p03_join_client_orders(self, programs):
        assert programs["p03"].run() == bag(
            rec(name="ada", amount=250),
            rec(name="ada", amount=40),
            rec(name="bob", amount=70),
            rec(name="cyd", amount=500),
        )

    def test_p04_no_orderless_clients_in_sample(self, programs):
        assert programs["p04"].run() == Bag([])

    def test_p05_every_gold_client_has_a_big_order(self, programs):
        assert programs["p05"].run() == Bag([])

    def test_p06_total(self, programs):
        assert programs["p06"].run() == bag(860)

    def test_p07_count(self, programs):
        assert programs["p07"].run() == bag(4)

    def test_p08_max(self, programs):
        assert programs["p08"].run() == bag(500)

    def test_p09_totals_per_client(self, programs):
        assert programs["p09"].run() == bag(
            rec(name="ada", total=290),
            rec(name="bob", total=70),
            rec(name="cyd", total=500),
        )

    def test_p10_guard_on_total(self, programs):
        assert programs["p10"].run() == bag("ada", "cyd")

    def test_p11_counts(self, programs):
        assert programs["p11"].run() == bag(
            rec(name="ada", orders=2),
            rec(name="bob", orders=1),
            rec(name="cyd", orders=1),
        )

    def test_p12_rep_join(self, programs):
        assert programs["p12"].run() == bag(
            rec(rep="mia", client="ada", total=290),
            rec(rep="mia", client="bob", total=70),
            rec(rep="noa", client="cyd", total=500),
        )

    def test_p13_share_of_total(self, programs):
        # 2*total > grand(860): ada 580 no, cyd 1000 yes
        assert programs["p13"].run() == bag("cyd")

    def test_p14_negation_with_aggregate(self, programs):
        assert programs["p14"].run() == bag(rec(name="cyd", total=500))


class TestWorldIsStable:
    def test_sample_world_shape(self):
        klasses = {}
        for item in SAMPLE_WORLD:
            klasses[item["klass"]] = klasses.get(item["klass"], 0) + 1
        assert klasses == {"Client": 3, "Marketer": 2, "Order": 4}
