"""Property tests over randomly generated SQL queries.

A generator produces small well-formed queries over a fixed two-table
schema; for each query the pipeline must be internally consistent:
interpreted NRAe == optimized NRAe == generated Python.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.data.model import Record, bag, rec
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.defaults import optimize_nnrc, optimize_nraenv
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.translate.nraenv_to_nnrc import nraenv_to_nnrc

EMP = bag(
    rec(name="ann", dept="eng", sal=100, years=5),
    rec(name="bob", dept="eng", sal=80, years=2),
    rec(name="cyd", dept="ops", sal=90, years=9),
    rec(name="dan", dept="ops", sal=90, years=1),
    rec(name="eve", dept="hr", sal=70, years=4),
)
DEPT = bag(
    rec(dname="eng", floor=1),
    rec(dname="ops", floor=2),
    rec(dname="hr", floor=2),
)
DB = {"emp": EMP, "dept": DEPT}

_NUM_COLS = ("sal", "years")
_STR_COLS = ("name", "dept")


def _gen_predicate(rng: random.Random, depth: int = 1) -> str:
    choices = [
        lambda: "%s %s %d" % (
            rng.choice(_NUM_COLS), rng.choice(("<", "<=", ">", ">=", "=", "<>")),
            rng.randint(60, 110),
        ),
        lambda: "dept %s '%s'" % (rng.choice(("=", "<>")), rng.choice(("eng", "ops", "hr"))),
        lambda: "%s between %d and %d" % (rng.choice(_NUM_COLS), rng.randint(0, 80), rng.randint(80, 120)),
        lambda: "name like '%%%s%%'" % rng.choice("anbo"),
        lambda: "dept in ('eng', 'hr')",
        lambda: "sal > (select avg(sal) from emp)",
        lambda: "exists (select * from dept where dname = dept)",
        lambda: "dept in (select dname from dept where floor = %d)" % rng.randint(1, 2),
    ]
    pred = rng.choice(choices)()
    if depth > 0 and rng.random() < 0.4:
        connective = rng.choice(("and", "or"))
        return "(%s %s %s)" % (pred, connective, _gen_predicate(rng, depth - 1))
    if rng.random() < 0.15:
        return "not (%s)" % pred
    return pred


def _gen_query(rng: random.Random) -> str:
    style = rng.random()
    where = " where %s" % _gen_predicate(rng) if rng.random() < 0.8 else ""
    if style < 0.45:
        columns = rng.sample(("name", "dept", "sal", "years"), rng.randint(1, 3))
        distinct = "distinct " if rng.random() < 0.3 else ""
        order = ""
        if rng.random() < 0.5:
            order = " order by %s%s" % (
                rng.choice(columns),
                " desc" if rng.random() < 0.5 else "",
            )
        return "select %s%s from emp%s%s" % (distinct, ", ".join(columns), where, order)
    if style < 0.75:
        agg = rng.choice(
            ("count(*) as n", "sum(sal) as t", "avg(sal) as a", "min(sal) as lo", "max(sal) as hi")
        )
        having = ""
        if rng.random() < 0.4:
            having = " having count(*) >= %d" % rng.randint(1, 2)
        return "select dept, %s from emp%s group by dept%s" % (agg, where, having)
    if style < 0.9:
        return (
            "select name, floor from emp, dept where dept = dname%s"
            % ((" and " + _gen_predicate(rng)) if rng.random() < 0.6 else "")
        )
    return (
        "select dept, count(*) as n from (select dept, sal from emp%s) as s group by dept"
        % where
    )


_FAILED = object()


def _outcome(fn):
    try:
        return fn()
    except (EvalError, ZeroDivisionError):
        return _FAILED


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=120, deadline=None)
def test_sql_pipeline_internally_consistent(seed):
    rng = random.Random(seed)
    text = _gen_query(rng)
    plan = sql_to_nraenv(parse_sql(text))
    base = _outcome(lambda: eval_nraenv(plan, Record({}), None, DB))

    optimized = optimize_nraenv(plan).plan
    opt_result = _outcome(lambda: eval_nraenv(optimized, Record({}), None, DB))
    assert opt_result == base or (opt_result is _FAILED and base is _FAILED), text

    nnrc = optimize_nnrc(nraenv_to_nnrc(plan)).plan
    nnrc_result = _outcome(
        lambda: __import__("repro.nnrc.eval", fromlist=["eval_nnrc"]).eval_nnrc(
            nnrc, {"d0": None, "e0": Record({})}, DB
        )
    )
    assert nnrc_result == base or (nnrc_result is _FAILED and base is _FAILED), text

    fn = compile_nnrc_to_callable(nnrc)
    generated = _outcome(lambda: fn(DB))
    assert generated == base or (generated is _FAILED and base is _FAILED), text


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=120, deadline=None)
def test_generated_sql_always_parses_and_translates(seed):
    rng = random.Random(seed)
    text = _gen_query(rng)
    plan = sql_to_nraenv(parse_sql(text))
    assert plan.size() > 0
