"""Unit tests for the SQL parser."""

import pytest

from repro.data.foreign import DateValue
from repro.sql import ast
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse_query, parse_sql


class TestSelectBasics:
    def test_simple_select(self):
        query = parse_query("select a, b from t")
        select = query.body
        assert isinstance(select, ast.Select)
        assert [item.expr.name for item in select.items] == ["a", "b"]
        assert select.from_items[0].name == "t"

    def test_aliases(self):
        select = parse_query("select a as x, b y from t u").body
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"
        assert select.from_items[0].alias == "u"

    def test_star(self):
        select = parse_query("select * from t").body
        assert isinstance(select.items[0].expr, ast.Star)

    def test_distinct(self):
        assert parse_query("select distinct a from t").body.distinct

    def test_where_group_having_order_limit(self):
        select = parse_query(
            "select a, count(*) as n from t where a > 1 "
            "group by a having count(*) > 2 order by n desc, a limit 5"
        ).body
        assert select.where is not None
        assert len(select.group_by) == 1
        assert select.having is not None
        assert select.order_by[0].descending
        assert not select.order_by[1].descending
        assert select.limit == 5

    def test_from_subquery(self):
        select = parse_query("select a from (select a from t) as s").body
        assert isinstance(select.from_items[0], ast.SubqueryRef)
        assert select.from_items[0].alias == "s"


class TestExpressions:
    def test_precedence_or_and(self):
        select = parse_query("select a from t where x = 1 or y = 2 and z = 3").body
        assert select.where.op == "or"
        assert select.where.right.op == "and"

    def test_arithmetic_precedence(self):
        select = parse_query("select a + b * c from t").body
        expr = select.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        select = parse_query("select (a + b) * c from t").body
        assert select.items[0].expr.op == "*"

    def test_between(self):
        select = parse_query("select a from t where a between 1 and 3").body
        assert isinstance(select.where, ast.Between)

    def test_not_between(self):
        select = parse_query("select a from t where a not between 1 and 3").body
        assert select.where.negated

    def test_in_list(self):
        select = parse_query("select a from t where a in (1, 2, 3)").body
        assert isinstance(select.where, ast.InList)
        assert len(select.where.items) == 3

    def test_in_subquery(self):
        select = parse_query("select a from t where a in (select b from u)").body
        assert isinstance(select.where, ast.InQuery)

    def test_not_in_subquery(self):
        select = parse_query("select a from t where a not in (select b from u)").body
        assert select.where.negated

    def test_like_and_not_like(self):
        select = parse_query("select a from t where a like 'x%' and b not like '%y'").body
        assert isinstance(select.where.left, ast.Like)
        assert select.where.right.negated

    def test_exists(self):
        select = parse_query("select a from t where exists (select * from u)").body
        assert isinstance(select.where, ast.Exists)

    def test_not_exists(self):
        select = parse_query("select a from t where not exists (select * from u)").body
        assert isinstance(select.where, ast.UnaryExpr)
        assert select.where.op == "not"

    def test_case(self):
        select = parse_query(
            "select case when a = 1 then 'x' when a = 2 then 'y' else 'z' end from t"
        ).body
        case = select.items[0].expr
        assert isinstance(case, ast.Case)
        assert len(case.branches) == 2
        assert case.otherwise is not None

    def test_case_without_else(self):
        case = parse_query("select case when a = 1 then 2 end from t").body.items[0].expr
        assert case.otherwise is None

    def test_aggregates(self):
        select = parse_query(
            "select count(*), count(distinct a), sum(b), avg(c), min(d), max(e) from t"
        ).body
        aggs = [item.expr for item in select.items]
        assert aggs[0].arg is None
        assert aggs[1].distinct
        assert [a.func for a in aggs] == ["count", "count", "sum", "avg", "min", "max"]

    def test_date_and_interval(self):
        select = parse_query(
            "select a from t where d <= date '1998-12-01' - interval '90' day"
        ).body
        comparison = select.where
        assert comparison.right.op == "-"
        assert comparison.right.left.value == DateValue(1998, 12, 1)
        assert isinstance(comparison.right.right, ast.Interval)
        assert comparison.right.right.amount == 90
        assert comparison.right.right.unit == "day"

    def test_extract(self):
        expr = parse_query("select extract(year from d) from t").body.items[0].expr
        assert isinstance(expr, ast.Extract)
        assert expr.part == "year"

    def test_substring(self):
        expr = parse_query("select substring(p from 1 for 2) from t").body.items[0].expr
        assert isinstance(expr, ast.Substring)
        assert (expr.start, expr.length) == (1, 2)

    def test_substring_negative_literals(self):
        # a negative start/length is two tokens ('-' then the number);
        # SQL allows both (the operator errors on the negative length)
        expr = parse_query(
            "select substring(p from -1 for 3) from t"
        ).body.items[0].expr
        assert (expr.start, expr.length) == (-1, 3)
        expr = parse_query(
            "select substring(p from 2 for -2) from t"
        ).body.items[0].expr
        assert (expr.start, expr.length) == (2, -2)

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("select a from t limit -1")

    def test_scalar_subquery(self):
        select = parse_query("select a from t where a = (select max(b) from u)").body
        assert isinstance(select.where.right, ast.ScalarQuery)

    def test_qualified_columns(self):
        select = parse_query("select t1.a from t t1 where t1.b = 2").body
        assert select.items[0].expr.table == "t1"

    def test_unary_minus(self):
        expr = parse_query("select -a from t").body.items[0].expr
        assert isinstance(expr, ast.UnaryExpr) and expr.op == "-"


class TestSetOpsAndCtes:
    def test_union(self):
        query = parse_query("select a from t union select a from u")
        assert isinstance(query.body, ast.SetOp)
        assert query.body.op == "union"
        assert not query.body.all

    def test_union_all(self):
        assert parse_query("select a from t union all select a from u").body.all

    def test_intersect_except(self):
        assert parse_query("select a from t intersect select a from u").body.op == "intersect"
        assert parse_query("select a from t except select a from u").body.op == "except"

    def test_with_clause(self):
        query = parse_query("with c as (select a from t) select a from c")
        assert query.ctes[0][0] == "c"


class TestScripts:
    def test_create_view_with_columns(self):
        script = parse_sql(
            "create view v (x, y) as select a, b from t; select x from v"
        )
        view = script.statements[0]
        assert isinstance(view, ast.CreateView)
        assert view.columns == ["x", "y"]
        assert isinstance(script.statements[1], ast.Query)

    def test_drop_view(self):
        script = parse_sql("select a from t; drop view v")
        assert isinstance(script.statements[1], ast.DropView)

    def test_main_query_accessor(self):
        script = parse_sql("create view v as select a from t; select a from v")
        assert isinstance(script.main_query(), ast.Query)

    def test_empty_input_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("select a from t banana nonsense extra")


class TestMetrics:
    def test_size_and_depth(self):
        flat = parse_query("select a from t")
        nested = parse_query("select a from (select a from t) as s")
        assert nested.size() > flat.size()
        assert flat.depth() == 1
        assert nested.depth() == 2
