"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SqlSyntaxError, TokenStream, tokenize


class TestTokenize:
    def test_keywords_lowercased(self):
        tokens = tokenize("SELECT Name FROM T")
        assert [t.value for t in tokens[:-1]] == ["select", "name", "from", "t"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.0001")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "0.0001"]

    def test_qualified_name_is_three_tokens(self):
        tokens = tokenize("t.col")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("ident", "t"),
            ("symbol", "."),
            ("ident", "col"),
        ]

    def test_two_char_symbols(self):
        tokens = tokenize("a <= b <> c || d")
        symbols = [t.value for t in tokens if t.kind == "symbol"]
        assert symbols == ["<=", "<>", "||"]

    def test_comments_skipped(self):
        tokens = tokenize("select 1 -- comment\n, 2")
        assert [t.value for t in tokens[:-1]] == ["select", "1", ",", "2"]

    def test_strings_keep_case_and_hash(self):
        assert tokenize("'Brand#12'")[0].value == "Brand#12"

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")


class TestTokenStream:
    def test_peek_and_next(self):
        stream = TokenStream(tokenize("a b"))
        assert stream.peek().value == "a"
        assert stream.next().value == "a"
        assert stream.next().value == "b"
        assert stream.exhausted

    def test_end_is_sticky(self):
        stream = TokenStream(tokenize("a"))
        stream.next()
        assert stream.next().kind == "end"
        assert stream.next().kind == "end"

    def test_expectations(self):
        stream = TokenStream(tokenize("select 1"))
        stream.expect_keyword("select")
        assert stream.expect_number() == "1"
        with pytest.raises(SqlSyntaxError):
            stream.expect_ident()
