"""Semantics tests for the SQL → NRAe translation (paper §6)."""

import pytest

from repro.data.model import Bag, Record, bag, rec, to_python
from repro.nraenv.eval import eval_nraenv
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import SqlTranslationError, sql_to_nraenv


EMP = bag(
    rec(name="ann", dept="eng", sal=100),
    rec(name="bob", dept="eng", sal=80),
    rec(name="cyd", dept="ops", sal=90),
    rec(name="dan", dept="ops", sal=90),
)
DEPT = bag(
    rec(dname="eng", floor=1),
    rec(dname="ops", floor=2),
)
DB = {"emp": EMP, "dept": DEPT}


def run(sql_text, constants=DB):
    plan = sql_to_nraenv(parse_sql(sql_text))
    return to_python(eval_nraenv(plan, Record({}), None, constants))


class TestSelectFromWhere:
    def test_projection(self):
        rows = run("select name from emp where sal > 85")
        assert sorted(r["name"] for r in rows) == ["ann", "cyd", "dan"]

    def test_select_star_removes_alias_bookkeeping(self):
        rows = run("select * from emp e where sal = 100")
        assert rows == [{"name": "ann", "dept": "eng", "sal": 100}]

    def test_expression_columns(self):
        rows = run("select name, sal * 2 as double from emp where name = 'bob'")
        assert rows == [{"name": "bob", "double": 160}]

    def test_join_via_product(self):
        rows = run(
            "select name, floor from emp, dept where dept = dname and sal > 95"
        )
        assert rows == [{"name": "ann", "floor": 1}]

    def test_qualified_columns_and_self_join(self):
        rows = run(
            "select a.name as x, b.name as y from emp a, emp b "
            "where a.sal < b.sal and a.dept = b.dept"
        )
        assert rows == [{"x": "bob", "y": "ann"}]

    def test_no_from(self):
        assert run("select 1 as one") == [{"one": 1}]


class TestPredicates:
    def test_between(self):
        rows = run("select name from emp where sal between 85 and 95")
        assert sorted(r["name"] for r in rows) == ["cyd", "dan"]

    def test_in_list(self):
        rows = run("select name from emp where dept in ('ops', 'hr')")
        assert sorted(r["name"] for r in rows) == ["cyd", "dan"]

    def test_not_in_subquery(self):
        rows = run(
            "select name from emp where dept not in "
            "(select dname from dept where floor = 1)"
        )
        assert sorted(r["name"] for r in rows) == ["cyd", "dan"]

    def test_like(self):
        rows = run("select name from emp where name like '%n%'")
        assert sorted(r["name"] for r in rows) == ["ann", "dan"]

    def test_exists_correlated(self):
        rows = run(
            "select dname from dept where exists "
            "(select * from emp where dept = dname and sal > 95)"
        )
        assert rows == [{"dname": "eng"}]

    def test_not_exists_correlated(self):
        rows = run(
            "select dname from dept where not exists "
            "(select * from emp where dept = dname and sal > 95)"
        )
        assert rows == [{"dname": "ops"}]

    def test_scalar_subquery_correlated(self):
        rows = run(
            "select name from emp e where sal = "
            "(select max(sal) from emp where dept = e.dept)"
        )
        assert sorted(r["name"] for r in rows) == ["ann", "cyd", "dan"]


class TestGroupingAndAggregates:
    def test_group_by(self):
        rows = run(
            "select dept, sum(sal) as total, count(*) as n from emp group by dept "
            "order by dept"
        )
        assert rows == [
            {"dept": "eng", "total": 180, "n": 2},
            {"dept": "ops", "total": 180, "n": 2},
        ]

    def test_having(self):
        rows = run(
            "select dept, avg(sal) as a from emp group by dept having min(sal) > 85"
        )
        assert rows == [{"dept": "ops", "a": 90.0}]

    def test_aggregate_without_group_by(self):
        assert run("select count(*) as n, max(sal) as top from emp") == [
            {"n": 4, "top": 100}
        ]

    def test_count_distinct(self):
        assert run("select count(distinct dept) as n from emp") == [{"n": 2}]

    def test_having_with_scalar_subquery(self):
        # q11's shape: a correlated-free aggregate threshold.
        rows = run(
            "select dept, sum(sal) as total from emp group by dept "
            "having sum(sal) > (select sum(sal) * 0.4 from emp)"
        )
        assert sorted(r["dept"] for r in rows) == ["eng", "ops"]

    def test_in_subquery_with_group_and_having(self):
        # q18's shape.
        rows = run(
            "select name from emp where dept in "
            "(select dept from emp group by dept having sum(sal) > 100)"
        )
        assert len(rows) == 4


class TestOrderDistinctLimit:
    def test_order_by_desc(self):
        rows = run("select name, sal from emp order by sal desc, name")
        assert [r["name"] for r in rows] == ["ann", "cyd", "dan", "bob"]

    def test_distinct(self):
        rows = run("select distinct dept from emp")
        assert sorted(r["dept"] for r in rows) == ["eng", "ops"]

    def test_limit(self):
        rows = run("select name, sal from emp order by sal desc limit 2")
        assert [r["name"] for r in rows] == ["ann", "cyd"]

    def test_order_by_non_output_column(self):
        rows = run("select name from emp order by sal desc, name")
        assert [r["name"] for r in rows] == ["ann", "cyd", "dan", "bob"]
        assert all(set(r) == {"name"} for r in rows)

    def test_order_by_expression(self):
        rows = run("select name from emp order by sal * -1, name")
        assert [r["name"] for r in rows] == ["ann", "cyd", "dan", "bob"]


class TestCase:
    def test_case_with_else(self):
        rows = run(
            "select name, case when sal >= 90 then 'hi' else 'lo' end as band "
            "from emp order by name"
        )
        assert [r["band"] for r in rows] == ["hi", "lo", "hi", "hi"]

    def test_case_multiple_branches(self):
        rows = run(
            "select name, case when sal >= 100 then 'a' when sal >= 90 then 'b' "
            "else 'c' end as band from emp order by name"
        )
        assert [r["band"] for r in rows] == ["a", "c", "b", "b"]

    def test_case_in_aggregate(self):
        rows = run(
            "select sum(case when dept = 'eng' then sal else 0 end) as engtotal from emp"
        )
        assert rows == [{"engtotal": 180}]


class TestSetOperations:
    def test_union_dedupes(self):
        rows = run("select dept from emp union select dname as dept from dept")
        assert sorted(r["dept"] for r in rows) == ["eng", "ops"]

    def test_union_all_keeps_duplicates(self):
        rows = run("select dept from emp union all select dname as dept from dept")
        assert len(rows) == 6

    def test_intersect(self):
        rows = run(
            "select dept from emp intersect select dname as dept from dept where floor = 1"
        )
        assert rows == [{"dept": "eng"}]

    def test_except(self):
        rows = run("select dname as d from dept except select dept as d from emp where sal > 95")
        assert rows == [{"d": "ops"}]


class TestViewsAndCtes:
    def test_view_with_column_rename(self):
        rows = run(
            "create view rich (who, amount) as select name, sal from emp where sal >= 90;"
            "select who from rich where amount = (select max(amount) from rich)"
        )
        assert rows == [{"who": "ann"}]

    def test_view_on_view(self):
        rows = run(
            "create view a_view as select name, sal from emp where sal > 85;"
            "create view b_view as select name from a_view where sal < 95;"
            "select count(*) as n from b_view"
        )
        assert rows == [{"n": 2}]

    def test_alias_does_not_shadow_view(self):
        rows = run(
            "create view v as select name from emp where sal > 95;"
            "select count(*) as n from v where exists (select * from v)"
        )
        assert rows == [{"n": 1}]

    def test_with_clause(self):
        rows = run(
            "with big as (select name, sal from emp where sal > 85) "
            "select count(*) as n from big"
        )
        assert rows == [{"n": 3}]

    def test_drop_view_removes_binding(self):
        with pytest.raises(Exception):
            run(
                "create view v as select name from emp; drop view v;"
                "select * from v"
            )


class TestUnsupported:
    def test_group_by_expression_rejected(self):
        with pytest.raises(SqlTranslationError):
            run("select sal + 1, count(*) from emp group by sal + 1")

    def test_order_by_star_with_expression_rejected(self):
        with pytest.raises(SqlTranslationError):
            run("select * from emp order by sal + 1")

    def test_aggregate_outside_group_context(self):
        with pytest.raises(SqlTranslationError):
            run("select name from emp where sum(sal) > 1")
