"""Tests for the SQL stress family (the TPC-DS substitute)."""

import pytest

from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse_sql
from repro.sql.stress import supported_query, unsupported_queries
from repro.sql.to_nraenv import sql_to_nraenv


class TestSupportedFamily:
    def test_levels_grow_plan_size(self):
        sizes = []
        for level in (1, 2, 3):
            plan = sql_to_nraenv(parse_sql(supported_query(level)))
            sizes.append(plan.size())
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[2] > 500  # the TPC-DS-like "large plan" regime

    def test_level_zero_is_plain_select(self):
        plan = sql_to_nraenv(parse_sql(supported_query(0)))
        assert plan.size() < 100

    def test_deep_query_executes(self):
        from repro.data.model import Record, to_python
        from repro.nraenv.eval import eval_nraenv
        from repro.tpch.datagen import MICRO, generate

        db = generate(MICRO, seed=7)
        plan = sql_to_nraenv(parse_sql(supported_query(1)))
        rows = to_python(eval_nraenv(plan, Record({}), None, db))
        assert isinstance(rows, list)


class TestUnsupportedFamily:
    @pytest.mark.parametrize("name,text", unsupported_queries())
    def test_rejected_gracefully(self, name, text):
        """Unsupported features fail with a diagnostic, not a crash."""
        with pytest.raises((SqlSyntaxError, ValueError)):
            sql_to_nraenv(parse_sql(text))
