"""Tests of the verification harness itself: it must catch bad rewrites."""

import pytest

from repro.data.model import bag
from repro.nraenv import ast, builders as b
from repro.optim.engine import Rewrite
from repro.optim.verify import (
    CounterexampleError,
    check_plans_equivalent,
    check_rewrite,
    gen_plan,
    random_plans,
)


class TestCheckPlansEquivalent:
    def test_identical_plans_pass(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.table("T"))
        assert check_plans_equivalent(plan, plan, trials=20) > 0

    def test_detects_value_difference(self):
        with pytest.raises(CounterexampleError):
            check_plans_equivalent(b.const(1), b.const(2), trials=5)

    def test_untyped_mode_detects_error_asymmetry(self):
        # lhs errors on non-record input, rhs never errors.
        lhs = b.dot(b.id_(), "a")
        rhs = b.const(0)
        with pytest.raises(CounterexampleError):
            check_plans_equivalent(lhs, rhs, trials=50, typed=False)

    def test_typed_mode_skips_failing_trials(self):
        # σ over the input: ill-typed for non-bag inputs; typed mode
        # discards those and compares the rest.
        lhs = b.sigma(b.const(True), b.id_())
        rhs = b.id_()
        informative = check_plans_equivalent(lhs, rhs, trials=60, typed=True)
        assert informative > 0


class TestCheckRewrite:
    def test_sound_rewrite_passes(self):
        def fn(plan):
            if isinstance(plan, ast.Map) and isinstance(plan.body, ast.ID):
                return plan.input
            return None

        rule = Rewrite("map_id_ok", fn, typed=True)
        plans = [b.chi(b.id_(), b.table("T")), b.chi(b.id_(), b.const(bag(1, 2)))]
        assert check_rewrite(rule, plans) == 2

    def test_unsound_rewrite_caught(self):
        def fn(plan):
            if isinstance(plan, ast.Select):
                return plan.input  # dropping selections is wrong
            return None

        rule = Rewrite("drop_select_bad", fn, typed=True)
        plans = [
            b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(2)), b.table("T")),
        ]
        with pytest.raises(CounterexampleError):
            check_rewrite(rule, plans, trials_per_plan=60)

    def test_returns_zero_when_rule_never_fires(self):
        rule = Rewrite("never", lambda plan: None)
        assert check_rewrite(rule, random_plans(5)) == 0


class TestGenerators:
    def test_random_plans_deterministic(self):
        assert random_plans(5, seed=3) == random_plans(5, seed=3)

    def test_sorted_generation_shapes(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            plan = gen_plan(rng, "bag", depth=2)
            assert plan is not None

    def test_env_using_plans_are_generated(self):
        import random

        from repro.nraenv.ast import is_nra

        rng = random.Random(1)
        plans = [gen_plan(rng, "any", depth=3) for _ in range(60)]
        assert any(not is_nra(plan) for plan in plans)
