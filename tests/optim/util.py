"""Shared helpers for per-rule rewrite tests.

For each rewrite rule the tests build *host plans* that contain the
rule's left-hand-side shape with randomized sub-plans, then assert:

1. the rule fires on the host plan (the pattern matcher works), and
2. the rewritten plan is equivalent to the original on random
   environments/data (the Coq lemma, checked empirically).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.nraenv import ast
from repro.optim.engine import Rewrite, rewrite_once
from repro.optim.verify import check_plans_equivalent, gen_plan

PlanMaker = Callable[[random.Random], ast.NraeNode]


def assert_rule_sound(
    rule: Rewrite,
    makers: Sequence[PlanMaker],
    samples_per_maker: int = 6,
    trials: int = 30,
    seed: int = 0,
) -> None:
    """Check that ``rule`` fires on every maker's plans and is sound."""
    rng = random.Random(seed)
    for maker_index, maker in enumerate(makers):
        fired_any = False
        for sample in range(samples_per_maker):
            plan = maker(rng)
            rewritten = rewrite_once(plan, [rule])
            if rewritten == plan:
                continue
            fired_any = True
            check_plans_equivalent(
                plan,
                rewritten,
                trials=trials,
                typed=rule.typed,
                seed=seed + 1000 * maker_index + sample,
            )
        assert fired_any, "rule %s never fired on maker #%d" % (
            rule.name,
            maker_index,
        )


def bag_plan(rng: random.Random) -> ast.NraeNode:
    return gen_plan(rng, "bag", depth=2)


def pred_plan(rng: random.Random) -> ast.NraeNode:
    return gen_plan(rng, "pred", depth=2)


def elem_plan(rng: random.Random) -> ast.NraeNode:
    return gen_plan(rng, "elem", depth=2)


def record_plan(rng: random.Random) -> ast.NraeNode:
    return gen_plan(rng, "record", depth=2)


def rule_by_name(rules, name: str) -> Rewrite:
    for rule in rules:
        if rule.name == name:
            return rule
    raise KeyError(name)
