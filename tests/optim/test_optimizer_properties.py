"""Whole-optimizer property tests.

The per-rule tests check each lemma; these check the composition: a full
`optimize_nraenv`/`optimize_nnrc` run preserves semantics on random
plans — the end-to-end statement a verified optimizer carries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nnrc.eval import eval_nnrc
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.defaults import optimize_nnrc, optimize_nraenv
from repro.optim.verify import (
    check_plans_equivalent,
    gen_plan,
    random_constants,
    random_datum,
    random_environment,
)
from repro.translate.nraenv_to_nnrc import nraenv_to_nnrc

_FAILED = object()


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=100, deadline=None)
def test_optimize_nraenv_preserves_semantics(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    optimized = optimize_nraenv(plan).plan
    # Typed check: the rule set mixes typed and untyped rewrites, and the
    # engine only promises Definition 4 on well-typed plans.
    check_plans_equivalent(plan, optimized, trials=30, typed=True, seed=seed)


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=80, deadline=None)
def test_optimize_nnrc_preserves_semantics(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    expr = nraenv_to_nnrc(plan)
    optimized = optimize_nnrc(expr).plan
    for trial in range(20):
        env = {
            "d0": random_datum(rng),
            "e0": random_environment(rng, bag_env=rng.random() < 0.2),
        }
        constants = random_constants(rng)
        try:
            expected = eval_nnrc(expr, env, constants)
        except EvalError:
            expected = _FAILED
        try:
            actual = eval_nnrc(optimized, env, constants)
        except EvalError:
            actual = _FAILED
        if expected is _FAILED or actual is _FAILED:
            continue  # typed-mode discard
        assert actual == expected, (expr, optimized)


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=60, deadline=None)
def test_optimize_never_increases_cost(seed):
    from repro.optim.cost import size_depth_cost

    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    result = optimize_nraenv(plan)
    assert size_depth_cost(result.plan) <= size_depth_cost(plan)
    assert result.final_cost == size_depth_cost(result.plan)


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=40, deadline=None)
def test_optimize_is_idempotent_on_its_output(seed):
    """Optimizing an optimized plan must not find further reductions
    worth more than the stall tolerance (engine stability)."""
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    once = optimize_nraenv(plan).plan
    twice = optimize_nraenv(once).plan
    assert twice.size() <= once.size()
