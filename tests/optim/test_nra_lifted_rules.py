"""Per-rule soundness tests for Figure 12 (classic NRA rules).

Host plans deliberately embed *environment-manipulating* sub-plans where
the figure's meta-variables allow arbitrary plans — exactly the reuse
Theorem 1 licenses, so these tests double as lifting checks.
"""

import random

from repro.data.model import Bag, Record, rec
from repro.nraenv import builders as b
from repro.optim.nra_lifted_rules import (
    classic_relational_rules,
    figure12_rules,
    map_over_flatten,
)
from repro.optim.engine import Rewrite
from tests.optim.util import (
    assert_rule_sound,
    bag_plan,
    elem_plan,
    pred_plan,
    record_plan,
    rule_by_name,
)

RULES = figure12_rules() + classic_relational_rules()


def env_elem(rng: random.Random):
    """An element transformer that *reads the environment*."""
    return b.concat(b.rec_field("e", b.dot(b.env(), "u")), record_plan(rng))


class TestRecordRules:
    def test_dot_over_rec(self):
        assert_rule_sound(
            rule_by_name(RULES, "dot_over_rec"),
            [lambda rng: b.dot(b.rec_field("a", elem_plan(rng)), "a")],
        )

    def test_dot_over_concat_eq_r(self):
        assert_rule_sound(
            rule_by_name(RULES, "dot_over_concat_eq_r"),
            [
                lambda rng: b.dot(
                    b.concat(record_plan(rng), b.rec_field("z", elem_plan(rng))), "z"
                )
            ],
        )

    def test_dot_over_concat_neq_r(self):
        assert_rule_sound(
            rule_by_name(RULES, "dot_over_concat_neq_r"),
            [
                lambda rng: b.dot(
                    b.concat(b.id_(), b.rec_field("z", elem_plan(rng))), "a"
                )
            ],
        )

    def test_dot_over_concat_neq_l(self):
        assert_rule_sound(
            rule_by_name(RULES, "dot_over_concat_neq_l"),
            [
                lambda rng: b.dot(
                    b.concat(b.rec_field("z", elem_plan(rng)), b.id_()), "a"
                )
            ],
        )

    def test_merge_empty_rec_l(self):
        assert_rule_sound(
            rule_by_name(RULES, "merge_empty_rec_l"),
            [lambda rng: b.merge(b.const(Record({})), record_plan(rng))],
        )

    def test_merge_empty_rec_r(self):
        assert_rule_sound(
            rule_by_name(RULES, "merge_empty_rec_r"),
            [lambda rng: b.merge(record_plan(rng), b.const(Record({})))],
        )

    def test_product_singletons(self):
        assert_rule_sound(
            rule_by_name(RULES, "product_singletons"),
            [
                lambda rng: b.product(
                    b.coll(b.rec_field("l", elem_plan(rng))),
                    b.coll(b.rec_field("r", elem_plan(rng))),
                )
            ],
        )


class TestCompositionRules:
    def test_app_over_id_l(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_id_l"),
            [lambda rng: b.comp(b.id_(), elem_plan(rng))],
        )

    def test_app_over_id_r(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_id_r"),
            [lambda rng: b.comp(elem_plan(rng), b.id_())],
        )

    def test_app_over_unop(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_unop"),
            [lambda rng: b.comp(b.coll(elem_plan(rng)), record_plan(rng))],
        )

    def test_app_over_binop(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_binop"),
            [
                lambda rng: b.comp(
                    b.concat(b.id_(), record_plan(rng)), record_plan(rng)
                )
            ],
        )

    def test_app_over_ignoreid(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_ignoreid"),
            [lambda rng: b.comp(b.table("T"), elem_plan(rng))],
        )

    def test_app_over_app(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_app"),
            [
                lambda rng: b.comp(
                    b.comp(elem_plan(rng), elem_plan(rng)), record_plan(rng)
                )
            ],
        )

    def test_app_over_map(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_map"),
            [lambda rng: b.comp(b.chi(env_elem(rng), b.id_()), bag_plan(rng))],
        )

    def test_app_over_select(self):
        assert_rule_sound(
            rule_by_name(RULES, "app_over_select"),
            [lambda rng: b.comp(b.sigma(pred_plan(rng), b.id_()), bag_plan(rng))],
        )


class TestFlattenMapRules:
    def test_double_flatten_map_coll(self):
        assert_rule_sound(
            rule_by_name(RULES, "double_flatten_map_coll"),
            [
                lambda rng: b.flatten_(
                    b.chi(
                        b.chi(b.coll(env_elem(rng)), b.dot(b.id_(), "xs")),
                        b.chi(b.rec_field("xs", bag_plan(rng)), bag_plan(rng)),
                    )
                )
            ],
            trials=20,
        )

    def test_map_over_flatten_map(self):
        assert_rule_sound(
            rule_by_name(RULES, "map_over_flatten_map"),
            [
                lambda rng: b.chi(
                    env_elem(rng),
                    b.flatten_(b.chi(b.coll(b.id_()), bag_plan(rng))),
                )
            ],
        )

    def test_map_over_flatten_defined_but_not_default(self):
        # Figure 12 lists it; it is size-increasing so the default set
        # omits it — still must be sound.
        rule = Rewrite("map_over_flatten", map_over_flatten, typed=False)
        assert_rule_sound(
            rule,
            [lambda rng: b.chi(env_elem(rng), b.flatten_(b.coll(bag_plan(rng))))],
        )
        assert "map_over_flatten" not in {r.name for r in RULES}

    def test_flatten_coll(self):
        assert_rule_sound(
            rule_by_name(RULES, "flatten_coll"),
            [lambda rng: b.flatten_(b.coll(bag_plan(rng)))],
        )

    def test_flatten_map_coll(self):
        assert_rule_sound(
            rule_by_name(RULES, "flatten_map_coll"),
            [lambda rng: b.flatten_(b.chi(b.coll(env_elem(rng)), bag_plan(rng)))],
        )

    def test_map_into_id(self):
        assert_rule_sound(
            rule_by_name(RULES, "map_into_id"),
            [lambda rng: b.chi(b.id_(), bag_plan(rng))],
        )

    def test_map_map_compose(self):
        assert_rule_sound(
            rule_by_name(RULES, "map_map_compose"),
            [lambda rng: b.chi(env_elem(rng), b.chi(env_elem(rng), bag_plan(rng)))],
        )

    def test_map_singleton(self):
        assert_rule_sound(
            rule_by_name(RULES, "map_singleton"),
            [lambda rng: b.chi(env_elem(rng), b.coll(record_plan(rng)))],
        )

    def test_map_full_over_select(self):
        assert_rule_sound(
            rule_by_name(RULES, "map_full_over_select"),
            [
                lambda rng: b.chi(
                    env_elem(rng), b.sigma(pred_plan(rng), b.coll(record_plan(rng)))
                )
            ],
        )


class TestClassicRelationalRules:
    def test_select_union_distr(self):
        assert_rule_sound(
            rule_by_name(RULES, "select_union_distr"),
            [lambda rng: b.sigma(pred_plan(rng), b.union(bag_plan(rng), bag_plan(rng)))],
        )

    def test_select_select_and(self):
        assert_rule_sound(
            rule_by_name(RULES, "select_select_and"),
            [lambda rng: b.sigma(pred_plan(rng), b.sigma(pred_plan(rng), bag_plan(rng)))],
        )

    def test_constant_fold(self):
        assert_rule_sound(
            rule_by_name(RULES, "constant_fold"),
            [
                lambda rng: b.add(b.const(rng.randint(0, 5)), b.const(2)),
                lambda rng: b.coll(b.const(rng.randint(0, 3))),
            ],
        )

    def test_union_empty(self):
        assert_rule_sound(
            rule_by_name(RULES, "union_empty"),
            [
                lambda rng: b.union(bag_plan(rng), b.const(Bag([]))),
                lambda rng: b.union(b.const(Bag([])), bag_plan(rng)),
            ],
        )

    def test_map_over_nil(self):
        assert_rule_sound(
            rule_by_name(RULES, "map_over_nil"),
            [
                lambda rng: b.chi(elem_plan(rng), b.const(Bag([]))),
                lambda rng: b.sigma(pred_plan(rng), b.const(Bag([]))),
            ],
        )

    def test_merge_env_to_left(self):
        assert_rule_sound(
            rule_by_name(RULES, "merge_env_to_left"),
            [lambda rng: b.merge(record_plan(rng), b.env())],
        )
