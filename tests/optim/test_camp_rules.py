"""Tests for the Figure 13 CAMP-targeted NRAe rewrites.

Beyond per-rule soundness, these rules must actually *fire* on plans
produced by the CAMP→NRAe translation — that is their entire purpose.
"""

from repro.camp import ast as camp
from repro.data import operators as ops
from repro.data.model import Record, bag, rec
from repro.nraenv import builders as b
from repro.nraenv.eval import eval_nraenv
from repro.optim.camp_specific_rules import figure13_rules
from repro.optim.defaults import optimize_nraenv
from repro.translate.camp_to_nraenv import camp_to_nraenv
from tests.optim.util import assert_rule_sound, pred_plan, record_plan, rule_by_name

RULES = figure13_rules()


class TestPerRule:
    def test_compose_selects_in_mapenv(self):
        # flatten(χe⟨χ⟨Env⟩(σ⟨q1⟩({In}))⟩) ∘e χ⟨Env⟩(σ⟨q2⟩({In}))
        def maker(rng):
            return b.appenv(
                b.flatten_(
                    b.chie(b.chi(b.env(), b.sigma(pred_plan(rng), b.coll(b.id_()))))
                ),
                b.chi(b.env(), b.sigma(pred_plan(rng), b.coll(b.id_()))),
            )

        assert_rule_sound(rule_by_name(RULES, "compose_selects_in_mapenv"), [maker])

    def test_appenv_mapenv_to_map(self):
        # (χe⟨q⟩) ∘e (Env ⊗ [a: In])
        def maker(rng):
            body = b.coll(b.dot(b.env(), "x"))
            return b.appenv(
                b.chie(body), b.merge(b.env(), b.rec_field("x", b.id_()))
            )

        assert_rule_sound(rule_by_name(RULES, "appenv_mapenv_to_map"), [maker])

    def test_appenv_flatten_mapenv_to_map(self):
        def maker(rng):
            body = b.chi(b.dot(b.env(), "x"), b.coll(b.const(1)))
            return b.appenv(
                b.flatten_(b.chie(b.coll(body))),
                b.merge(b.env(), b.rec_field("x", b.id_())),
            )

        assert_rule_sound(rule_by_name(RULES, "appenv_flatten_mapenv_to_map"), [maker])

    def test_flip_env6(self):
        # χ⟨Env ⊗ In⟩(σ⟨q1⟩(Env ⊗ q2)) ⇒ χ⟨{In}⟩(σ⟨q1⟩(Env ⊗ q2))
        def maker(rng):
            return b.chi(
                b.merge(b.env(), b.id_()),
                b.sigma(pred_plan(rng), b.merge(b.env(), record_plan(rng))),
            )

        assert_rule_sound(rule_by_name(RULES, "flip_env6"), [maker])


class TestOnRealCampPlans:
    def _letenv_pattern(self):
        # let env += [x: it] in (it = env.x) — the body reads both the
        # datum and the environment, which is exactly the shape Figure
        # 13's rule 2 (appenv_mapenv_to_map) exists for.
        body = camp.PBinop(
            ops.OpEq(), camp.PIt(), camp.PUnop(ops.OpDot("x"), camp.PEnv())
        )
        return camp.PLetEnv(camp.PUnop(ops.OpRec("x"), camp.PIt()), body)

    def test_figure13_rules_fire_during_camp_optimization(self):
        pattern = self._letenv_pattern()
        plan = camp_to_nraenv(pattern)
        result = optimize_nraenv(plan)
        fired = {
            name
            for name in result.fire_counts
            if name in {rule.name for rule in RULES}
        }
        assert fired, "no Figure 13 rule fired on a CAMP plan (counts: %r)" % (
            result.fire_counts,
        )

    def test_optimization_preserves_camp_results(self):
        pattern = self._letenv_pattern()
        plan = camp_to_nraenv(pattern)
        optimized = optimize_nraenv(plan).plan
        for datum in (1, 2, "x"):
            assert eval_nraenv(plan, Record({}), datum) == eval_nraenv(
                optimized, Record({}), datum
            )

    def test_optimization_shrinks_camp_plans(self, camp_programs):
        for name, program in camp_programs.items():
            plan = camp_to_nraenv(program.pattern)
            result = optimize_nraenv(plan)
            assert result.plan.size() < plan.size(), name

    def test_map_into_id_fires_via_nraenv_not_via_nra(self, camp_programs):
        """The paper's §7 observation: ``χ⟨In⟩(q) ⇒ q`` is enabled by the
        NRAe env rewrites but never triggers on the direct NRA plans."""
        from repro.optim.defaults import optimize_nra
        from repro.translate.camp_to_nra import camp_to_nra

        via_nraenv_fires = 0
        via_nra_fires = 0
        for name, program in camp_programs.items():
            via_nraenv_fires += optimize_nraenv(
                camp_to_nraenv(program.pattern)
            ).fired("map_into_id")
            via_nra_fires += optimize_nra(camp_to_nra(program.pattern)).fired(
                "map_into_id"
            )
        assert via_nraenv_fires > 0
        assert via_nraenv_fires > via_nra_fires
