"""Per-rule tests for the NNRC optimizer."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.data.operators import OpAdd, OpBag, OpConcat, OpDot, OpFlatten, OpRec
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc
from repro.optim.defaults import optimize_nnrc
from repro.optim.nnrc_rules import nnrc_rules
from tests.optim.util import rule_by_name

RULES = nnrc_rules()


def apply_rule(name, expr):
    rule = rule_by_name(RULES, name)
    result = rule.apply(expr)
    assert result is not None, "%s did not fire on %r" % (name, expr)
    return result


def add(left, right):
    return ast.Binop(OpAdd(), left, right)


class TestLetRules:
    def test_dead_let(self):
        expr = ast.Let("x", ast.Const(1), ast.Const(2))
        assert apply_rule("nnrc_dead_let", expr) == ast.Const(2)

    def test_dead_let_keeps_used_let(self):
        expr = ast.Let("x", ast.Const(1), ast.Var("x"))
        assert rule_by_name(RULES, "nnrc_dead_let").apply(expr) is None

    def test_let_inline_trivial_defn(self):
        expr = ast.Let("x", ast.Const(1), add(ast.Var("x"), ast.Var("x")))
        assert apply_rule("nnrc_let_inline", expr) == add(ast.Const(1), ast.Const(1))

    def test_let_inline_single_use(self):
        defn = add(ast.Var("y"), ast.Const(1))
        expr = ast.Let("x", defn, add(ast.Var("x"), ast.Const(5)))
        assert apply_rule("nnrc_let_inline", expr) == add(defn, ast.Const(5))

    def test_let_inline_refuses_duplication_into_loop(self):
        # x used once but inside a For body: inlining would recompute per
        # element.
        defn = add(ast.Var("y"), ast.Const(1))
        body = ast.For("i", ast.Var("xs"), add(ast.Var("x"), ast.Var("i")))
        expr = ast.Let("x", defn, body)
        assert rule_by_name(RULES, "nnrc_let_inline").apply(expr) is None

    def test_let_inline_trivial_into_loop_is_fine(self):
        body = ast.For("i", ast.Var("xs"), add(ast.Var("x"), ast.Var("i")))
        expr = ast.Let("x", ast.Var("y"), body)
        result = apply_rule("nnrc_let_inline", expr)
        assert eval_nnrc(result, {"y": 1, "xs": bag(1, 2)}) == bag(2, 3)


class TestForRules:
    def test_for_nil(self):
        expr = ast.For("x", ast.Const(Bag([])), ast.Var("x"))
        assert apply_rule("nnrc_for_nil", expr) == ast.Const(Bag([]))

    def test_for_singleton(self):
        expr = ast.For("x", ast.Unop(OpBag(), ast.Const(1)), add(ast.Var("x"), ast.Const(1)))
        result = apply_rule("nnrc_for_singleton", expr)
        assert eval_nnrc(result) == eval_nnrc(expr) == bag(2)

    def test_for_for_fusion(self):
        inner = ast.For("y", ast.Var("xs"), add(ast.Var("y"), ast.Const(1)))
        expr = ast.For("x", inner, add(ast.Var("x"), ast.Var("x")))
        result = apply_rule("nnrc_for_for_fusion", expr)
        env = {"xs": bag(1, 2)}
        assert eval_nnrc(result, env) == eval_nnrc(expr, env) == bag(4, 6)

    def test_for_for_fusion_respects_capture(self):
        # Inner binder free in the outer body: must not fuse.
        inner = ast.For("y", ast.Var("xs"), ast.Var("y"))
        expr = ast.For("x", inner, add(ast.Var("x"), ast.Var("y")))
        assert rule_by_name(RULES, "nnrc_for_for_fusion").apply(expr) is None

    def test_for_var_body(self):
        expr = ast.For("x", ast.Var("xs"), ast.Var("x"))
        assert apply_rule("nnrc_for_var_body", expr) == ast.Var("xs")


class TestIfAndFlatten:
    def test_if_const_cond(self):
        assert apply_rule(
            "nnrc_if_const_cond", ast.If(ast.Const(True), ast.Const(1), ast.Const(2))
        ) == ast.Const(1)
        assert apply_rule(
            "nnrc_if_const_cond", ast.If(ast.Const(False), ast.Const(1), ast.Const(2))
        ) == ast.Const(2)

    def test_if_same_branches(self):
        expr = ast.If(ast.Var("c"), ast.Const(1), ast.Const(1))
        assert apply_rule("nnrc_if_same_branches", expr) == ast.Const(1)

    def test_flatten_coll(self):
        expr = ast.Unop(OpFlatten(), ast.Unop(OpBag(), ast.Var("xs")))
        assert apply_rule("nnrc_flatten_coll", expr) == ast.Var("xs")

    def test_flatten_for_coll(self):
        expr = ast.Unop(
            OpFlatten(),
            ast.For("x", ast.Var("xs"), ast.Unop(OpBag(), ast.Var("x"))),
        )
        result = apply_rule("nnrc_flatten_for_coll", expr)
        assert result == ast.For("x", ast.Var("xs"), ast.Var("x"))


class TestRecordAndFolding:
    def test_dot_over_rec(self):
        expr = ast.Unop(OpDot("a"), ast.Unop(OpRec("a"), ast.Var("v")))
        assert apply_rule("nnrc_dot_over_rec", expr) == ast.Var("v")

    def test_dot_over_concat_matching_right(self):
        expr = ast.Unop(
            OpDot("a"),
            ast.Binop(OpConcat(), ast.Var("r"), ast.Unop(OpRec("a"), ast.Var("v"))),
        )
        assert apply_rule("nnrc_dot_over_concat", expr) == ast.Var("v")

    def test_dot_over_concat_mismatching_right(self):
        expr = ast.Unop(
            OpDot("b"),
            ast.Binop(OpConcat(), ast.Var("r"), ast.Unop(OpRec("a"), ast.Var("v"))),
        )
        assert apply_rule("nnrc_dot_over_concat", expr) == ast.Unop(OpDot("b"), ast.Var("r"))

    def test_constant_fold(self):
        expr = add(ast.Const(2), ast.Const(3))
        assert apply_rule("nnrc_constant_fold", expr) == ast.Const(5)

    def test_constant_fold_skips_errors(self):
        expr = ast.Unop(OpDot("a"), ast.Const(5))
        assert rule_by_name(RULES, "nnrc_constant_fold").apply(expr) is None


class TestWholeOptimizer:
    def test_optimizer_shrinks_translated_plans(self):
        from repro.nraenv import builders as b
        from repro.translate.nraenv_to_nnrc import nraenv_to_nnrc

        plan = b.chi(b.dot(b.id_(), "a"), b.chi(b.concat(b.id_(), b.rec_field("a", b.const(1))), b.table("T")))
        expr = nraenv_to_nnrc(plan)
        result = optimize_nnrc(expr)
        assert result.plan.size() < expr.size()
        env = {"d0": None, "e0": rec()}
        constants = {"T": bag(rec(b=1), rec(b=2))}
        assert eval_nnrc(result.plan, env, constants) == eval_nnrc(expr, env, constants)

    def test_optimizer_preserves_semantics_on_camp_pipeline(self, camp_programs):
        from repro.data.model import Record
        from repro.translate.camp_to_nraenv import camp_to_nraenv
        from repro.translate.nraenv_to_nnrc import nraenv_to_nnrc

        program = camp_programs["p03"]
        expr = nraenv_to_nnrc(camp_to_nraenv(program.pattern))
        optimized = optimize_nnrc(expr).plan
        env = {"d0": program.world, "e0": Record({})}
        constants = {"WORLD": program.world}
        assert eval_nnrc(optimized, env, constants) == eval_nnrc(expr, env, constants)
