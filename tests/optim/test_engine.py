"""Unit tests for the rewrite engine (paper §8)."""

from repro.data.model import bag, rec
from repro.nraenv import ast, builders as b
from repro.optim.cost import depth_cost, size_cost, size_depth_cost
from repro.optim.engine import OptimizeResult, Rewrite, optimize, rewrite_once


def make_map_id_rule():
    def fn(plan):
        if isinstance(plan, ast.Map) and isinstance(plan.body, ast.ID):
            return plan.input
        return None

    return Rewrite("test_map_id", fn, typed=True, description="χ⟨In⟩(q) ⇒ q")


class TestRewrite:
    def test_apply_returns_none_when_no_change(self):
        rule = make_map_id_rule()
        assert rule.apply(b.table("T")) is None

    def test_apply_returns_rewritten_plan(self):
        rule = make_map_id_rule()
        assert rule.apply(b.chi(b.id_(), b.table("T"))) == b.table("T")

    def test_identity_result_counts_as_no_fire(self):
        rule = Rewrite("noop", lambda plan: plan)
        assert rule.apply(b.id_()) is None


class TestRewriteOnce:
    def test_applies_everywhere(self):
        rule = make_map_id_rule()
        plan = b.union(b.chi(b.id_(), b.table("T")), b.chi(b.id_(), b.table("U")))
        assert rewrite_once(plan, [rule]) == b.union(b.table("T"), b.table("U"))

    def test_fires_on_redexes_created_by_children(self):
        rule = make_map_id_rule()
        plan = b.chi(b.id_(), b.chi(b.id_(), b.table("T")))
        assert rewrite_once(plan, [rule]) == b.table("T")

    def test_counts_fires(self):
        rule = make_map_id_rule()
        counts = {}
        rewrite_once(b.chi(b.id_(), b.chi(b.id_(), b.table("T"))), [rule], counts)
        assert counts == {"test_map_id": 2}


class TestOptimize:
    def test_reaches_fixpoint(self):
        rule = make_map_id_rule()
        plan = b.chi(b.id_(), b.chi(b.id_(), b.table("T")))
        result = optimize(plan, [rule])
        assert result.plan == b.table("T")
        assert result.final_cost < result.initial_cost

    def test_no_rules_is_identity(self):
        plan = b.chi(b.id_(), b.table("T"))
        result = optimize(plan, [])
        assert result.plan == plan
        assert result.passes == 1

    def test_keeps_best_plan_under_oscillation(self):
        # Two rules that flip a plan back and forth; the engine must
        # terminate and return a no-worse plan.
        def grow(plan):
            if plan == b.table("T"):
                return b.chi(b.id_(), b.table("T"))
            return None

        def shrink(plan):
            if isinstance(plan, ast.Map) and isinstance(plan.body, ast.ID):
                return plan.input
            return None

        rules = [Rewrite("grow", grow), Rewrite("shrink", shrink)]
        result = optimize(b.chi(b.id_(), b.table("T")), rules)
        assert result.final_cost <= result.initial_cost

    def test_fired_accessor(self):
        rule = make_map_id_rule()
        result = optimize(b.chi(b.id_(), b.table("T")), [rule])
        assert result.fired("test_map_id") == 1
        assert result.fired("unknown") == 0

    def test_repr(self):
        result = OptimizeResult(b.id_(), 10, 5, 3, {})
        assert "10 → 5" in repr(result)


class TestCostFunctions:
    def test_size_cost(self):
        assert size_cost(b.chi(b.id_(), b.table("T"))) == 3

    def test_depth_cost(self):
        assert depth_cost(b.chi(b.id_(), b.table("T"))) == 1

    def test_size_depth_cost_is_sum(self):
        plan = b.chi(b.id_(), b.table("T"))
        assert size_depth_cost(plan) == size_cost(plan) + depth_cost(plan)
