"""Unit tests for the rewrite engine (paper §8)."""

from repro.data.model import bag, rec
from repro.nraenv import ast, builders as b
from repro.obs.trace import Tracer, use_tracer
from repro.optim.cost import depth_cost, size_cost, size_depth_cost
from repro.optim.engine import (
    _MAX_LOCAL_STEPS,
    _MAX_STALLED,
    OptimizeResult,
    ProvenanceLog,
    Rewrite,
    optimize,
    rewrite_once,
)


def make_map_id_rule():
    def fn(plan):
        if isinstance(plan, ast.Map) and isinstance(plan.body, ast.ID):
            return plan.input
        return None

    return Rewrite("test_map_id", fn, typed=True, description="χ⟨In⟩(q) ⇒ q")


class TestRewrite:
    def test_apply_returns_none_when_no_change(self):
        rule = make_map_id_rule()
        assert rule.apply(b.table("T")) is None

    def test_apply_returns_rewritten_plan(self):
        rule = make_map_id_rule()
        assert rule.apply(b.chi(b.id_(), b.table("T"))) == b.table("T")

    def test_identity_result_counts_as_no_fire(self):
        rule = Rewrite("noop", lambda plan: plan)
        assert rule.apply(b.id_()) is None


class TestRewriteOnce:
    def test_applies_everywhere(self):
        rule = make_map_id_rule()
        plan = b.union(b.chi(b.id_(), b.table("T")), b.chi(b.id_(), b.table("U")))
        assert rewrite_once(plan, [rule]) == b.union(b.table("T"), b.table("U"))

    def test_fires_on_redexes_created_by_children(self):
        rule = make_map_id_rule()
        plan = b.chi(b.id_(), b.chi(b.id_(), b.table("T")))
        assert rewrite_once(plan, [rule]) == b.table("T")

    def test_counts_fires(self):
        rule = make_map_id_rule()
        counts = {}
        rewrite_once(b.chi(b.id_(), b.chi(b.id_(), b.table("T"))), [rule], counts)
        assert counts == {"test_map_id": 2}


class TestOptimize:
    def test_reaches_fixpoint(self):
        rule = make_map_id_rule()
        plan = b.chi(b.id_(), b.chi(b.id_(), b.table("T")))
        result = optimize(plan, [rule])
        assert result.plan == b.table("T")
        assert result.final_cost < result.initial_cost

    def test_no_rules_is_identity(self):
        plan = b.chi(b.id_(), b.table("T"))
        result = optimize(plan, [])
        assert result.plan == plan
        assert result.passes == 1

    def test_keeps_best_plan_under_oscillation(self):
        # Two rules that flip a plan back and forth; the engine must
        # terminate and return a no-worse plan.
        def grow(plan):
            if plan == b.table("T"):
                return b.chi(b.id_(), b.table("T"))
            return None

        def shrink(plan):
            if isinstance(plan, ast.Map) and isinstance(plan.body, ast.ID):
                return plan.input
            return None

        rules = [Rewrite("grow", grow), Rewrite("shrink", shrink)]
        result = optimize(b.chi(b.id_(), b.table("T")), rules)
        assert result.final_cost <= result.initial_cost

    def test_fired_accessor(self):
        rule = make_map_id_rule()
        result = optimize(b.chi(b.id_(), b.table("T")), [rule])
        assert result.fired("test_map_id") == 1
        assert result.fired("unknown") == 0

    def test_repr(self):
        result = OptimizeResult(b.id_(), 10, 5, 3, {})
        assert "10 → 5" in repr(result)


def make_rename_rule(src, dst):
    def fn(plan):
        if isinstance(plan, ast.GetConstant) and plan.cname == src:
            return b.table(dst)
        return None

    return Rewrite("rename_%s_%s" % (src, dst), fn)


def make_grow_rule():
    """Wraps every table in χ⟨In⟩(·): cost strictly increases each pass."""

    def fn(plan):
        if isinstance(plan, ast.GetConstant):
            return b.chi(b.id_(), plan)
        return None

    return Rewrite("grow", fn)


class TestTerminationPaths:
    """The three ways an optimization run stops (plus the provenance log)."""

    def test_fixpoint(self):
        provenance = ProvenanceLog()
        plan = b.chi(b.id_(), b.chi(b.id_(), b.table("T")))
        result = optimize(plan, [make_map_id_rule()], provenance=provenance)
        assert result.plan == b.table("T")
        # Pass 1 collapses both redexes, pass 2 confirms the fixpoint.
        assert result.passes == 2
        assert provenance.termination == "fixpoint"
        assert result.fire_counts == {"test_map_id": 2}
        assert provenance.rule_counts() == result.fire_counts
        # Cost trajectory: initial, after pass 1, repeated on the
        # no-change pass.
        assert provenance.costs == [result.initial_cost, result.final_cost, result.final_cost]
        assert [e.pass_index for e in provenance.events] == [1, 1]
        assert all(e.size_after < e.size_before for e in provenance.events)

    def test_revisit_breaks_rename_cycle(self):
        # T → U → V → T keeps firing at one node, so every pass burns the
        # whole local-step budget; 64 ≡ 1 (mod 3) advances the plan one
        # rename per pass, and pass 3 lands back on the original plan —
        # the `seen` set must catch the cycle.
        assert _MAX_LOCAL_STEPS % 3 == 1
        rules = [
            make_rename_rule("T", "U"),
            make_rename_rule("U", "V"),
            make_rename_rule("V", "T"),
        ]
        provenance = ProvenanceLog()
        result = optimize(b.table("T"), rules, provenance=provenance)
        assert provenance.termination == "revisit"
        assert result.passes == 3
        assert result.plan == b.table("T")  # best plan: cost never improved
        assert provenance.rule_counts() == result.fire_counts
        assert sum(result.fire_counts.values()) == 3 * _MAX_LOCAL_STEPS

    def test_stall_after_eight_non_improving_passes(self):
        provenance = ProvenanceLog()
        result = optimize(b.table("T"), [make_grow_rule()], provenance=provenance)
        assert provenance.termination == "stall"
        assert result.passes == _MAX_STALLED
        # The engine returns the best plan seen, which is the original.
        assert result.plan == b.table("T")
        assert result.final_cost == result.initial_cost
        assert result.fire_counts == {"grow": _MAX_STALLED}
        assert provenance.rule_counts() == result.fire_counts
        # One fire per pass, each strictly worsening the cost.
        costs = provenance.costs
        assert len(costs) == _MAX_STALLED + 1
        assert all(later > earlier for earlier, later in zip(costs, costs[1:]))

    def test_oscillation_terminates_via_revisit(self):
        def grow(plan):
            if plan == b.table("T"):
                return b.chi(b.id_(), b.table("T"))
            return None

        provenance = ProvenanceLog()
        rules = [Rewrite("grow", grow), make_map_id_rule()]
        optimize(b.chi(b.id_(), b.table("T")), rules, provenance=provenance)
        assert provenance.termination in ("revisit", "stall", "fixpoint")
        assert provenance.termination != ""


class TestProvenance:
    def test_untraced_runs_carry_no_provenance(self):
        result = optimize(b.chi(b.id_(), b.table("T")), [make_map_id_rule()])
        assert result.provenance is None

    def test_enabled_tracer_collects_provenance_with_timing(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = optimize(b.chi(b.id_(), b.table("T")), [make_map_id_rule()])
        provenance = result.provenance
        assert provenance is not None and provenance.timing
        assert provenance.termination == "fixpoint"
        assert provenance.rule_counts() == result.fire_counts
        assert provenance.rule_attempts["test_map_id"] >= 1
        assert provenance.rule_seconds["test_map_id"] >= 0.0
        # The optimizer also left spans: one per run, one per pass.
        optimize_span = tracer.find("optimize")
        assert optimize_span is not None
        assert [c.name for c in optimize_span.children] == ["pass 1", "pass 2"]

    def test_rewrite_once_records_events(self):
        provenance = ProvenanceLog()
        plan = b.chi(b.id_(), b.chi(b.id_(), b.table("T")))
        rewrite_once(plan, [make_map_id_rule()], provenance=provenance, pass_index=7)
        assert [e.pass_index for e in provenance.events] == [7, 7]
        assert provenance.rule_counts() == {"test_map_id": 2}

    def test_repr(self):
        provenance = ProvenanceLog()
        assert "running" in repr(provenance)


class TestCostFunctions:
    def test_size_cost(self):
        assert size_cost(b.chi(b.id_(), b.table("T"))) == 3

    def test_depth_cost(self):
        assert depth_cost(b.chi(b.id_(), b.table("T"))) == 1

    def test_size_depth_cost_is_sum(self):
        plan = b.chi(b.id_(), b.table("T"))
        assert size_depth_cost(plan) == size_cost(plan) + depth_cost(plan)

    def test_node_costs_covers_every_subtree(self):
        from repro.optim.cost import node_costs

        plan = b.sigma(b.const(True), b.chi(b.id_(), b.table("T")))
        costs = node_costs(plan)
        nodes = list(plan.walk())
        assert set(costs) == {id(node) for node in nodes}
        assert costs[id(plan)] == size_depth_cost(plan)
        # a subtree's cost never exceeds its parent's
        assert costs[id(plan.input)] < costs[id(plan)]


class TestSpearman:
    def test_perfect_agreement(self):
        from repro.optim.cost import spearman_rank_correlation

        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == 1.0

    def test_perfect_disagreement(self):
        from repro.optim.cost import spearman_rank_correlation

        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == -1.0

    def test_ties_get_average_ranks(self):
        from repro.optim.cost import spearman_rank_correlation

        # monotone up to a tie: still strongly positive, not 1.0 exactly
        rho = spearman_rank_correlation([1, 2, 2, 4], [5, 6, 7, 8])
        assert 0.9 < rho < 1.0

    def test_degenerate_inputs_return_none(self):
        from repro.optim.cost import spearman_rank_correlation

        assert spearman_rank_correlation([], []) is None
        assert spearman_rank_correlation([1], [2]) is None
        assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) is None

    def test_length_mismatch_rejected(self):
        import pytest

        from repro.optim.cost import spearman_rank_correlation

        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1])
