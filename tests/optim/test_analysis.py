"""Tests for the nodup analysis and the tdup_elim rewrite (paper §1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, bag, rec
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.analysis import nodup
from repro.optim.nra_lifted_rules import classic_relational_rules
from repro.optim.verify import gen_plan, random_constants, random_datum
from tests.optim.util import assert_rule_sound, bag_plan, pred_plan, rule_by_name


class TestNodupPredicate:
    def test_distinct_is_nodup(self):
        assert nodup(b.distinct(b.table("T")))

    def test_singleton_is_nodup(self):
        assert nodup(b.coll(b.id_()))

    def test_duplicate_free_constant(self):
        assert nodup(b.const(bag(1, 2, 3)))
        assert not nodup(b.const(bag(1, 1)))
        assert not nodup(b.const(5))

    def test_select_preserves_nodup(self):
        assert nodup(b.sigma(b.const(True), b.distinct(b.table("T"))))
        assert not nodup(b.sigma(b.const(True), b.table("T")))

    def test_table_unknown(self):
        assert not nodup(b.table("T"))

    def test_composition_uses_after(self):
        assert nodup(b.comp(b.distinct(b.id_()), b.table("T")))
        assert nodup(b.appenv(b.coll(b.env()), b.id_()))

    def test_union_not_nodup(self):
        assert not nodup(b.union(b.distinct(b.table("T")), b.distinct(b.table("T"))))


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=80, deadline=None)
def test_nodup_soundness(seed):
    """If nodup(q) holds and q evaluates to a bag, it has no duplicates."""
    rng = random.Random(seed)
    plan = gen_plan(rng, "bag", depth=3)
    if rng.random() < 0.5:
        plan = b.distinct(plan) if rng.random() < 0.5 else b.sigma(
            b.gt(b.dot(b.id_(), "a"), b.const(2)), plan
        )
    if not nodup(plan):
        return
    env = rec(a=rng.randint(0, 5), u=rng.randint(0, 5))
    try:
        value = eval_nraenv(plan, env, random_datum(rng), random_constants(rng))
    except EvalError:
        return
    if isinstance(value, Bag):
        assert len(value.distinct()) == len(value), plan


class TestDupElimRewrite:
    def test_fires_and_is_sound(self):
        assert_rule_sound(
            rule_by_name(classic_relational_rules(), "dup_elim"),
            [
                lambda rng: b.distinct(b.distinct(bag_plan(rng))),
                lambda rng: b.distinct(b.sigma(pred_plan(rng), b.distinct(bag_plan(rng)))),
                lambda rng: b.distinct(b.coll(b.id_())),
            ],
        )

    def test_does_not_fire_without_precondition(self):
        rule = rule_by_name(classic_relational_rules(), "dup_elim")
        assert rule.apply(b.distinct(b.table("T"))) is None

    def test_in_default_rule_set(self):
        from repro.optim.defaults import default_nraenv_rules, optimize_nraenv

        assert any(r.name == "dup_elim" for r in default_nraenv_rules())
        plan = b.distinct(b.distinct(b.table("T")))
        result = optimize_nraenv(plan)
        assert result.plan == b.distinct(b.table("T"))
