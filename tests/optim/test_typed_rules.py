"""Tests for type-directed rewriting (paper §8's typed preconditions)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Record, bag, rec
from repro.data.types import TBag, TNat, TRecord, TString, TUnit
from repro.nraenv import builders as b
from repro.nraenv.eval import eval_nraenv
from repro.optim.typed_rules import (
    concat_dead_left_typed,
    dot_over_concat_typed,
    optimize_nraenv_typed,
    remove_absent_field_typed,
    typed_rewrite_pass,
)
from repro.optim.verify import check_plans_equivalent, gen_plan

ELEMENT = TRecord({"a": TNat(), "b": TNat()})
ENV = TRecord({"a": TNat(), "u": TNat()})
CONSTS = {"T": TBag(ELEMENT)}


class TestDotOverConcatTyped:
    def test_resolves_to_right_when_field_there(self):
        plan = b.dot(b.concat(b.env(), b.id_()), "b")
        result = dot_over_concat_typed(plan, ENV, ELEMENT, CONSTS)
        assert result == b.dot(b.id_(), "b")

    def test_resolves_to_left_when_absent_on_right(self):
        plan = b.dot(b.concat(b.env(), b.id_()), "u")
        result = dot_over_concat_typed(plan, ENV, ELEMENT, CONSTS)
        assert result == b.dot(b.env(), "u")

    def test_overlapping_field_goes_right(self):
        # 'a' exists on both sides; ⊕ favors the right.
        plan = b.dot(b.concat(b.env(), b.id_()), "a")
        result = dot_over_concat_typed(plan, ENV, ELEMENT, CONSTS)
        assert result == b.dot(b.id_(), "a")

    def test_no_fire_without_types(self):
        plan = b.dot(b.concat(b.env(), b.id_()), "a")
        from repro.data.types import TTop

        assert dot_over_concat_typed(plan, TTop(), TTop(), {}) is None


class TestOtherTypedRules:
    def test_remove_absent_field(self):
        plan = b.remove(b.id_(), "zzz")
        assert remove_absent_field_typed(plan, ENV, ELEMENT, CONSTS) == b.id_()
        present = b.remove(b.id_(), "a")
        assert remove_absent_field_typed(present, ENV, ELEMENT, CONSTS) is None

    def test_concat_dead_left(self):
        # Env fields {a, u}; right has {a, u, ...}? Use same-shape record.
        plan = b.concat(b.env(), b.concat(b.env(), b.rec_field("z", b.const(1))))
        result = concat_dead_left_typed(plan, ENV, ELEMENT, CONSTS)
        assert result == b.concat(b.env(), b.rec_field("z", b.const(1)))

    def test_concat_live_left_kept(self):
        plan = b.concat(b.env(), b.rec_field("z", b.const(1)))
        assert concat_dead_left_typed(plan, ENV, ELEMENT, CONSTS) is None


class TestContextThreading:
    def test_map_body_typed_with_element(self):
        # inside χ over T, In is an element; (Env ⊕ In).b resolves to In.b.
        body = b.dot(b.concat(b.env(), b.id_()), "b")
        plan = b.chi(body, b.table("T"))
        rewritten = typed_rewrite_pass(plan, ENV, TUnit(), CONSTS)
        assert rewritten == b.chi(b.dot(b.id_(), "b"), b.table("T"))

    def test_appenv_rebinds_env_type(self):
        # after ∘e [x: In], Env has field x.
        inner = b.dot(b.concat(b.env(), b.rec_field("y", b.const(1))), "x")
        plan = b.appenv(inner, b.rec_field("x", b.id_()))
        rewritten = typed_rewrite_pass(plan, ENV, TNat(), CONSTS)
        assert rewritten == b.appenv(b.dot(b.env(), "x"), b.rec_field("x", b.id_()))

    def test_untypeable_subplans_left_alone(self):
        plan = b.dot(b.concat(b.dot(b.id_(), "nope"), b.id_()), "a")
        rewritten = typed_rewrite_pass(plan, ENV, ELEMENT, CONSTS)
        # the concat's left cannot be typed; still resolvable to right
        assert rewritten == b.dot(b.id_(), "a")


class TestSqlIntegration:
    def test_row_env_plumbing_dissolves(self):
        from repro.sql.parser import parse_sql
        from repro.sql.to_nraenv import sql_to_nraenv

        emp_type = TBag(TRecord({"name": TString(), "sal": TNat()}))
        plan = sql_to_nraenv(parse_sql("select name from emp where sal > 85"))
        result = optimize_nraenv_typed(plan, TRecord({}), TUnit(), {"emp": emp_type})
        assert result.plan.size() < plan.size()
        emp = bag(rec(name="ann", sal=100), rec(name="bob", sal=80))
        assert eval_nraenv(result.plan, Record({}), None, {"emp": emp}) == eval_nraenv(
            plan, Record({}), None, {"emp": emp}
        )

    @pytest.mark.parametrize("name", ("q6", "q17", "q11"))
    def test_tpch_typed_optimization_correct(self, name, tpch_db):
        from repro.sql.parser import parse_sql
        from repro.sql.to_nraenv import sql_to_nraenv
        from repro.tpch.queries import QUERIES
        from repro.tpch.schema import table_types

        plan = sql_to_nraenv(parse_sql(QUERIES[name]))
        result = optimize_nraenv_typed(plan, TRecord({}), TUnit(), table_types())
        assert result.plan.size() < plan.size()
        assert eval_nraenv(result.plan, Record({}), None, tpch_db) == eval_nraenv(
            plan, Record({}), None, tpch_db
        )

    def test_never_worse_than_untyped(self):
        from repro.optim.defaults import optimize_nraenv
        from repro.sql.parser import parse_sql
        from repro.sql.to_nraenv import sql_to_nraenv
        from repro.tpch.queries import QUERIES
        from repro.tpch.schema import table_types

        for name in ("q1", "q12", "q14"):
            plan = sql_to_nraenv(parse_sql(QUERIES[name]))
            typed = optimize_nraenv_typed(plan, TRecord({}), TUnit(), table_types())
            untyped = optimize_nraenv(plan)
            assert typed.plan.size() <= untyped.plan.size(), name


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=60, deadline=None)
def test_typed_optimize_preserves_semantics(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    result = optimize_nraenv_typed(plan, ENV, ELEMENT, CONSTS)
    check_plans_equivalent(plan, result.plan, trials=25, typed=True, seed=seed)
