"""Per-rule soundness tests for the Figure 3 rewrites.

Each rewrite gets host-plan templates with randomized sub-plans; the
helper asserts the rule fires and that rewriting preserves Definition
3/4 equivalence on random inputs — the empirical reading of the Coq
lemmas the figure links to.
"""

from repro.nraenv import builders as b
from repro.optim.nraenv_rules import figure3_rules
from tests.optim.util import (
    assert_rule_sound,
    bag_plan,
    elem_plan,
    pred_plan,
    record_plan,
    rule_by_name,
)

RULES = figure3_rules()


class TestEnvRemovalRules:
    def test_appenv_over_env_r(self):
        # q ∘e Env ⇒ q
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_env_r"),
            [lambda rng: b.appenv(bag_plan(rng), b.env())],
        )

    def test_appenv_over_env_l(self):
        # Env ∘e q ⇒ q
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_env_l"),
            [lambda rng: b.appenv(b.env(), record_plan(rng))],
        )

    def test_appenv_over_ignoreenv(self):
        # if Ie(q1), q1 ∘e q2 ⇒ q1
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_ignoreenv"),
            [
                lambda rng: b.appenv(b.table("T"), record_plan(rng)),
                lambda rng: b.appenv(b.dot(b.id_(), "a"), record_plan(rng)),
            ],
        )

    def test_flip_env1(self):
        # χ⟨Env⟩(σ⟨q⟩({In})) ∘e In ⇒ σ⟨q⟩({In}) ∘e In
        assert_rule_sound(
            rule_by_name(RULES, "flip_env1"),
            [
                lambda rng: b.appenv(
                    b.chi(b.env(), b.sigma(pred_plan(rng), b.coll(b.id_()))), b.id_()
                )
            ],
        )

    def test_flip_env4(self):
        # if Ie(q1): χ⟨Env⟩(σ⟨q1⟩({In})) ∘e q2 ⇒ χ⟨q2⟩(σ⟨q1⟩({In}))
        assert_rule_sound(
            rule_by_name(RULES, "flip_env4"),
            [
                lambda rng: b.appenv(
                    b.chi(
                        b.env(),
                        b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(2)), b.coll(b.id_())),
                    ),
                    record_plan(rng),
                )
            ],
        )

    def test_mapenv_to_env(self):
        # χe⟨Env⟩ ∘ q ⇒ Env (typed: bag environment)
        assert_rule_sound(
            rule_by_name(RULES, "mapenv_to_env"),
            [lambda rng: b.comp(b.chie(b.env()), elem_plan(rng))],
        )

    def test_mapenv_over_singleton(self):
        # χe⟨q1⟩ ∘e {q2} ⇒ {q1 ∘e q2}
        assert_rule_sound(
            rule_by_name(RULES, "mapenv_over_singleton"),
            [lambda rng: b.appenv(b.chie(elem_plan(rng)), b.coll(record_plan(rng)))],
        )

    def test_mapenv_to_map(self):
        # if Ii(q1): χe⟨q1⟩ ∘e q2 ⇒ χ⟨q1 ∘e In⟩(q2)
        assert_rule_sound(
            rule_by_name(RULES, "mapenv_to_map"),
            [
                lambda rng: b.appenv(
                    b.chie(b.dot(b.env(), "a")), bag_plan(rng)
                )
            ],
        )


class TestPushdownRules:
    def test_appenv_over_unop(self):
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_unop"),
            [lambda rng: b.appenv(b.coll(elem_plan(rng)), record_plan(rng))],
        )

    def test_appenv_over_binop(self):
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_binop"),
            [
                lambda rng: b.appenv(
                    b.concat(record_plan(rng), record_plan(rng)), record_plan(rng)
                )
            ],
        )

    def test_appenv_over_map(self):
        # if Ii(q): χ⟨q1⟩(q2) ∘e q ⇒ χ⟨q1 ∘e q⟩(q2 ∘e q)
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_map"),
            [
                lambda rng: b.appenv(
                    b.chi(elem_plan(rng), bag_plan(rng)),
                    b.concat(b.env(), b.rec_field("c", b.const(1))),
                )
            ],
        )

    def test_appenv_over_select(self):
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_select"),
            [
                lambda rng: b.appenv(
                    b.sigma(pred_plan(rng), bag_plan(rng)),
                    b.concat(b.env(), b.rec_field("c", b.const(1))),
                )
            ],
        )

    def test_appenv_over_appenv(self):
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_appenv"),
            [
                lambda rng: b.appenv(
                    b.appenv(elem_plan(rng), record_plan(rng)), record_plan(rng)
                )
            ],
        )

    def test_appenv_over_app_ie(self):
        # if Ie(q1): (q1 ∘ q2) ∘e q ⇒ q1 ∘ (q2 ∘e q)
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_app_ie"),
            [
                lambda rng: b.appenv(
                    b.comp(b.dot(b.id_(), "a"), record_plan(rng)), record_plan(rng)
                )
            ],
        )

    def test_appenv_over_env_merge_l(self):
        # if Ie(q1): (Env ⊗ q1) ∘e q ⇒ q ⊗ q1
        assert_rule_sound(
            rule_by_name(RULES, "appenv_over_env_merge_l"),
            [
                lambda rng: b.appenv(
                    b.merge(b.env(), b.const(__import__("repro.data.model", fromlist=["rec"]).rec(c=1))),
                    record_plan(rng),
                )
            ],
        )

    def test_flip_env2(self):
        # σ⟨q⟩({In}) ∘e In ⇒ σ⟨q ∘e In⟩({In})
        assert_rule_sound(
            rule_by_name(RULES, "flip_env2"),
            [lambda rng: b.appenv(b.sigma(pred_plan(rng), b.coll(b.id_())), b.id_())],
        )


class TestExtendedEnvRules:
    """The two env rewrites beyond Figure 3 (see extended_env_rules)."""

    def test_flip_env3(self):
        from repro.optim.nraenv_rules import extended_env_rules

        assert_rule_sound(
            rule_by_name(extended_env_rules(), "flip_env3"),
            [
                lambda rng: b.appenv(
                    b.chi(
                        b.coll(b.dot(b.env(), "a")),
                        b.sigma(pred_plan(rng), b.coll(b.id_())),
                    ),
                    b.id_(),
                )
            ],
        )

    def test_mapenv_over_env_select(self):
        from repro.optim.nraenv_rules import extended_env_rules

        assert_rule_sound(
            rule_by_name(extended_env_rules(), "mapenv_over_env_select"),
            [
                lambda rng: b.appenv(
                    b.chie(b.coll(b.id_())),
                    b.chi(b.env(), b.sigma(pred_plan(rng), b.coll(b.id_()))),
                )
            ],
        )


def test_every_figure3_rule_has_a_test():
    tested = {
        "appenv_over_env_r", "appenv_over_env_l", "appenv_over_ignoreenv",
        "flip_env1", "flip_env4", "mapenv_to_env", "mapenv_over_singleton",
        "mapenv_to_map", "appenv_over_unop", "appenv_over_binop",
        "appenv_over_map", "appenv_over_select", "appenv_over_appenv",
        "appenv_over_app_ie", "appenv_over_env_merge_l", "flip_env2",
    }
    assert {rule.name for rule in RULES} == tested
