"""Theorem 1 (equivalence lifting), checked empirically.

Every parametric NRA equivalence remains valid when its plan variables
are instantiated with NRAe plans that read and write the environment —
``c1 ≡c c2  ⟹  c1 ≡ec c2``.
"""

import pytest

from repro.nraenv import builders as b
from repro.nraenv.context import ParametricEquivalence, classic_nra_equivalences, q
from repro.optim.verify import (
    CounterexampleError,
    check_parametric_equivalence,
)


@pytest.mark.parametrize("name", sorted(classic_nra_equivalences()))
def test_classic_equivalence_holds_on_nra_instantiations(name):
    """The ≡c premise: equivalence over pure-NRA instantiations."""
    equiv = classic_nra_equivalences()[name]
    checked = check_parametric_equivalence(
        equiv, instantiations=15, trials_per_instantiation=15, env_using=False
    )
    assert checked == 15


@pytest.mark.parametrize("name", sorted(classic_nra_equivalences()))
def test_lifting_to_env_using_instantiations(name):
    """The ≡ec conclusion: the same equivalence with NRAe instantiations."""
    equiv = classic_nra_equivalences()[name].lift()
    checked = check_parametric_equivalence(
        equiv, instantiations=15, trials_per_instantiation=15, env_using=True
    )
    assert checked == 15


def test_lifting_checker_catches_bogus_equivalence():
    """Sanity: the harness rejects a false 'equivalence'."""
    bogus = ParametricEquivalence(
        "bogus_select_drop",
        b.sigma(q(0), q(1)),
        q(1),  # dropping a selection is not an equivalence
        var_sorts=("pred", "bag"),
    )
    with pytest.raises(CounterexampleError):
        check_parametric_equivalence(
            bogus, instantiations=40, trials_per_instantiation=40
        )


def test_select_union_distr_with_env_reading_predicate():
    """The paper's flagship rule instantiated with an Env-reading q0."""
    equiv = classic_nra_equivalences()["select_union_distr"]
    pred = b.lt(b.dot(b.env(), "u"), b.dot(b.id_(), "a"))
    lhs, rhs = equiv.instantiate([pred, b.table("T"), b.table("T")])
    from repro.optim.verify import check_plans_equivalent

    assert check_plans_equivalent(lhs, rhs, trials=60, typed=True) > 0
