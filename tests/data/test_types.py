"""Unit tests for the type lattice (paper §4.1, §8)."""

import pytest

from repro.data.foreign import DateValue
from repro.data.model import Bag, bag, rec
from repro.data.types import (
    TBag,
    TBool,
    TBottom,
    TDate,
    TFloat,
    TNat,
    TRecord,
    TString,
    TTop,
    TUnit,
    is_subtype,
    join,
    meet,
    type_of_value,
    value_has_type,
)


class TestSubtyping:
    def test_bottom_below_everything(self):
        for t in (TNat(), TBag(TBool()), TRecord({"a": TString()}), TTop()):
            assert is_subtype(TBottom(), t)

    def test_top_above_everything(self):
        for t in (TNat(), TBag(TBool()), TRecord({}), TBottom()):
            assert is_subtype(t, TTop())

    def test_top_not_below_atoms(self):
        assert not is_subtype(TTop(), TNat())

    def test_nat_below_float(self):
        assert is_subtype(TNat(), TFloat())
        assert not is_subtype(TFloat(), TNat())

    def test_bag_covariance(self):
        assert is_subtype(TBag(TNat()), TBag(TFloat()))
        assert not is_subtype(TBag(TFloat()), TBag(TNat()))

    def test_record_depth_subtyping(self):
        assert is_subtype(TRecord({"a": TNat()}), TRecord({"a": TFloat()}))

    def test_record_width_mismatch_rejected(self):
        assert not is_subtype(TRecord({"a": TNat(), "b": TNat()}), TRecord({"a": TNat()}))

    def test_reflexivity(self):
        for t in (TNat(), TBag(TRecord({"a": TDate()})), TUnit()):
            assert is_subtype(t, t)


class TestJoinMeet:
    def test_join_numeric(self):
        assert join(TNat(), TFloat()) == TFloat()

    def test_join_unrelated_is_top(self):
        assert join(TNat(), TString()) == TTop()

    def test_join_bags(self):
        assert join(TBag(TNat()), TBag(TFloat())) == TBag(TFloat())

    def test_join_records_same_fields(self):
        left = TRecord({"a": TNat()})
        right = TRecord({"a": TFloat()})
        assert join(left, right) == TRecord({"a": TFloat()})

    def test_join_with_bottom(self):
        assert join(TBottom(), TNat()) == TNat()

    def test_meet_numeric(self):
        assert meet(TNat(), TFloat()) == TNat()

    def test_meet_unrelated_is_bottom(self):
        assert meet(TNat(), TString()) == TBottom()


class TestTypeOfValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, TUnit()),
            (True, TBool()),
            (3, TNat()),
            (3.5, TFloat()),
            ("x", TString()),
            (DateValue(2020, 1, 1), TDate()),
        ],
    )
    def test_atoms(self, value, expected):
        assert type_of_value(value) == expected

    def test_empty_bag_is_bag_of_bottom(self):
        assert type_of_value(Bag([])) == TBag(TBottom())

    def test_bag_joins_element_types(self):
        assert type_of_value(bag(1, 2.5)) == TBag(TFloat())

    def test_record(self):
        assert type_of_value(rec(a=1, b="x")) == TRecord({"a": TNat(), "b": TString()})

    def test_value_has_type(self):
        assert value_has_type(bag(1, 2), TBag(TFloat()))
        assert not value_has_type(bag(1, "x"), TBag(TFloat()))
