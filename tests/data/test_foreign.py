"""Unit tests for foreign types (dates)."""

import pytest

from repro.data.foreign import DateValue, register_foreign
from repro.data.model import bag, canonical_key, values_equal


class TestDateValue:
    def test_parse_and_iso(self):
        assert DateValue.parse("1998-12-01").isoformat() == "1998-12-01"

    def test_ordering(self):
        assert DateValue(1998, 1, 1) < DateValue(1998, 1, 2)
        assert DateValue(1998, 1, 1) <= DateValue(1998, 1, 1)

    def test_day_arithmetic_crosses_months(self):
        assert DateValue(1998, 12, 1).minus_days(90) == DateValue(1998, 9, 2)

    def test_month_arithmetic_clamps_day(self):
        assert DateValue(1994, 1, 31).plus_months(1) == DateValue(1994, 2, 28)
        assert DateValue(1996, 1, 31).plus_months(1) == DateValue(1996, 2, 29)  # leap

    def test_year_arithmetic(self):
        assert DateValue(1994, 6, 15).plus_years(1) == DateValue(1995, 6, 15)
        assert DateValue(1994, 6, 15).minus_years(2) == DateValue(1992, 6, 15)

    def test_days_until(self):
        assert DateValue(1994, 1, 1).days_until(DateValue(1994, 1, 31)) == 30

    def test_dates_in_bags(self):
        left = bag(DateValue(1994, 1, 1), DateValue(1995, 1, 1))
        right = bag(DateValue(1995, 1, 1), DateValue(1994, 1, 1))
        assert left == right

    def test_dates_vs_other_values(self):
        assert not values_equal(DateValue(1994, 1, 1), "1994-01-01")


class TestForeignRegistry:
    def test_custom_foreign_type(self):
        class Point:
            def __init__(self, x, y):
                self.x, self.y = x, y

        register_foreign(Point, lambda p: (p.x, p.y))
        assert values_equal(Point(1, 2), Point(1, 2))
        assert not values_equal(Point(1, 2), Point(1, 3))
        assert canonical_key(Point(0, 0))[0] == 4  # foreign rank

    def test_unregistered_class_is_not_a_value(self):
        class Mystery:
            pass

        with pytest.raises(Exception):
            canonical_key(Mystery())
