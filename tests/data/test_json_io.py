"""Unit tests for JSON round-tripping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.foreign import DateValue
from repro.data.json_io import dumps, from_jsonable, loads, to_jsonable
from repro.data.model import Bag, DataError, Record, bag, rec


class js:
    """Strategies biased toward the wire format's reserved shapes."""

    _atoms = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-50, max_value=50),
        st.text(alphabet="ab$-19", max_size=8),
        st.builds(
            DateValue,
            st.integers(min_value=1992, max_value=1998),
            st.integers(min_value=1, max_value=12),
            st.integers(min_value=1, max_value=28),
        ),
    )

    @staticmethod
    def values():
        keys = st.sampled_from(["a", "b", "$date", "$record"])
        return st.recursive(
            js._atoms,
            lambda children: st.one_of(
                st.lists(children, max_size=3).map(Bag),
                st.dictionaries(keys, children, max_size=3).map(Record),
            ),
            max_leaves=10,
        )


class TestJsonIo:
    def test_round_trip_nested(self):
        value = rec(xs=bag(1, rec(d=DateValue(1994, 5, 6)), "s"), ok=True)
        assert loads(dumps(value)) == value

    def test_dates_are_tagged(self):
        assert to_jsonable(DateValue(1994, 5, 6)) == {"$date": "1994-05-06"}
        assert from_jsonable({"$date": "1994-05-06"}) == DateValue(1994, 5, 6)

    def test_bags_to_arrays(self):
        assert to_jsonable(bag(1, 2)) == [1, 2]

    def test_plain_object_is_record(self):
        assert from_jsonable({"a": 1}) == rec(a=1)

    def test_dumps_deterministic(self):
        assert dumps(rec(b=2, a=1)) == dumps(rec(a=1, b=2))

    def test_unserialisable_raises(self):
        with pytest.raises(DataError):
            to_jsonable(object())


class TestTagEscaping:
    """Records whose fields collide with wire tags must round-trip (PR 3)."""

    def test_literal_date_field_round_trips(self):
        value = Record({"$date": "1995-01-01"})
        assert loads(dumps(value)) == value

    def test_non_string_date_field_round_trips(self):
        value = Record({"$date": 5})
        assert loads(dumps(value)) == value

    def test_literal_record_field_round_trips(self):
        value = Record({"$record": rec(a=1)})
        assert loads(dumps(value)) == value

    def test_bad_date_payload_rejected(self):
        with pytest.raises(DataError):
            from_jsonable({"$date": 5})


@given(js.values())
@settings(max_examples=150, deadline=None)
def test_round_trip_property(value):
    """dumps → loads is the identity on every data-model value, including
    ``{"$date": ...}`` shapes nested inside bags and records."""
    assert loads(dumps(value)) == value
