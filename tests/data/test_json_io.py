"""Unit tests for JSON round-tripping."""

import pytest

from repro.data.foreign import DateValue
from repro.data.json_io import dumps, from_jsonable, loads, to_jsonable
from repro.data.model import DataError, bag, rec


class TestJsonIo:
    def test_round_trip_nested(self):
        value = rec(xs=bag(1, rec(d=DateValue(1994, 5, 6)), "s"), ok=True)
        assert loads(dumps(value)) == value

    def test_dates_are_tagged(self):
        assert to_jsonable(DateValue(1994, 5, 6)) == {"$date": "1994-05-06"}
        assert from_jsonable({"$date": "1994-05-06"}) == DateValue(1994, 5, 6)

    def test_bags_to_arrays(self):
        assert to_jsonable(bag(1, 2)) == [1, 2]

    def test_plain_object_is_record(self):
        assert from_jsonable({"a": 1}) == rec(a=1)

    def test_dumps_deterministic(self):
        assert dumps(rec(b=2, a=1)) == dumps(rec(a=1, b=2))

    def test_unserialisable_raises(self):
        with pytest.raises(DataError):
            to_jsonable(object())
