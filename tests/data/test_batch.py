"""Unit tests for the batch (column-at-a-time) operator layer."""

import pytest

from repro.data import batch, kernel
from repro.data.model import Bag, DataError, Record, bag, canonical_key, rec


class TestGroupRows:
    def test_buckets_in_first_occurrence_order(self):
        rows = [rec(a=2, b=1), rec(a=1, b=2), rec(a=2, b=3)]
        buckets = batch.group_rows(rows, ["a"])
        assert [len(v) for v in buckets.values()] == [2, 1]
        assert list(buckets.values())[0] == [rec(a=2, b=1), rec(a=2, b=3)]

    def test_data_model_equality_not_python_equality(self):
        # 1 and 1.0 are the same datum; True is not 1
        rows = [rec(a=1), rec(a=1.0), rec(a=True)]
        buckets = batch.group_rows(rows, ["a"])
        assert [len(v) for v in buckets.values()] == [2, 1]

    def test_multi_field_keys(self):
        rows = [rec(a=1, b=1), rec(a=1, b=2), rec(a=1, b=1)]
        buckets = batch.group_rows(rows, ["a", "b"])
        assert [len(v) for v in buckets.values()] == [2, 1]

    def test_nested_key_values(self):
        inner = bag(rec(x=1))
        rows = [rec(a=inner), rec(a=bag(rec(x=1)))]
        assert len(batch.group_rows(rows, ["a"])) == 1

    def test_non_record_raises(self):
        with pytest.raises(DataError):
            batch.group_rows([rec(a=1), 42], ["a"])

    def test_missing_field_raises(self):
        with pytest.raises(DataError):
            batch.group_rows([rec(a=1), rec(b=2)], ["a"])

    def test_empty(self):
        assert batch.group_rows([], ["a"]) == {}


class TestFilters:
    def test_filter_member_matches_op_in(self):
        rows = [rec(a=1), rec(a=2), rec(a=3)]
        keys = batch.path_keys(rows, ("a",))
        members = kernel.key_index(bag(1.0, 3))
        assert batch.filter_member(rows, keys, members) == [rec(a=1), rec(a=3)]

    def test_filter_equal_matches_op_eq(self):
        rows = [rec(a=1), rec(a=2), rec(a=1.0)]
        keys = batch.path_keys(rows, ("a",))
        assert batch.filter_equal(rows, keys, canonical_key(1)) == [
            rec(a=1),
            rec(a=1.0),
        ]

    def test_path_keys_two_step(self):
        rows = [rec(t=rec(f=1)), rec(t=rec(f=2))]
        keys = batch.path_keys(rows, ("t", "f"))
        assert keys == [canonical_key(1), canonical_key(2)]

    def test_path_keys_missing_field_raises(self):
        with pytest.raises(DataError):
            batch.path_keys([rec(b=1)], ("a",))


class TestProjectRecords:
    def test_projects_and_renames(self):
        rows = [rec(a=1, b=2)]
        assert batch.project_records(rows, [("x", "a"), ("y", "b")]) == [
            rec(x=1, y=2)
        ]

    def test_duplicate_output_name_keeps_last(self):
        # ⊕ is right-biased
        rows = [rec(a=1, b=2)]
        assert batch.project_records(rows, [("x", "a"), ("x", "b")]) == [rec(x=2)]

    def test_non_record_raises(self):
        with pytest.raises(DataError):
            batch.project_records([1], [("x", "a")])

    def test_missing_source_field_raises(self):
        with pytest.raises(DataError):
            batch.project_records([rec(a=1)], [("x", "nope")])


def test_partition_bag_round_trip():
    rows = (rec(a=1), rec(a=1))
    assert batch.partition_bag(rows) == Bag([rec(a=1), rec(a=1)])
