"""The columnar bag representation and its batch-operator integration.

Covers the ColumnarBag round-trip contract (multiset-equal both ways,
including heterogeneous and nested values), the lazily-built key
columns, the MISSING sentinel behaviour, derived views, and the batch
satellite fixes that ride with the columnar layer: ``path_keys``'s
empty-path rejection and empty-rows short-circuit, and
``partition_bag``'s key-cache propagation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import batch, kernel
from repro.data.columnar import (
    MISSING,
    ColumnarBag,
    cached_columnar,
    ensure_columnar,
)
from repro.data.foreign import DateValue
from repro.data.model import Bag, DataError, Record, bag, canonical_key, rec

from tests.strategies import values


class TestRoundTrip:
    def test_from_bag_to_bag_identity(self):
        rows = bag(rec(a=1, b="x"), rec(a=2, b="y"), rec(a=1, b="x"))
        cb = ColumnarBag.from_bag(rows)
        assert cb.to_bag() is rows  # the source bag is retained
        assert len(cb) == 3
        assert cb.fields() == ("a", "b")
        assert cb.column("a") == [1, 2, 1]

    def test_rebuilt_rows_multiset_equal(self):
        rows = bag(rec(a=1, b="x"), rec(a=2))
        cb = ColumnarBag.from_columns(
            {"a": [1, 2], "b": ["x", MISSING]}, 2
        )
        assert cb.to_bag() == rows

    def test_heterogeneous_fields_pad_missing(self):
        cb = ColumnarBag.from_bag(bag(rec(a=1), rec(b=2)))
        assert cb.column("a") == [1, MISSING]
        assert cb.column("b") == [MISSING, 2]
        assert cb.has_missing("a") and cb.has_missing("b")
        # rows rebuild without the missing fields
        rebuilt = ColumnarBag.from_columns(
            {"a": [1, MISSING], "b": [MISSING, 2]}, 2
        )
        assert rebuilt.to_bag() == bag(rec(a=1), rec(b=2))

    def test_non_record_elements_rejected(self):
        with pytest.raises(DataError):
            ColumnarBag.from_bag(bag(rec(a=1), 42))

    def test_from_columns_length_mismatch(self):
        with pytest.raises(DataError):
            ColumnarBag.from_columns({"a": [1, 2], "b": [3]}, 2)

    def test_unknown_column(self):
        cb = ensure_columnar(bag(rec(a=1)))
        with pytest.raises(DataError):
            cb.column("nope")

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.dictionaries(st.sampled_from(["a", "b", "c"]), values(6), max_size=3), max_size=6))
    def test_round_trip_nested_values(self, dicts):
        rows = Bag(Record(d) for d in dicts)
        cb = ColumnarBag.from_bag(rows)
        # decompose → recompose from raw columns only (drop retained rows)
        raw = ColumnarBag.from_columns(
            {name: list(cb.column(name)) for name in cb.fields()}, len(cb)
        )
        assert raw.to_bag() == rows


class TestKeyColumns:
    def test_number_keys_collapse_int_float(self):
        cb = ensure_columnar(bag(rec(a=1), rec(a=1.0), rec(a=2)))
        keys = cb.key_column("a")
        assert keys[0] == keys[1] != keys[2]
        assert keys == [canonical_key(v) for v in (1, 1.0, 2)]

    def test_key_column_cached(self):
        cb = ensure_columnar(bag(rec(a=DateValue(1995, 1, 1))))
        assert cb.key_column("a") is cb.key_column("a")

    def test_key_column_missing_field_raises(self):
        cb = ensure_columnar(bag(rec(a=1), rec(b=2)))
        with pytest.raises(DataError):
            cb.key_column("a")


class TestCache:
    def test_ensure_columnar_caches_on_bag(self):
        rows = bag(rec(a=1))
        assert cached_columnar(rows) is None
        cb = ensure_columnar(rows)
        assert cached_columnar(rows) is cb
        assert ensure_columnar(rows) is cb

    def test_cached_columnar_non_bag(self):
        assert cached_columnar(42) is None
        assert cached_columnar(rec(a=1)) is None

    def test_derived_view_slices_lazily(self):
        base = ensure_columnar(bag(rec(a=1, b=10), rec(a=2, b=20), rec(a=3, b=30)))
        out_rows = (rec(a=1, b=10), rec(a=3, b=30))
        view = ColumnarBag.derived(base, (0, 2), {"a": "a", "b": "b"}, out_rows)
        assert len(view) == 2
        assert view.column("a") == [1, 3]
        assert view.rows() == out_rows
        assert view.to_bag() == bag(*out_rows)

    def test_derived_whole_row_marker(self):
        base = ensure_columnar(bag(rec(a=1), rec(a=2)))
        marker = object()
        view = ColumnarBag.derived(
            base, (1,), {"t": marker}, (rec(t=rec(a=2)),)
        )
        assert view.column("t") == [rec(a=2)]


class TestBatchColumnarOperators:
    def test_path_keys_single_field(self):
        cb = ensure_columnar(bag(rec(a=1), rec(a=1.0)))
        assert batch.path_keys(cb, ("a",)) == cb.key_column("a")

    def test_path_keys_two_level(self):
        cb = ensure_columnar(bag(rec(t=rec(a=5)), rec(t=rec(a=6))))
        assert batch.path_keys(cb, ("t", "a")) == [
            canonical_key(5),
            canonical_key(6),
        ]

    def test_path_keys_two_level_non_record(self):
        cb = ensure_columnar(bag(rec(t=3)))
        with pytest.raises(DataError):
            batch.path_keys(cb, ("t", "a"))

    def test_group_rows_columnar_matches_rows(self):
        rows = bag(rec(a=1, b="x"), rec(a=1.0, b="y"), rec(a=2, b="z"))
        cb = ensure_columnar(rows)
        assert batch.group_rows(cb, ("a",)) == batch.group_rows(rows.items, ("a",))

    def test_filter_member_and_equal_accept_columnar(self):
        rows = bag(rec(a=1), rec(a=2), rec(a=1))
        cb = ensure_columnar(rows)
        keys = batch.path_keys(cb, ("a",))
        members = kernel.key_index(bag(1))
        assert batch.filter_member(cb, keys, members) == [rec(a=1), rec(a=1)]
        assert batch.filter_equal(cb, keys, canonical_key(2)) == [rec(a=2)]

    def test_project_records_columnar(self):
        cb = ensure_columnar(bag(rec(a=1, b=10), rec(a=2, b=20)))
        assert batch.project_records(cb, [("x", "b")]) == [rec(x=10), rec(x=20)]

    def test_project_records_columnar_missing_field_raises(self):
        cb = ensure_columnar(bag(rec(a=1), rec(b=2)))
        with pytest.raises(DataError):
            batch.project_records(cb, [("x", "a")])
        with pytest.raises(DataError):
            batch.project_records(cb, [("x", "nope")])


class TestPathKeysSatellites:
    def test_empty_path_rejected(self):
        with pytest.raises(DataError, match="non-empty field path"):
            batch.path_keys([rec(a=1)], ())
        with pytest.raises(DataError, match="non-empty field path"):
            batch.path_keys(ensure_columnar(bag(rec(a=1))), ())

    def test_empty_rows_short_circuit(self):
        # must not probe the kernel at all on an empty row sequence
        assert batch.path_keys([], ("a",)) == []
        assert batch.path_keys((), ("a", "b")) == []


class TestPartitionBag:
    def test_propagates_cached_keys(self):
        rows = [rec(a=1), rec(a=2)]
        for row in rows:
            canonical_key(row)  # caches row._key as a side effect
        assert all(row._key is not None for row in rows)
        out = batch.partition_bag(rows)
        assert out._elem_keys == tuple(row._key for row in rows)
        assert out == bag(*rows)

    def test_uncached_keys_yield_plain_bag(self):
        rows = [rec(a=1), rec(a=2)]
        assert all(row._key is None for row in rows)
        out = batch.partition_bag(rows)
        assert out._elem_keys is None
        assert out == bag(*rows)

    def test_mixed_cache_state_yields_plain_bag(self):
        cached, uncached = rec(a=1), rec(a=2)
        canonical_key(cached)
        out = batch.partition_bag([cached, uncached])
        assert out._elem_keys is None
