"""Hypothesis law suite: the kernel against the seed's naive oracles.

Two kinds of properties over random *nested* values (including dates,
via ``tests.strategies``):

- algebraic multiset laws (union commutes/associates, minus/union size
  laws, distinct idempotence);
- operation-for-operation agreement between :mod:`repro.data.kernel`
  and the quadratic loop implementations preserved in
  :mod:`tests.kernel_oracles` — the kernel must be a pure speedup.

Oracles reconstruct fresh ``Bag``/``Record`` wrappers so no cached key
or index can leak from the kernel side into the oracle side.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import kernel
from repro.data.model import Bag, Record
from tests.kernel_oracles import (
    naive_contains,
    naive_distinct,
    naive_equal,
    naive_intersection,
    naive_merge_concat,
    naive_minus,
    naive_union,
)
from tests.strategies import values

bags = st.lists(values(max_leaves=6), max_size=6).map(Bag)
records = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]), values(max_leaves=4), max_size=4
).map(Record)


def fresh(bag_value: Bag) -> Bag:
    """A structurally identical bag with every cache cold."""
    return Bag(bag_value.items)


# ---------------------------------------------------------------------------
# Algebraic laws
# ---------------------------------------------------------------------------


@given(bags, bags)
@settings(max_examples=120)
def test_union_commutes_as_multiset(a, b):
    assert a.union(b) == b.union(a)


@given(bags, bags, bags)
@settings(max_examples=80)
def test_union_associates(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(bags, bags)
@settings(max_examples=120)
def test_minus_union_size_laws(a, b):
    assert len(a.union(b)) == len(a) + len(b)
    assert len(a.minus(b)) + len(a.intersection(b)) == len(a)
    assert a.union(b).minus(b) == a


@given(bags)
@settings(max_examples=120)
def test_distinct_idempotent(a):
    assert a.distinct() == a.distinct().distinct()


@given(bags, bags)
@settings(max_examples=80)
def test_intersection_bounded_by_both(a, b):
    inter = a.intersection(b)
    assert len(inter) <= min(len(a), len(b))
    assert all(a.contains(v) and b.contains(v) for v in inter)


# ---------------------------------------------------------------------------
# Kernel ≡ naive oracle
# ---------------------------------------------------------------------------


@given(bags, bags)
@settings(max_examples=120)
def test_minus_matches_oracle(a, b):
    assert kernel.minus(a, b) == naive_minus(fresh(a), fresh(b))


@given(bags, bags)
@settings(max_examples=120)
def test_intersection_matches_oracle(a, b):
    assert kernel.intersection(a, b) == naive_intersection(fresh(a), fresh(b))


@given(bags, bags)
@settings(max_examples=80)
def test_union_matches_oracle(a, b):
    assert kernel.union(a, b) == naive_union(fresh(a), fresh(b))


@given(bags)
@settings(max_examples=120)
def test_distinct_matches_oracle(a):
    assert kernel.distinct(a) == naive_distinct(fresh(a))


@given(bags, values(max_leaves=6))
@settings(max_examples=120)
def test_contains_matches_oracle(a, value):
    assert kernel.contains(a, value) == naive_contains(fresh(a), value)


@given(bags, bags)
@settings(max_examples=120)
def test_equality_matches_oracle(a, b):
    assert kernel.multiset_equal(a, b) == naive_equal(fresh(a), fresh(b))
    assert kernel.multiset_equal(a, Bag(reversed(a.items)))


@given(records, records)
@settings(max_examples=120)
def test_merge_concat_matches_oracle(left, right):
    expected = naive_merge_concat(
        Record(dict(left.fields)), Record(dict(right.fields))
    )
    assert kernel.merge_concat(left, right) == expected


@given(bags)
@settings(max_examples=60)
def test_sort_matches_oracle_canonical_order(a):
    from repro.data.model import canonical_key

    expected = Bag(sorted(fresh(a).items, key=canonical_key))
    assert kernel.sort(a).items == expected.items
