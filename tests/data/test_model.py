"""Unit tests for the data model (paper §3.1)."""

import pytest

from repro.data.model import (
    Bag,
    DataError,
    Record,
    bag,
    canonical_key,
    flatten,
    from_python,
    is_value,
    rec,
    to_python,
    values_equal,
)


class TestBag:
    def test_multiset_equality_ignores_order(self):
        assert bag(1, 2, 3) == bag(3, 1, 2)

    def test_multiset_equality_counts_multiplicity(self):
        assert bag(1, 1, 2) != bag(1, 2, 2)
        assert bag(1, 1) != bag(1)

    def test_union_is_additive(self):
        assert bag(1).union(bag(1)) == bag(1, 1)

    def test_union_preserves_all_elements(self):
        assert bag(1, 2).union(bag(2, 3)) == bag(1, 2, 2, 3)

    def test_minus_removes_one_occurrence_per_match(self):
        assert bag(1, 1, 2).minus(bag(1)) == bag(1, 2)

    def test_minus_of_absent_value_is_noop(self):
        assert bag(1, 2).minus(bag(5)) == bag(1, 2)

    def test_intersection_takes_minimum_multiplicity(self):
        assert bag(1, 1, 2).intersection(bag(1, 2, 2)) == bag(1, 2)

    def test_contains_uses_data_model_equality(self):
        assert bag(rec(a=1)).contains(rec(a=1))
        assert not bag(rec(a=1)).contains(rec(a=2))

    def test_distinct_keeps_first_occurrences(self):
        assert bag(2, 1, 2, 1).distinct() == bag(2, 1)

    def test_empty_bag_is_falsy(self):
        assert not Bag([])
        assert bag(1)

    def test_bags_hashable(self):
        assert hash(bag(1, 2)) == hash(bag(2, 1))

    def test_nested_bag_equality(self):
        assert bag(bag(1, 2), bag(3)) == bag(bag(3), bag(2, 1))

    def test_sorted_orders_canonically(self):
        assert bag(3, 1, 2).sorted().items == (1, 2, 3)


class TestRecord:
    def test_field_order_is_normalised(self):
        assert Record({"b": 2, "a": 1}) == Record({"a": 1, "b": 2})
        assert Record({"b": 2, "a": 1}).domain() == ("a", "b")

    def test_access(self):
        assert rec(a=1, b=2)["b"] == 2

    def test_access_missing_field_raises(self):
        with pytest.raises(DataError):
            rec(a=1)["z"]

    def test_concat_favors_right(self):
        assert rec(a=1, b=2).concat(rec(b=9, c=3)) == rec(a=1, b=9, c=3)

    def test_remove(self):
        assert rec(a=1, b=2).remove("a") == rec(b=2)

    def test_remove_absent_is_noop(self):
        assert rec(a=1).remove("z") == rec(a=1)

    def test_project(self):
        assert rec(a=1, b=2, c=3).project(["a", "c"]) == rec(a=1, c=3)

    def test_project_absent_fields_dropped(self):
        assert rec(a=1).project(["a", "z"]) == rec(a=1)

    def test_compatible_when_common_fields_agree(self):
        assert rec(a=1, b=2).compatible_with(rec(b=2, c=3))

    def test_incompatible_when_common_fields_disagree(self):
        assert not rec(a=1, b=2).compatible_with(rec(b=9))

    def test_merge_concat_success_is_singleton(self):
        assert rec(a=1).merge_concat(rec(b=2)) == bag(rec(a=1, b=2))

    def test_merge_concat_failure_is_empty(self):
        assert rec(a=1).merge_concat(rec(a=2)) == Bag([])

    def test_records_hashable(self):
        assert hash(rec(a=1, b=2)) == hash(Record({"b": 2, "a": 1}))


class TestCanonicalKey:
    def test_bool_distinct_from_int(self):
        # Python's True == 1; the data model keeps them distinct.
        assert not values_equal(True, 1)
        assert bag(True) != bag(1)

    def test_int_and_float_same_number(self):
        assert values_equal(1, 1.0)

    def test_null_distinct_from_zero_and_false(self):
        assert not values_equal(None, 0)
        assert not values_equal(None, False)

    def test_total_order_across_kinds(self):
        values = [rec(a=1), "x", 3, None, True, bag(1)]
        ordered = sorted(values, key=canonical_key)
        assert ordered[0] is None  # null ranks first

    def test_rejects_non_values(self):
        with pytest.raises(DataError):
            canonical_key(object())
        assert not is_value(object())
        assert is_value(bag(rec(a=1)))


class TestConversions:
    def test_from_python_round_trip(self):
        data = {"xs": [1, 2, {"y": [True, None]}]}
        value = from_python(data)
        assert isinstance(value, Record)
        assert isinstance(value["xs"], Bag)
        assert to_python(value) == data

    def test_flatten(self):
        assert flatten(bag(bag(1, 2), bag(), bag(3))) == bag(1, 2, 3)

    def test_flatten_non_bag_raises(self):
        with pytest.raises(DataError):
            flatten(5)
        with pytest.raises(DataError):
            flatten(bag(1))
