"""Unit tests for the operator catalog (paper §3.1)."""

import pytest

from repro.data import operators as ops
from repro.data.foreign import DateValue
from repro.data.model import Bag, DataError, bag, rec


class TestCoreUnary:
    def test_identity(self):
        assert ops.OpIdentity().apply(rec(a=1)) == rec(a=1)

    def test_neg(self):
        assert ops.OpNeg().apply(True) is False

    def test_neg_requires_boolean(self):
        with pytest.raises(DataError):
            ops.OpNeg().apply(1)

    def test_coll(self):
        assert ops.OpBag().apply(5) == bag(5)

    def test_flatten(self):
        assert ops.OpFlatten().apply(bag(bag(1), bag(2, 3))) == bag(1, 2, 3)

    def test_rec(self):
        assert ops.OpRec("a").apply(7) == rec(a=7)

    def test_dot(self):
        assert ops.OpDot("a").apply(rec(a=7, b=8)) == 7

    def test_dot_on_non_record(self):
        with pytest.raises(DataError):
            ops.OpDot("a").apply(5)

    def test_remove(self):
        assert ops.OpRemove("a").apply(rec(a=1, b=2)) == rec(b=2)

    def test_project(self):
        assert ops.OpProject(["a", "c"]).apply(rec(a=1, b=2, c=3)) == rec(a=1, c=3)

    def test_project_field_order_irrelevant(self):
        assert ops.OpProject(["c", "a"]) == ops.OpProject(["a", "c"])


class TestAggregates:
    def test_distinct(self):
        assert ops.OpDistinct().apply(bag(1, 2, 1)) == bag(1, 2)

    def test_count(self):
        assert ops.OpCount().apply(bag(1, 1, 1)) == 3
        assert ops.OpCount().apply(Bag([])) == 0

    def test_sum(self):
        assert ops.OpSum().apply(bag(1, 2, 3)) == 6

    def test_sum_empty_is_zero(self):
        assert ops.OpSum().apply(Bag([])) == 0

    def test_sum_non_number_raises(self):
        with pytest.raises(DataError):
            ops.OpSum().apply(bag(1, "x"))

    def test_avg(self):
        assert ops.OpAvg().apply(bag(1, 2, 3)) == 2.0

    def test_avg_empty_raises(self):
        with pytest.raises(DataError):
            ops.OpAvg().apply(Bag([]))

    def test_min_max(self):
        assert ops.OpMin().apply(bag(3, 1, 2)) == 1
        assert ops.OpMax().apply(bag(3, 1, 2)) == 3

    def test_min_on_strings(self):
        assert ops.OpMin().apply(bag("b", "a")) == "a"

    def test_singleton(self):
        assert ops.OpSingleton().apply(bag(42)) == 42

    def test_singleton_wrong_cardinality(self):
        with pytest.raises(DataError):
            ops.OpSingleton().apply(bag(1, 2))
        with pytest.raises(DataError):
            ops.OpSingleton().apply(Bag([]))

    def test_limit(self):
        assert ops.OpLimit(2).apply(Bag([3, 1, 2])) == bag(3, 1)
        assert ops.OpLimit(9).apply(bag(1)) == bag(1)

    def test_limit_negative_is_empty(self):
        # regression: Python's negative slicing returned all-but-last
        assert ops.OpLimit(-1).apply(Bag([3, 1, 2])) == Bag([])
        assert ops.OpLimit(-9).apply(Bag([3, 1, 2])) == Bag([])
        assert ops.OpLimit(0).apply(Bag([3, 1, 2])) == Bag([])


class TestStringsAndSort:
    def test_tostring(self):
        assert ops.OpToString().apply(True) == "true"
        assert ops.OpToString().apply("x") == "x"
        assert ops.OpToString().apply(DateValue(2020, 1, 2)) == "2020-01-02"

    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("abc", "abc", True),
            ("abc", "abd", False),
            ("a%", "abcdef", True),
            ("%BRASS", "PROMO BRASS", True),
            ("%BRASS", "BRASS PROMO", False),
            ("a_c", "abc", True),
            ("a_c", "ac", False),
            ("%x%y%", "axzzy", True),
            ("%x%y%", "ayzzx", False),
            ("%", "", True),
            ("_", "", False),
            ("%green%", "dark green metal", True),
        ],
    )
    def test_like(self, pattern, text, expected):
        assert ops.OpLike(pattern).apply(text) is expected

    def test_substring_sql_indexing(self):
        assert ops.OpSubstring(1, 2).apply("12345") == "12"
        assert ops.OpSubstring(3, None).apply("12345") == "345"
        assert ops.OpSubstring(2, 2).apply("12345") == "23"

    def test_substring_negative_start_shifts_window(self):
        # regression: the window covers 1-based positions
        # [start, start+length), so a non-positive start eats into the
        # length instead of clamping to the string head
        assert ops.OpSubstring(-1, 3).apply("abc") == "a"
        assert ops.OpSubstring(0, 2).apply("abc") == "a"
        assert ops.OpSubstring(-5, 3).apply("abc") == ""
        assert ops.OpSubstring(-2, None).apply("abc") == "abc"

    def test_substring_degenerate_windows(self):
        assert ops.OpSubstring(2, 0).apply("abc") == ""
        assert ops.OpSubstring(5, 2).apply("abc") == ""
        assert ops.OpSubstring(3, 9).apply("abc") == "c"

    def test_substring_negative_length_raises(self):
        # regression: Python slicing silently returned 'ab'
        with pytest.raises(DataError):
            ops.OpSubstring(1, -1).apply("abc")
        with pytest.raises(DataError):
            ops.OpSubstring(-1, -2).apply("abc")

    def test_sort_by_multi_key_directions(self):
        rows = bag(rec(a=1, b=2), rec(a=1, b=1), rec(a=0, b=9))
        result = ops.OpSortBy([("a", False), ("b", True)]).apply(rows)
        assert result.items == (rec(a=0, b=9), rec(a=1, b=2), rec(a=1, b=1))


class TestCoreBinary:
    def test_eq(self):
        assert ops.OpEq().apply(bag(1, 2), bag(2, 1)) is True
        assert ops.OpEq().apply(1, True) is False

    def test_in(self):
        assert ops.OpIn().apply(2, bag(1, 2)) is True
        assert ops.OpIn().apply(3, bag(1, 2)) is False

    def test_union(self):
        assert ops.OpUnion().apply(bag(1), bag(1, 2)) == bag(1, 1, 2)

    def test_bag_diff_and_inter(self):
        assert ops.OpBagDiff().apply(bag(1, 1, 2), bag(1)) == bag(1, 2)
        assert ops.OpBagInter().apply(bag(1, 2), bag(2, 3)) == bag(2)

    def test_concat(self):
        assert ops.OpConcat().apply(rec(a=1), rec(a=2, b=3)) == rec(a=2, b=3)

    def test_merge_concat(self):
        assert ops.OpMergeConcat().apply(rec(a=1), rec(b=2)) == bag(rec(a=1, b=2))
        assert ops.OpMergeConcat().apply(rec(a=1), rec(a=2)) == Bag([])


class TestExtendedBinary:
    def test_comparisons_on_numbers(self):
        assert ops.OpLt().apply(1, 2) is True
        assert ops.OpLe().apply(2, 2) is True
        assert ops.OpGt().apply(1, 2) is False
        assert ops.OpGe().apply(2, 2) is True

    def test_comparisons_on_strings(self):
        assert ops.OpLt().apply("a", "b") is True

    def test_comparisons_on_dates(self):
        assert ops.OpLt().apply(DateValue(2020, 1, 1), DateValue(2020, 6, 1)) is True

    def test_mixed_comparison_raises(self):
        with pytest.raises(DataError):
            ops.OpLt().apply("a", 1)

    def test_boolean_connectives(self):
        assert ops.OpAnd().apply(True, False) is False
        assert ops.OpOr().apply(True, False) is True
        with pytest.raises(DataError):
            ops.OpAnd().apply(1, True)

    def test_arithmetic(self):
        assert ops.OpAdd().apply(1, 2) == 3
        assert ops.OpSub().apply(1, 2) == -1
        assert ops.OpMult().apply(3, 4) == 12
        assert ops.OpDiv().apply(3, 2) == 1.5

    def test_division_by_zero(self):
        with pytest.raises(DataError):
            ops.OpDiv().apply(1, 0)

    def test_booleans_are_not_numbers(self):
        with pytest.raises(DataError):
            ops.OpAdd().apply(True, 1)

    def test_str_concat(self):
        assert ops.OpStrConcat().apply("a", "b") == "ab"

    def test_date_shifts(self):
        start = DateValue(1994, 1, 31)
        assert ops.OpDatePlusDays().apply(start, 1) == DateValue(1994, 2, 1)
        assert ops.OpDateMinusDays().apply(start, 31) == DateValue(1993, 12, 31)
        assert ops.OpDatePlusMonths().apply(start, 1) == DateValue(1994, 2, 28)
        assert ops.OpDatePlusYears().apply(start, 1) == DateValue(1995, 1, 31)
        assert ops.OpDateMinusMonths().apply(start, 1) == DateValue(1993, 12, 31)
        assert ops.OpDateMinusYears().apply(start, 2) == DateValue(1992, 1, 31)


class TestOperatorIdentity:
    def test_parameterised_ops_compare_by_params(self):
        assert ops.OpDot("a") == ops.OpDot("a")
        assert ops.OpDot("a") != ops.OpDot("b")
        assert ops.OpDot("a") != ops.OpRec("a")
        assert hash(ops.OpDot("a")) == hash(ops.OpDot("a"))

    def test_parameterless_ops_are_equal(self):
        assert ops.OpEq() == ops.OpEq()
        assert ops.OpEq() != ops.OpIn()

    def test_repr_shows_params(self):
        assert "a" in repr(ops.OpDot("a"))
