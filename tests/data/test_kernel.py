"""Unit tests for the keyed multiset kernel (`repro.data.kernel`)."""

from __future__ import annotations

import pytest

from repro.data import kernel
from repro.data.model import (
    Bag,
    DataError,
    Record,
    bag,
    canonical_key,
    elem_keys,
    rec,
    values_equal,
)


# ---------------------------------------------------------------------------
# Satellite regression: exact integer keys (2**53 + 1 must stay itself)
# ---------------------------------------------------------------------------


class TestExactNumberKeys:
    def test_big_ints_are_not_collapsed_onto_floats(self):
        assert not values_equal(2**53, 2**53 + 1)
        assert not values_equal(2**60, 2**60 + 1)

    def test_int_float_cross_type_equality_is_kept(self):
        assert values_equal(1, 1.0)
        assert values_equal(0, -0.0)
        assert values_equal(2**53, float(2**53))
        assert hash(bag(1)) == hash(bag(1.0))

    def test_big_int_bag_membership(self):
        b = bag(2**53)
        assert b.contains(2**53)
        assert not b.contains(2**53 + 1)

    def test_big_int_distinct_keeps_both(self):
        b = Bag([2**53, 2**53 + 1, 2**53])
        assert len(b.distinct()) == 2

    def test_big_int_bag_equality(self):
        assert Bag([2**53]) != Bag([2**53 + 1])
        assert Bag([2**53, 1.0]) == Bag([1, 2**53])

    def test_big_int_record_keys(self):
        assert rec(a=2**53) != rec(a=2**53 + 1)
        assert rec(a=1) == rec(a=1.0)
        assert canonical_key(rec(a=2**53)) != canonical_key(rec(a=2**53 + 1))

    def test_mixed_numbers_sort_exactly(self):
        b = Bag([2**53 + 1, 1.5, 2**53, -3])
        assert b.sorted().items == (-3, 1.5, 2**53, 2**53 + 1)

    def test_minus_distinguishes_adjacent_big_ints(self):
        left = Bag([2**53, 2**53 + 1])
        assert left.minus(Bag([2**53 + 1])).items == (2**53,)


# ---------------------------------------------------------------------------
# Kernel operations
# ---------------------------------------------------------------------------


class TestKernelOps:
    def test_minus_removes_one_occurrence_per_match(self):
        assert bag(1, 2, 2, 3).minus(bag(2, 3, 4)).items == (1, 2)

    def test_intersection_minimum_multiplicity(self):
        assert bag(1, 2, 2, 2).intersection(bag(2, 2, 5)).items == (2, 2)

    def test_union_is_additive(self):
        assert bag(1).union(bag(1)).items == (1, 1)

    def test_distinct_keeps_first_occurrence_order(self):
        assert bag(3, 1, 3, 2, 1).distinct().items == (3, 1, 2)

    def test_contains_uses_data_model_equality(self):
        assert bag(1, 2).contains(2.0)
        assert not bag(1, 2).contains(True)  # bool is not a number

    def test_ops_work_on_nested_values(self):
        nested = Bag([rec(a=bag(1, 2)), rec(a=bag(2, 1)), rec(a=bag(1))])
        assert len(nested.distinct()) == 2
        assert nested.contains(rec(a=bag(2, 1)))
        assert nested.minus(Bag([rec(a=bag(1, 2))])).items == (
            rec(a=bag(2, 1)),
            rec(a=bag(1)),
        )

    def test_product_concatenates_records(self):
        out = kernel.product(Bag([rec(a=1)]), Bag([rec(b=2), rec(b=3)]))
        assert out == Bag([rec(a=1, b=2), rec(a=1, b=3)])

    def test_product_rejects_non_records(self):
        with pytest.raises(DataError):
            kernel.product(Bag([1]), Bag([rec(a=1)]))

    def test_merge_concat_compatible(self):
        assert rec(a=1, b=2).merge_concat(rec(a=1.0, c=3)) == Bag(
            [rec(a=1, b=2, c=3)]
        )

    def test_merge_concat_incompatible(self):
        assert rec(a=1).merge_concat(rec(a=2)) == Bag([])

    def test_multiset_equality_ignores_order(self):
        assert Bag([rec(a=1), rec(a=2)]) == Bag([rec(a=2), rec(a=1)])
        assert Bag([1, 1, 2]) != Bag([1, 2, 2])


# ---------------------------------------------------------------------------
# The caching contract (see DESIGN.md §8)
# ---------------------------------------------------------------------------


class TestKeyCaching:
    def test_elem_keys_cached(self):
        b = bag(1, 2, 3)
        first = elem_keys(b)
        assert elem_keys(b) is first

    def test_key_index_cached(self):
        b = bag(1, 2, 2)
        first = kernel.key_index(b)
        assert kernel.key_index(b) is first
        assert first[canonical_key(2)] == 2

    def test_bag_canonical_key_cached(self):
        b = bag(2, 1)
        first = canonical_key(b)
        assert canonical_key(b) is first

    def test_record_canonical_key_cached(self):
        r = rec(a=1, b=bag(1, 2))
        first = canonical_key(r)
        assert canonical_key(r) is first

    def test_hashes_cached(self):
        b, r = bag(1, 2), rec(a=1)
        assert hash(b) == hash(b) and b._hash is not None
        assert hash(r) == hash(r) and r._hash is not None

    def test_union_propagates_caches(self):
        left, right = bag(1, 2), bag(3)
        kernel.key_index(left), kernel.key_index(right)
        out = left.union(right)
        assert out._elem_keys == elem_keys(left) + elem_keys(right)
        assert out._index is not None
        assert out._index == kernel.key_index(Bag([1, 2, 3]))

    def test_union_without_caches_stays_lazy(self):
        out = bag(1).union(bag(2))
        assert out._elem_keys is None and out._index is None

    def test_minus_and_distinct_preseed_result_keys(self):
        out = bag(1, 2, 2).distinct()
        assert out._elem_keys is not None
        out = bag(1, 2).minus(bag(2))
        assert out._elem_keys == (canonical_key(1),)

    def test_distinct_of_duplicate_free_bag_returns_same_bag(self):
        b = bag(1, 2, 3)
        assert b.distinct() is b


# ---------------------------------------------------------------------------
# Field/path keys (what the hash-join engine consumes)
# ---------------------------------------------------------------------------


class TestFieldKeys:
    def test_field_key_without_cached_record_key(self):
        r = rec(a=1, b="x")
        assert kernel.field_key(r, "a") == canonical_key(1)

    def test_field_key_reads_cached_record_key(self):
        r = rec(a=1, b="x")
        canonical_key(r)  # force + cache
        assert r._key is not None
        assert kernel.field_key(r, "b") == canonical_key("x")

    def test_field_key_missing_attribute(self):
        r = rec(a=1)
        with pytest.raises(DataError):
            kernel.field_key(r, "zz")
        canonical_key(r)
        with pytest.raises(DataError):
            kernel.field_key(r, "zz")

    def test_path_key_two_steps(self):
        r = rec(t=rec(f=7))
        assert kernel.path_key(r, ("t", "f")) == canonical_key(7)
        assert kernel.path_key(r, ("t",)) == canonical_key(rec(f=7))

    def test_path_key_non_record_chain(self):
        with pytest.raises(DataError):
            kernel.path_key(rec(t=5), ("t", "f"))
