"""Property-based tests of data-model invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, canonical_key, values_equal
from tests.strategies import element_bags, element_records, values


@given(values(), values())
@settings(max_examples=150)
def test_equality_agrees_with_canonical_key(left, right):
    assert values_equal(left, right) == (canonical_key(left) == canonical_key(right))


@given(st.lists(values(max_leaves=4), max_size=5))
def test_bag_equality_invariant_under_permutation(items):
    assert Bag(items) == Bag(list(reversed(items)))


@given(element_bags, element_bags)
def test_union_commutative_up_to_bag_equality(left, right):
    assert left.union(right) == right.union(left)


@given(element_bags, element_bags, element_bags)
def test_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(element_bags)
def test_distinct_idempotent(bag_value):
    assert bag_value.distinct() == bag_value.distinct().distinct()


@given(element_bags, element_bags)
def test_minus_then_union_bounds(a, b):
    # |a \ b| + |a ∩ b| == |a|
    assert len(a.minus(b)) + len(a.intersection(b)) == len(a)


@given(element_records, element_records, element_records)
def test_concat_associative(x, y, z):
    assert x.concat(y).concat(z) == x.concat(y.concat(z))


@given(element_records, element_records)
def test_merge_concat_symmetric_in_success(x, y):
    # ⊗ succeeds in one order iff it succeeds in the other, with the
    # same resulting record (common fields agree on success).
    left = x.merge_concat(y)
    right = y.merge_concat(x)
    assert bool(left) == bool(right)
    if left:
        assert left == right


@given(element_records, element_records)
def test_compatible_iff_merge_succeeds(x, y):
    assert x.compatible_with(y) == bool(x.merge_concat(y))


@given(element_bags)
def test_sorted_is_permutation(bag_value):
    assert bag_value.sorted() == bag_value


@given(values(max_leaves=6))
def test_json_round_trip(value):
    from repro.data.json_io import dumps, loads

    assert loads(dumps(value)) == value


@given(values(max_leaves=6))
def test_python_round_trip_preserves_equality(value):
    from repro.data.model import from_python, to_python

    assert from_python(to_python(value)) == value
