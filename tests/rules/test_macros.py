"""Tests for the rule-macro layer (the JRules stand-in, paper §7)."""

import pytest

from repro.data import operators as ops
from repro.data.model import Bag, bag, rec
from repro.rules import macros as m


WORLD = bag(
    rec(klass="Client", id=1, name="ada", status="gold"),
    rec(klass="Client", id=2, name="bob", status="silver"),
    rec(klass="Order", id=100, client=1, amount=250),
    rec(klass="Order", id=101, client=2, amount=40),
)


class TestWhen:
    def test_single_when_binds_each_match(self):
        rule = m.when(m.bind_class("c", "Client"), m.return_(m.dot(m.var("c"), "name")))
        assert m.eval_rule(rule, WORLD) == bag("ada", "bob")

    def test_when_with_guard(self):
        rule = m.when(
            m.bind_class("c", "Client"),
            m.guard(
                m.eq(m.dot(m.var("c"), "status"), m.const("gold")),
                m.return_(m.dot(m.var("c"), "name")),
            ),
        )
        assert m.eval_rule(rule, WORLD) == bag("ada")

    def test_nested_when_is_a_join(self):
        rule = m.when(
            m.bind_class("c", "Client"),
            m.when(
                m.bind_class("o", "Order"),
                m.guard(
                    m.eq(m.dot(m.var("o"), "client"), m.dot(m.var("c"), "id")),
                    m.return_(
                        m.record(
                            {"n": m.dot(m.var("c"), "name"), "a": m.dot(m.var("o"), "amount")}
                        )
                    ),
                ),
            ),
        )
        assert m.eval_rule(rule, WORLD) == bag(rec(n="ada", a=250), rec(n="bob", a=40))

    def test_same_binder_unification(self):
        # Binding c twice requires compatible values: the join degenerates
        # to a self-match, so each client pairs only with itself.
        rule = m.when(
            m.bind_class("c", "Client"),
            m.when(m.bind_class("c", "Client"), m.return_(m.dot(m.var("c"), "name"))),
        )
        assert m.eval_rule(rule, WORLD) == bag("ada", "bob")


class TestNot:
    def test_not_blocks_when_match_exists(self):
        rule = m.when(
            m.bind_class("c", "Client"),
            m.not_(m.bind_class("z", "Order"), m.return_(m.dot(m.var("c"), "name"))),
        )
        assert m.eval_rule(rule, WORLD) == Bag([])

    def test_not_passes_when_no_match(self):
        rule = m.when(
            m.bind_class("c", "Client"),
            m.not_(m.bind_class("z", "Nothing"), m.return_(m.dot(m.var("c"), "name"))),
        )
        assert m.eval_rule(rule, WORLD) == bag("ada", "bob")

    def test_correlated_not(self):
        import repro.camp.ast as camp

        # clients with no order above 100
        big_order = camp.PLetEnv(
            camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
            camp.PLetEnv(
                camp.PAssert(
                    m.eq(m.dot(m.it(), "client"), m.dot(m.var("c"), "id"))
                ),
                camp.PLetEnv(
                    camp.PAssert(m.gt(m.dot(m.it(), "amount"), m.const(100))),
                    m.bind("o"),
                ),
            ),
        )
        rule = m.when(
            m.bind_class("c", "Client"),
            m.not_(big_order, m.return_(m.dot(m.var("c"), "name"))),
        )
        assert m.eval_rule(rule, WORLD) == bag("bob")


class TestGlobalAggregate:
    def test_global_sum(self):
        import repro.camp.ast as camp

        match_amount = camp.PLetEnv(
            camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
            m.dot(m.it(), "amount"),
        )
        rule = m.global_(
            m.aggregate(match_amount, ops.OpSum(), "total"),
            m.return_(m.var("total")),
        )
        assert m.eval_rule(rule, WORLD) == bag(290)

    def test_aggregate_inside_when(self):
        import repro.camp.ast as camp

        my_amounts = camp.PLetEnv(
            camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
            camp.PLetEnv(
                camp.PAssert(m.eq(m.dot(m.it(), "client"), m.dot(m.var("c"), "id"))),
                m.dot(m.it(), "amount"),
            ),
        )
        rule = m.when(
            m.bind_class("c", "Client"),
            m.global_(
                m.aggregate(my_amounts, ops.OpSum(), "total"),
                m.return_(
                    m.record({"n": m.dot(m.var("c"), "name"), "t": m.var("total")})
                ),
            ),
        )
        assert m.eval_rule(rule, WORLD) == bag(rec(n="ada", t=250), rec(n="bob", t=40))


class TestEvalRule:
    def test_requires_bag_result(self):
        with pytest.raises(TypeError):
            m.eval_rule(m.const(1), WORLD)

    def test_world_available_as_constant_and_datum(self):
        rule = m.return_(
            m.eq(m.it(), __import__("repro.camp.ast", fromlist=["PGetConstant"]).PGetConstant(m.WORLD))
        )
        assert m.eval_rule(rule, WORLD) == bag(True)
