"""Shared fixtures: the mini TPC-H database, the CAMP suite, sample data."""

from __future__ import annotations

import pytest

from repro.camp_suite.programs import all_programs
from repro.data.model import Bag, Record, bag, rec
from repro.tpch.datagen import MICRO, generate


@pytest.fixture(scope="session")
def tpch_db():
    """The deterministic micro TPC-H database (seed 7)."""
    return generate(MICRO, seed=7)


@pytest.fixture(scope="session")
def camp_programs():
    """The p01–p14 suite."""
    return all_programs()


@pytest.fixture
def people():
    """A small bag of person records used across frontend tests."""
    return bag(
        rec(name="ann", age=40, city="NY"),
        rec(name="bob", age=20, city="SF"),
        rec(name="cyd", age=31, city="NY"),
    )
