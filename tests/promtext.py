"""A strict test-side parser for the Prometheus text exposition format.

The obs endpoint's ``/metrics`` promises scrapeable output; these tests
must not take the exporter's word for it.  :func:`parse_prometheus`
validates the structural rules of exposition format 0.0.4 that real
scrapers enforce and returns the parsed families so tests can assert on
values:

- the document ends with a newline ("the last line must end with a line
  feed character");
- every ``# TYPE``/``# HELP`` line is well-formed, and no family is
  declared twice;
- every sample belongs to a declared family: the sample name is the
  family name itself, or — for summaries and histograms — the family
  name plus ``_sum``/``_count``/``_bucket``;
- sample names are legal metric names, label values are quoted, sample
  values parse as floats;
- histogram ``le`` buckets appear in increasing bound order with
  non-decreasing cumulative counts, end at ``+Inf``, and the ``+Inf``
  count equals the family's ``_count`` — checked *per label set*: a
  labeled family (e.g. one series per ``worker``) is validated as one
  independent bucket ladder per distinct non-``le`` label combination,
  which is exactly how Prometheus models labeled histograms.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(r"^# HELP (%s) (.*)$" % _NAME)
_TYPE_RE = re.compile(r"^# TYPE (%s) (counter|gauge|summary|histogram|untyped)$" % _NAME)
_SAMPLE_RE = re.compile(
    r"^(%s)(?:\{([a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*)\})? (\S+)$"
    % _NAME
)


class Family:
    """One declared metric family and its samples."""

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        self.help = None
        #: [(sample_name, {label: value}, float_value)]
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def sample_value(self, suffix: str = "", **labels) -> float:
        """The unique sample ``<name><suffix>`` with exactly these labels."""
        wanted = {key: str(value) for key, value in labels.items()}
        matches = [
            value
            for sample_name, sample_labels, value in self.samples
            if sample_name == self.name + suffix and sample_labels == wanted
        ]
        assert len(matches) == 1, (self.name + suffix, wanted, self.samples)
        return matches[0]


def _parse_labels(text) -> Dict[str, str]:
    if not text:
        return {}
    labels = {}
    for pair in text.split(","):
        key, _, value = pair.partition("=")
        labels[key] = value.strip('"')
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _owning_family(sample_name: str, families: Dict[str, Family]) -> Family:
    family = families.get(sample_name)
    if family is not None:
        return family
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            family = families.get(sample_name[: -len(suffix)])
            if family is not None:
                assert family.kind in ("summary", "histogram"), (
                    "suffix sample %r under non-distribution family %r (%s)"
                    % (sample_name, family.name, family.kind)
                )
                if suffix == "_bucket":
                    assert family.kind == "histogram", sample_name
                return family
    raise AssertionError("sample %r belongs to no declared family" % sample_name)


def parse_prometheus(text: str) -> Dict[str, Family]:
    """Parse and validate an exposition document; returns families by name."""
    assert text.endswith("\n"), "exposition must end with a line feed"
    families: Dict[str, Family] = {}
    helps: Dict[str, str] = {}
    for line in text.rstrip("\n").splitlines():
        assert line == line.strip(), "stray whitespace in %r" % line
        if line.startswith("# HELP "):
            match = _HELP_RE.match(line)
            assert match, "malformed HELP line %r" % line
            name = match.group(1)
            assert name not in helps, "HELP declared twice for %r" % name
            helps[name] = match.group(2)
        elif line.startswith("# TYPE "):
            match = _TYPE_RE.match(line)
            assert match, "malformed TYPE line %r" % line
            name, kind = match.group(1), match.group(2)
            assert name not in families, "family %r declared twice" % name
            families[name] = Family(name, kind)
            families[name].help = helps.get(name)
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            match = _SAMPLE_RE.match(line)
            assert match, "malformed sample line %r" % line
            sample_name, label_text, value_text = match.groups()
            family = _owning_family(sample_name, families)
            family.samples.append(
                (sample_name, _parse_labels(label_text), _parse_value(value_text))
            )
    for family in families.values():
        _check_family(family)
    return families


def _check_family(family: Family) -> None:
    if family.kind == "histogram":
        # Group buckets by their non-`le` labels: each distinct label
        # set (e.g. each worker) is its own independent bucket ladder.
        ladders: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        for name, labels, value in family.samples:
            if name != family.name + "_bucket":
                continue
            assert "le" in labels, "bucket sample without le label in %r" % family.name
            series = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            ladders.setdefault(series, []).append((_parse_value(labels["le"]), value))
        assert ladders, "histogram %r has no buckets" % family.name
        for series, buckets in ladders.items():
            bounds = [bound for bound, _ in buckets]
            counts = [count for _, count in buckets]
            assert bounds == sorted(bounds), (
                "le bounds out of order in %r%r" % (family.name, series)
            )
            assert counts == sorted(counts), (
                "cumulative counts decrease in %r%r: %r"
                % (family.name, series, counts)
            )
            assert bounds[-1] == math.inf, (
                "histogram %r%r must end at +Inf" % (family.name, series)
            )
            assert counts[-1] == family.sample_value("_count", **dict(series)), (
                "+Inf bucket != _count in %r%r" % (family.name, series)
            )
    if family.kind == "counter":
        for _, _, value in family.samples:
            assert value >= 0, "negative counter in %r" % family.name
