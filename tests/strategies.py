"""Hypothesis strategies for data-model values and NRAe plans."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.data.foreign import DateValue
from repro.data.model import Bag, Record

atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
    st.text(alphabet="abcxyz", max_size=4),
    st.builds(
        DateValue,
        st.integers(min_value=1992, max_value=1998),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
    ),
)


def values(max_leaves: int = 12):
    """Arbitrary data-model values (atoms, bags, records, nested)."""
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, max_size=3).map(Bag),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]), children, max_size=3
            ).map(Record),
        ),
        max_leaves=max_leaves,
    )


#: Flat records over a small fixed schema (the "element" shape used by
#: plan-equivalence properties).
element_records = st.builds(
    lambda a, b: Record({"a": a, "b": b}),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)

element_bags = st.lists(element_records, max_size=5).map(Bag)

#: Environment records sharing field "a" with elements (so ⊗ both
#: succeeds and fails).
env_records = st.builds(
    lambda a, u: Record({"a": a, "u": u}),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)
