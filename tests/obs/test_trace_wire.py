"""Tests for cross-process span shipping and merged trace export.

Covers the wire form (wall-clock anchored span trees), the merged
chrome-trace exporter (one pid lane per process), the text renderer
behind ``repro trace``, and the ``QueryContext`` wire round trip.
"""

import json
import time

from repro.obs.context import QueryContext
from repro.obs.export import merged_chrome_events, render_trace_tree
from repro.obs.trace import Tracer, span_to_wire, spans_to_wire


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("parent", category="svc", handle="q1"):
        with tracer.span("child"):
            tracer.instant("mark", detail=3)
    return tracer


class TestSpanWire:
    def test_wire_spans_carry_wall_clock_times(self):
        before = time.time()
        tracer = _sample_tracer()
        after = time.time()
        (wire,) = spans_to_wire(tracer)
        assert wire["name"] == "parent"
        assert before <= wire["start"] <= wire["end"] <= after + 1.0
        (child,) = wire["children"]
        assert wire["start"] <= child["start"] <= child["end"] <= wire["end"]
        (mark,) = child["instants"]
        assert child["start"] <= mark["at"] <= child["end"]

    def test_wire_form_is_json_safe(self):
        tracer = Tracer()
        with tracer.span("s", plan=object(), rows=5, label="x"):
            pass
        wire = span_to_wire(tracer.roots[0], tracer)
        round_tripped = json.loads(json.dumps(wire))
        assert round_tripped["args"]["rows"] == 5
        assert round_tripped["args"]["label"] == "x"
        assert isinstance(round_tripped["args"]["plan"], str)  # repr'd

    def test_category_and_args_ride_along(self):
        tracer = _sample_tracer()
        (wire,) = spans_to_wire(tracer)
        assert wire["cat"] == "svc"
        assert wire["args"] == {"handle": "q1"}


class TestMergedChromeEvents:
    def _processes(self):
        leader = _sample_tracer()
        worker = Tracer()
        with worker.span("service.execute", category="service"):
            pass
        return [
            {"process": "leader", "spans": spans_to_wire(leader)},
            {"process": "w0", "spans": spans_to_wire(worker)},
        ]

    def test_one_pid_lane_per_process_with_names(self):
        events = merged_chrome_events(self._processes())
        metadata = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in metadata] == ["leader", "w0"]
        assert [m["pid"] for m in metadata] == [1, 2]
        pids = {e["name"]: e["pid"] for e in events if e["ph"] == "X"}
        assert pids["parent"] == pids["child"] == 1
        assert pids["service.execute"] == 2

    def test_timestamps_rebase_to_earliest_span(self):
        events = merged_chrome_events(self._processes())
        xs = [e for e in events if e["ph"] in ("X", "i")]
        assert min(e["ts"] for e in xs) == 0.0
        assert all(e["ts"] >= 0.0 for e in xs)

    def test_instants_become_i_events_in_their_lane(self):
        events = merged_chrome_events(self._processes())
        (mark,) = [e for e in events if e["ph"] == "i"]
        assert mark["name"] == "mark"
        assert mark["pid"] == 1

    def test_empty_processes_render_nothing_but_metadata(self):
        events = merged_chrome_events([{"process": "leader", "spans": []}])
        assert [e["ph"] for e in events] == ["M"]


class TestRenderTraceTree:
    def test_renders_per_process_lanes(self):
        processes = [
            {"process": "leader", "spans": spans_to_wire(_sample_tracer())},
        ]
        worker = Tracer()
        with worker.span("service.execute"):
            pass
        processes.append({"process": "w3", "spans": spans_to_wire(worker)})
        text = render_trace_tree(
            {"query_id": "abcd1234abcd1234", "processes": processes}
        )
        assert text.startswith("trace abcd1234abcd1234 (2 processes)")
        lines = text.splitlines()
        assert "  [leader]" in lines
        assert "  [w3]" in lines
        assert any("parent" in line and "ms" in line for line in lines)
        # the child is indented one level deeper than the parent
        parent_line = next(line for line in lines if "parent" in line)
        child_line = next(line for line in lines if "child" in line)
        assert len(child_line) - len(child_line.lstrip()) > len(parent_line) - len(
            parent_line.lstrip()
        )

    def test_singular_process_header(self):
        text = render_trace_tree({"query_id": "x", "processes": [{"process": "leader", "spans": []}]})
        assert text.startswith("trace x (1 process)")


class TestQueryContextWire:
    def test_round_trip_preserves_identity(self):
        context = QueryContext(tracer=Tracer(), head_sampled=True)
        wire = json.loads(json.dumps(context.to_wire()))
        assert wire["record_trace"] is True
        rebuilt = QueryContext.from_wire(wire, tracer=Tracer())
        assert rebuilt.query_id == context.query_id
        assert rebuilt.started_at == context.started_at
        assert rebuilt.head_sampled is True
        assert rebuilt.tracer is not None

    def test_record_trace_defaults_to_tracer_presence(self):
        assert QueryContext().to_wire()["record_trace"] is False
        assert QueryContext(tracer=Tracer()).to_wire()["record_trace"] is True
        assert QueryContext().to_wire(record_trace=True)["record_trace"] is True
