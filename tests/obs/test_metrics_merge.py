"""Property tests for the delta-metrics merge contract.

The fleet layer's claim (DESIGN.md §15): a leader-side histogram built
by merging per-worker deltas is *sample-equivalent* to one histogram
that recorded every observation directly — identical count, sum,
bucket-wise counts, extrema, and therefore identical interpolated
p50/p95/p99.  These tests pin the claim down with Hypothesis: arbitrary
sample sets, arbitrary partitions into workers, arbitrary ship points
within each worker's stream.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    delta_is_empty,
    snapshot_delta,
)

#: Positive latencies-in-ms-like values: exercise sub-1 (bucket 0),
#: bucket boundaries, and large magnitudes.
_values = st.one_of(
    st.integers(min_value=0, max_value=2**20),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)


def _merged_equals_direct(direct: Histogram, merged: Histogram) -> None:
    assert merged.count == direct.count
    assert math.isclose(merged.total, direct.total, rel_tol=1e-9, abs_tol=1e-9)
    assert merged.buckets == direct.buckets
    assert merged.minimum == direct.minimum
    assert merged.maximum == direct.maximum
    for q in (0.5, 0.95, 0.99):
        left, right = merged.quantile(q), direct.quantile(q)
        if left is None or right is None:
            assert left == right
        else:
            assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)


class TestHistogramMerge:
    @given(
        samples=st.lists(_values, min_size=1, max_size=200),
        cuts=st.lists(st.integers(min_value=0, max_value=199), max_size=6),
    )
    @settings(max_examples=200, deadline=None)
    def test_partitioned_merge_is_sample_equivalent(self, samples, cuts):
        """Split the sample stream at arbitrary points into per-worker
        segments; each segment merges into the leader as one delta."""
        direct = Histogram("h")
        for value in samples:
            direct.record(value)
        bounds = sorted({c for c in cuts if c < len(samples)} | {0, len(samples)})
        merged = Histogram("h")
        for start, end in zip(bounds, bounds[1:]):
            worker = Histogram("h")
            for value in samples[start:end]:
                worker.record(value)
            merged.merge(worker.summary())
        _merged_equals_direct(direct, merged)

    @given(
        samples=st.lists(_values, min_size=1, max_size=120),
        ship_every=st.integers(min_value=1, max_value=7),
        workers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_registry_delta_stream_reconstructs_worker_registries(
        self, samples, ship_every, workers
    ):
        """The full wire contract: round-robin samples over N workers,
        each snapshotting and shipping a delta every ``ship_every``
        records; the leader applies deltas in arrival order."""
        direct = Histogram("latency_ms")
        leader = MetricsRegistry()
        registries = [MetricsRegistry() for _ in range(workers)]
        baselines = [registry.snapshot() for registry in registries]

        def ship(index):
            current = registries[index].snapshot()
            delta = snapshot_delta(baselines[index], current)
            baselines[index] = current
            if not delta_is_empty(delta):
                leader.apply_delta(delta)

        for position, value in enumerate(samples):
            index = position % workers
            direct.record(value)
            registries[index].histogram("latency_ms").record(value)
            registries[index].counter("requests").inc()
            if (position // workers) % ship_every == 0:
                ship(index)
        for index in range(workers):
            ship(index)  # final flush

        _merged_equals_direct(direct, leader.histogram("latency_ms"))
        assert leader.counter("requests").value == len(samples)

    @given(samples=st.lists(_values, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_merge_accepts_json_round_tripped_deltas(self, samples):
        """Bucket keys survive JSON stringification (the wire path)."""
        import json

        worker = Histogram("h")
        for value in samples:
            worker.record(value)
        wire = json.loads(json.dumps(worker.summary()))
        merged = Histogram("h")
        merged.merge(wire)
        _merged_equals_direct(worker, merged)

    def test_empty_delta_is_a_no_op(self):
        histogram = Histogram("h")
        histogram.record(5)
        before = histogram.summary()
        histogram.merge({"count": 0, "sum": 0, "buckets": {}})
        assert histogram.summary() == before

    def test_lifetime_extrema_are_safe_under_min_max_combine(self):
        """A delta ships *lifetime* min/max; merging with min/max keeps
        the leader's extrema exact even when a later delta's lifetime
        minimum predates the shipped window."""
        worker = Histogram("h")
        leader = Histogram("h")
        worker.record(1)
        worker.record(100)
        first = worker.summary()
        leader.merge(first)
        worker.record(50)  # window delta: only the 50; lifetime min/max 1/100
        second = snapshot_delta(
            {"histograms": {"h": first}},
            {"histograms": {"h": worker.summary()}},
        )["histograms"]["h"]
        assert second["count"] == 1
        assert second["min"] == 1 and second["max"] == 100
        leader.merge(second)
        assert leader.minimum == worker.minimum == 1
        assert leader.maximum == worker.maximum == 100
        assert leader.count == worker.count == 3


class TestSnapshotDelta:
    def test_counters_diff_and_unchanged_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.counter("b").inc(1)
        first = registry.snapshot()
        registry.counter("a").inc(2)
        delta = snapshot_delta(first, registry.snapshot())
        assert delta["counters"] == {"a": 2}
        assert delta["histograms"] == {}

    def test_gauges_ship_current_value_when_changed(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        first = registry.snapshot()
        delta = snapshot_delta(first, registry.snapshot())
        assert delta_is_empty(delta)
        registry.gauge("depth").set(9)
        delta = snapshot_delta(first, registry.snapshot())
        assert delta["gauges"] == {"depth": 9}

    def test_idle_worker_delta_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").record(1)
        snapshot = registry.snapshot()
        assert delta_is_empty(snapshot_delta(snapshot, snapshot))
