"""Tests for the structured query log (repro.obs.log)."""

import json
import os
import threading

import pytest

from repro.obs.log import QueryLog, iter_events, read_events


class TestEmit:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            stamped = log.emit({"event": "query", "query_id": "abc", "rows": 3})
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["event"] == "query"
        assert events[0]["query_id"] == "abc"
        assert events[0]["rows"] == 3
        assert events[0]["ts"] == stamped["ts"]

    def test_ts_is_iso_utc(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            stamped = log.emit({"event": "query"})
        assert stamped["ts"].endswith("Z")
        assert "T" in stamped["ts"]

    def test_caller_supplied_ts_kept(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            log.emit({"event": "query", "ts": "2026-01-01T00:00:00.000Z"})
        assert read_events(path)[0]["ts"] == "2026-01-01T00:00:00.000Z"

    def test_events_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            for index in range(5):
                log.emit({"event": "query", "n": index})
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 5
        assert [json.loads(line)["n"] for line in lines] == list(range(5))

    def test_non_serializable_values_become_reprs(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            log.emit({"event": "query", "payload": object(), "ok": True})
        (event,) = read_events(path)
        assert event["ok"] is True
        assert "object" in event["payload"]

    def test_closed_log_rejects_emit(self, tmp_path):
        log = QueryLog(str(tmp_path / "q.jsonl"))
        log.close()
        with pytest.raises(ValueError):
            log.emit({"event": "query"})

    def test_describe(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path, max_bytes=100, backups=2) as log:
            log.emit({"event": "query"})
            description = log.describe()
        assert description["path"] == path
        assert description["max_bytes"] == 100
        assert description["backups"] == 2
        assert description["emitted"] == 1


class TestRotation:
    def test_rotation_bounds_total_footprint(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        max_bytes = 500
        backups = 2
        with QueryLog(path, max_bytes=max_bytes, backups=backups) as log:
            for index in range(200):
                log.emit({"event": "query", "n": index, "pad": "x" * 40})
            assert log.describe()["rotations"] > 0
        generations = [path] + ["%s.%d" % (path, i) for i in range(1, backups + 2)]
        existing = [g for g in generations if os.path.exists(g)]
        # never more than the active file + `backups` rotated ones
        assert len(existing) <= backups + 1
        assert not os.path.exists("%s.%d" % (path, backups + 1))
        for generation in existing:
            # each file stays within one event of the cap
            assert os.path.getsize(generation) <= max_bytes + 100

    def test_reader_walks_generations_oldest_first(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path, max_bytes=300, backups=3) as log:
            for index in range(30):
                log.emit({"event": "query", "n": index, "pad": "x" * 20})
        sequence = [event["n"] for event in read_events(path)]
        # rotation may discard the oldest events, but whatever survives
        # must be a contiguous, ordered tail ending at the newest
        assert sequence == sorted(sequence)
        assert sequence[-1] == 29
        assert sequence == list(range(sequence[0], 30))

    def test_zero_backups_discards_on_rotation(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path, max_bytes=200, backups=0) as log:
            for index in range(50):
                log.emit({"event": "query", "n": index, "pad": "y" * 30})
        assert not os.path.exists(path + ".1")
        events = read_events(path)
        assert events[-1]["n"] == 49

    def test_include_rotated_false_reads_active_only(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path, max_bytes=300, backups=3) as log:
            for index in range(30):
                log.emit({"event": "query", "n": index, "pad": "x" * 20})
        active_only = read_events(path, include_rotated=False)
        everything = read_events(path)
        assert len(active_only) < len(everything)


class TestReader:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert read_events(str(tmp_path / "absent.jsonl")) == []

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            log.emit({"event": "query", "n": 1})
        with open(path, "a") as handle:
            handle.write('{"event": "query", "n": 2, "tr')  # crash mid-write
        events = read_events(path)
        assert [event["n"] for event in events] == [1]

    def test_blank_and_non_object_lines_skipped(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "a"}\n\n[1, 2]\n"str"\n{"event": "b"}\n')
        assert [event["event"] for event in read_events(path)] == ["a", "b"]

    def test_iter_events_is_lazy_equivalent(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLog(path) as log:
            for index in range(3):
                log.emit({"event": "query", "n": index})
        assert list(iter_events(path)) == read_events(path)


class TestThreadSafety:
    def test_concurrent_emitters_produce_parseable_lines(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        events_per_thread = 200
        with QueryLog(path, max_bytes=20_000, backups=5) as log:
            def hammer(worker):
                for index in range(events_per_thread):
                    log.emit({"event": "query", "worker": worker, "n": index})

            threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            emitted = log.describe()["emitted"]
        assert emitted == 8 * events_per_thread
        events = read_events(path)
        # every surviving line parses, and no line was interleaved/torn
        assert events
        for event in events:
            assert event["event"] == "query"
            assert 0 <= event["worker"] < 8
