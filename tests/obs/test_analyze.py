"""Tests for EXPLAIN ANALYZE collection (repro.obs.analyze).

Two families: unit tests for the collector/renderers on hand-built
plans, and hypothesis properties pinning the two invariants that make
the numbers trustworthy — an analyzed execution returns the *same
multiset* as a plain one, and a parent's reported input cardinality
equals its input children's reported output cardinality.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, Record, bag, rec
from repro.nraenv import builders as b
from repro.nraenv import eval as nraenv_eval
from repro.nraenv import exec as engine
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.nraenv.exec import eval_fast
from repro.obs.analyze import (
    AnalyzeCollector,
    NodeStats,
    analysis_summary,
    analyze_execution,
    calibration_report,
    node_label,
    render_analyze,
)
from repro.optim.verify import gen_plan, random_constants, random_datum, random_environment

DB = {
    "R": bag(rec(a=1, b=10), rec(a=2, b=20), rec(a=3, b=30)),
    "S": bag(rec(c=1, d="x"), rec(c=2, d="y"), rec(c=2, d="z")),
}


def join_plan():
    return b.sigma(
        b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
        b.product(b.table("R"), b.table("S")),
    )


class TestNodeLabel:
    def test_table_shows_constant_name(self):
        assert node_label(b.table("R")) == "table(R)"

    def test_ops_show_class_name(self):
        assert node_label(b.dot(b.id_(), "a")) == "OpDot"

    def test_const_shows_value(self):
        assert node_label(b.const(5)) == "$5"

    def test_combinators_show_symbols(self):
        assert node_label(b.sigma(b.const(True), b.table("R"))) == "σ"
        assert node_label(b.product(b.table("R"), b.table("S"))) == "×"


class TestCollector:
    def test_enter_exit_accumulates(self):
        node = b.table("R")
        collector = AnalyzeCollector()
        stats = collector.enter(node)
        collector.exit(stats, 0.5, DB["R"])
        stats = collector.enter(node)
        collector.exit(stats, 0.25, DB["R"])
        stats = collector.stats_for(node)
        assert stats.calls == 2
        assert stats.out_bags == 2
        assert stats.out_rows == 6
        assert stats.max_rows == 3
        assert abs(stats.seconds - 0.75) < 1e-9

    def test_non_bag_results_leave_out_stats_zero(self):
        node = b.const(5)
        collector = AnalyzeCollector()
        stats = collector.enter(node)
        collector.exit(stats, 0.1, 5)
        stats = collector.stats_for(node)
        assert stats.out_bags == 0 and stats.out_rows == 0 and stats.max_rows == 0

    def test_child_time_and_input_rows_attributed_to_parent(self):
        source = b.table("R")
        select = b.sigma(b.const(True), source)
        collector = AnalyzeCollector()
        outer = collector.enter(select)
        inner = collector.enter(source)
        collector.exit(inner, 0.2, DB["R"])
        collector.exit(outer, 0.5, DB["R"])
        stats = collector.stats_for(select)
        assert stats.in_rows == 3  # source is an input child: its bag is consumed
        assert abs(stats.child_seconds - 0.2) < 1e-9
        assert abs(stats.self_seconds - 0.3) < 1e-9

    def test_non_input_children_do_not_count_as_input(self):
        pred = b.const(True)
        select = b.sigma(pred, b.table("R"))
        collector = AnalyzeCollector()
        outer = collector.enter(select)
        inner = collector.enter(pred)
        collector.exit(inner, 0.0, DB["R"])  # a bag, but not from an input child
        collector.exit(outer, 0.0, DB["R"])
        assert collector.stats_for(select).in_rows == 0

    def test_exit_error_counts_and_unwinds(self):
        node = b.table("R")
        collector = AnalyzeCollector()
        stats = collector.enter(node)
        collector.exit_error(stats, 0.1)
        stats = collector.stats_for(node)
        assert stats.errors == 1
        assert stats.out_bags == 0
        assert collector._stack == []

    def test_on_join_and_add_input(self):
        select = join_plan()
        collector = AnalyzeCollector()
        collector.on_join(select, None)
        collector.on_join(select, "ambiguous_field")
        collector.add_input(select, 6)
        stats = collector.stats_for(select)
        assert stats.hash_joins == 1
        assert stats.fallbacks == {"ambiguous_field": 1}
        assert stats.in_rows == 6

    def test_peak_rows_and_hot_operators(self):
        small, big = b.table("R"), b.table("S")
        collector = AnalyzeCollector()
        stats = collector.enter(small)
        collector.exit(stats, 0.1, Bag([1]))
        stats = collector.enter(big)
        collector.exit(stats, 0.9, Bag([1, 2, 3, 4]))
        assert collector.peak_rows() == 4
        hot = collector.hot_operators(1)
        assert len(hot) == 1
        assert hot[0]["label"] == "table(S)"
        assert hot[0]["self_seconds"] > 0.5


class TestAnalyzedExecution:
    def test_hash_join_reported_inline(self):
        plan = join_plan()
        with analyze_execution() as collector:
            result = eval_fast(plan, Record({}), None, DB)
        assert len(result) == 3
        select = collector.stats_for(plan)
        assert select.hash_joins == 1
        assert select.in_rows == 6  # both factors, 3 rows each
        assert select.out_rows == 3
        rendering = render_analyze(plan, collector)
        assert "hash join x1" in rendering
        assert "(not executed)" in rendering  # the fused × never runs

    def test_fallback_reason_reported_inline(self):
        # ``b`` comes from R always but from H only sometimes — the
        # engine cannot attribute it, so it falls back (and still gets
        # the right answer through the reference semantics)
        constants = dict(DB, H=bag(rec(c=1, b=2), rec(c=2)))
        plan = b.sigma(
            b.gt(b.dot(b.id_(), "b"), b.const(1)),
            b.product(b.table("R"), b.table("H")),
        )
        with analyze_execution() as collector:
            result = eval_fast(plan, Record({}), None, constants)
        assert len(result) == 6
        stats = collector.stats_for(plan)
        assert stats.fallbacks == {"ambiguous_field": 1}
        assert stats.hash_joins == 0
        rendering = render_analyze(plan, collector)
        assert "fallback: 1x ambiguous field across factors" in rendering

    def test_reference_evaluator_mode(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.table("R"))
        with analyze_execution(engine=False) as collector:
            result = eval_nraenv(plan, Record({}), None, DB)
        assert result == Bag([1, 2, 3])
        stats = collector.stats_for(plan)
        assert stats.calls == 1
        assert stats.in_rows == 3
        assert stats.out_rows == 3
        # the body ran once per row
        body = collector.stats_for(plan.body)
        assert body.calls == 3

    def test_dispatchers_restored_after_error(self):
        plan = b.dot(b.const(5), "a")  # Dot over a non-record raises
        with analyze_execution() as collector:
            with pytest.raises(EvalError):
                eval_fast(plan, Record({}), None, DB)
        assert engine._eval is engine._eval_plain
        assert nraenv_eval._eval is nraenv_eval._eval_plain
        assert collector.stats_for(plan).errors == 1

    def test_disabled_by_default(self):
        assert engine._eval is engine._eval_plain
        assert nraenv_eval._eval is nraenv_eval._eval_plain


class TestRendering:
    def run_analyzed(self, plan):
        with analyze_execution() as collector:
            eval_fast(plan, Record({}), None, DB)
        return collector

    def test_render_covers_every_node(self):
        plan = join_plan()
        collector = self.run_analyzed(plan)
        rendering = render_analyze(plan, collector)
        assert rendering.count("\n") == len(list(plan.walk()))
        assert "table(R)" in rendering and "table(S)" in rendering
        assert "calls=" in rendering and "time=" in rendering and "self=" in rendering

    def test_calibration_report_table_and_rho(self):
        plan = join_plan()
        collector = self.run_analyzed(plan)
        report = calibration_report(plan, collector)
        assert "Cost-model calibration" in report
        assert "operator" in report and "cost" in report and "out_rows" in report
        assert "rank correlation" in report

    def test_calibration_report_without_execution(self):
        plan = join_plan()
        report = calibration_report(plan, AnalyzeCollector())
        assert "(no nodes executed)" in report

    def test_analysis_summary_shape(self):
        import json

        plan = join_plan()
        collector = self.run_analyzed(plan)
        summary = analysis_summary(collector, plan)
        assert summary["peak_rows"] == 3
        assert summary["nodes"] >= 1
        assert len(summary["hot"]) <= 3
        assert "σ" in summary["tree"]
        json.dumps(summary)  # must be wire-safe

    def test_analysis_summary_without_plan_has_no_tree(self):
        collector = self.run_analyzed(join_plan())
        assert "tree" not in analysis_summary(collector)


class TestProperties:
    """The two invariants that make EXPLAIN ANALYZE numbers trustworthy."""

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=120, deadline=None)
    def test_analyzed_engine_matches_plain(self, seed):
        rng = random.Random(seed)
        plan = gen_plan(rng, "any", depth=3)
        env = random_environment(rng)
        datum = random_datum(rng)
        constants = random_constants(rng)
        try:
            expected = eval_fast(plan, env, datum, constants)
        except EvalError:
            with analyze_execution():
                with pytest.raises(EvalError):
                    eval_fast(plan, env, datum, constants)
            return
        with analyze_execution() as collector:
            analyzed = eval_fast(plan, env, datum, constants)
        assert analyzed == expected
        assert collector.stats_for(plan).calls >= 1

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=120, deadline=None)
    def test_analyzed_reference_matches_plain(self, seed):
        rng = random.Random(seed)
        plan = gen_plan(rng, "any", depth=3)
        env = random_environment(rng)
        datum = random_datum(rng)
        constants = random_constants(rng)
        try:
            expected = eval_nraenv(plan, env, datum, constants)
        except EvalError:
            return
        with analyze_execution(engine=False):
            analyzed = eval_nraenv(plan, env, datum, constants)
        assert analyzed == expected

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=120, deadline=None)
    def test_parent_input_equals_child_output(self, seed):
        """in_rows a parent reports == out_rows its input children report.

        Checked under the reference evaluator, where every input bag
        flows through the frame protocol (the join engine credits the
        fused σ(×) input via add_input instead, bypassing the frames).
        """
        rng = random.Random(seed)
        plan = gen_plan(rng, "bag", depth=3)
        env = random_environment(rng)
        datum = random_datum(rng)
        constants = random_constants(rng)
        try:
            with analyze_execution(engine=False) as collector:
                eval_nraenv(plan, env, datum, constants)
        except EvalError:
            return
        for stats in collector.stats.values():
            if not stats.input_ids:
                continue
            reported = sum(
                collector.stats[child_id].out_rows
                for child_id in stats.input_ids
                if child_id in collector.stats
            )
            assert stats.in_rows == reported, node_label(stats.node)


class TestJsonViews:
    def run_collected(self):
        plan = join_plan()
        with analyze_execution() as collector:
            eval_fast(plan, Record({}), None, DB)
        return plan, collector

    def test_analyze_json_mirrors_plan_shape(self):
        import json

        from repro.obs.analyze import analyze_json

        plan, collector = self.run_collected()
        document = analyze_json(plan, collector)
        json.dumps(document)  # JSON-safe throughout
        assert document["label"] == "σ"
        assert document["stats"]["calls"] >= 1
        # a=1 matches c=1 once; a=2 matches c=2 twice
        assert document["stats"]["out_rows"] == 3

        def labels(node):
            return [node["label"]] + [l for c in node["children"] for l in labels(c)]

        rendered = render_analyze(plan, collector)
        for label in set(labels(document)):
            assert label in rendered

    def test_analyze_json_unexecuted_nodes_have_none_stats(self):
        from repro.obs.analyze import analyze_json

        # σ⟨false⟩ short-circuits nothing here, but an unexecuted branch
        # comes from a plan whose subtree never runs: default(table, const)
        plan = b.sigma(b.const(False), b.table("R"))
        with analyze_execution() as collector:
            eval_fast(plan, Record({}), None, DB)
        document = analyze_json(plan, collector)
        stats = [document["stats"]] + [child["stats"] for child in document["children"]]
        assert any(s is not None for s in stats)

    def test_calibration_data_rows_and_rho(self):
        import json

        from repro.obs.analyze import calibration_data

        plan, collector = self.run_collected()
        data = calibration_data(plan, collector)
        json.dumps(data)
        assert data["rows"], "executed nodes must appear"
        costs = [row["cost"] for row in data["rows"]]
        assert costs == sorted(costs, reverse=True)
        for row in data["rows"]:
            assert set(row) == {"operator", "cost", "out_rows", "self_seconds"}
        assert data["spearman_rho"] is None or -1.0 <= data["spearman_rho"] <= 1.0

    def test_calibration_data_agrees_with_report(self):
        from repro.obs.analyze import calibration_data

        plan, collector = self.run_collected()
        report = calibration_report(plan, collector)
        data = calibration_data(plan, collector)
        rho = data["spearman_rho"]
        if rho is not None:
            assert ("%+.3f" % rho) in report


class TestQueryIdCorrelation:
    def test_summary_carries_query_id_inside_a_request(self):
        from repro.obs.context import QueryContext, query_context

        plan, collector = TestJsonViews().run_collected()
        with query_context(QueryContext(query_id="deadbeefcafe0123")):
            summary = analysis_summary(collector)
        assert summary["query_id"] == "deadbeefcafe0123"

    def test_summary_has_no_query_id_outside_a_request(self):
        plan, collector = TestJsonViews().run_collected()
        summary = analysis_summary(collector)
        assert "query_id" not in summary
