"""Tests for the current-query context (repro.obs.context)."""

import contextvars
import threading

from repro.obs.context import (
    QueryContext,
    current_query,
    current_query_id,
    new_query_id,
    query_context,
)
from repro.obs.trace import NULL_TRACER, Tracer, get_tracer, use_tracer


class TestQueryId:
    def test_ids_are_unique_hex(self):
        ids = {new_query_id() for _ in range(100)}
        assert len(ids) == 100
        for query_id in ids:
            assert len(query_id) == 16
            int(query_id, 16)

    def test_context_assigns_id_and_start_time(self):
        context = QueryContext()
        assert len(context.query_id) == 16
        assert context.started_at > 0
        assert context.tracer is None
        assert context.head_sampled is False

    def test_explicit_fields_kept(self):
        tracer = Tracer()
        context = QueryContext(
            query_id="abc", tracer=tracer, started_at=123.0, head_sampled=True
        )
        assert context.query_id == "abc"
        assert context.tracer is tracer
        assert context.started_at == 123.0
        assert context.head_sampled is True


class TestScoping:
    def test_default_is_none(self):
        assert current_query() is None
        assert current_query_id() is None

    def test_enter_and_exit(self):
        context = QueryContext()
        with query_context(context) as active:
            assert active is context
            assert current_query() is context
            assert current_query_id() == context.query_id
        assert current_query() is None

    def test_nested_scopes_restore(self):
        outer, inner = QueryContext(), QueryContext()
        with query_context(outer):
            with query_context(inner):
                assert current_query() is inner
            assert current_query() is outer
        assert current_query() is None

    def test_restored_on_exception(self):
        try:
            with query_context(QueryContext()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_query() is None

    def test_plain_thread_does_not_inherit(self):
        # contextvars do not leak into a raw Thread (which starts with a
        # fresh context copy of the *spawning* moment only via copy at
        # thread start in 3.12+? no — threads start empty contexts).
        seen = []

        def worker():
            seen.append(current_query())

        with query_context(QueryContext()):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_copy_context_carries_query_across_threads(self):
        # The executor's propagation contract: copy_context() at submit
        # time makes the worker see the submitter's QueryContext.
        context = QueryContext()
        seen = []

        def worker():
            seen.append(current_query())

        with query_context(context):
            snapshot = contextvars.copy_context()
        thread = threading.Thread(target=lambda: snapshot.run(worker))
        thread.start()
        thread.join()
        assert seen == [context]


class TestTracerResolution:
    def test_context_tracer_wins_over_global(self):
        per_query = Tracer()
        with query_context(QueryContext(tracer=per_query)):
            assert get_tracer() is per_query

    def test_context_without_tracer_falls_back_to_global(self):
        global_tracer = Tracer()
        with use_tracer(global_tracer):
            with query_context(QueryContext(tracer=None)):
                assert get_tracer() is global_tracer
        with query_context(QueryContext(tracer=None)):
            assert get_tracer() is NULL_TRACER

    def test_spans_land_in_the_query_tracer(self):
        per_query = Tracer()
        with query_context(QueryContext(tracer=per_query)):
            with get_tracer().span("request_work"):
                pass
        assert [root.name for root in per_query.roots] == ["request_work"]
