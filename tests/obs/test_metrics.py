"""Tests for the metrics registry (repro.obs.metrics)."""

from repro.obs.metrics import (
    NULL_METRICS,
    EvalObserver,
    MetricsRegistry,
    RateRing,
    get_metrics,
    set_metrics,
    use_metrics,
)


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("hits") is counter

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.track_max(7)
        gauge.track_max(2)
        assert gauge.value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes")
        for value in (0, 1, 2, 3, 100):
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["min"] == 0
        assert summary["max"] == 100
        assert summary["sum"] == 106
        assert abs(summary["mean"] - 21.2) < 1e-9

    def test_histogram_buckets_are_powers_of_two(self):
        hist = MetricsRegistry().histogram("h")
        hist.record(1)  # bucket 0: v <= 1
        hist.record(2)  # bucket 1: 1 < v <= 2
        hist.record(3)  # bucket 2: 2 < v <= 4
        hist.record(4)  # bucket 2
        hist.record(5)  # bucket 3: 4 < v <= 8
        assert hist.buckets == {0: 1, 1: 1, 2: 2, 3: 1}

    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").record(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2}
        assert snapshot["histograms"]["h"]["count"] == 1
        json.dumps(snapshot)  # must be JSON-serializable


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.5) is None
        summary = hist.summary()
        assert summary["p50"] is None and summary["p95"] is None and summary["p99"] is None

    def test_single_value(self):
        hist = MetricsRegistry().histogram("h")
        hist.record(7)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 7.0

    def test_quantiles_clamped_to_observed_range(self):
        hist = MetricsRegistry().histogram("h")
        for value in (3, 5, 6, 100):
            hist.record(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            estimate = hist.quantile(q)
            assert 3.0 <= estimate <= 100.0

    def test_quantiles_are_monotone(self):
        import random

        rng = random.Random(11)
        hist = MetricsRegistry().histogram("h")
        for _ in range(500):
            hist.record(rng.randint(0, 10_000))
        estimates = [hist.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)]
        assert estimates == sorted(estimates)

    def test_interpolation_accuracy_on_uniform_data(self):
        # p50 of 1..1024 uniform is ~512; power-of-two buckets plus linear
        # interpolation should land in the right bucket's neighbourhood
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 1025):
            hist.record(value)
        p50 = hist.quantile(0.5)
        assert 256 < p50 <= 1024  # within the right order of magnitude
        assert hist.quantile(0.99) > hist.quantile(0.5)

    def test_out_of_range_quantile_rejected(self):
        import pytest

        hist = MetricsRegistry().histogram("h")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_standard_quantiles_dict(self):
        from repro.obs.metrics import Histogram

        hist = MetricsRegistry().histogram("h")
        hist.record(4)
        assert set(hist.quantiles()) == set(Histogram.QUANTILES)


class TestThreadSafety:
    def test_counter_hammered_from_8_threads(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("hammered")
        increments = 10_000

        def hammer():
            for _ in range(increments):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * increments

    def test_histogram_hammered_from_8_threads(self):
        import threading

        registry = MetricsRegistry()
        hist = registry.histogram("hammered")
        records = 5_000

        def hammer(seed):
            for i in range(records):
                hist.record((seed + i) % 100)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 8 * records
        assert sum(hist.buckets.values()) == 8 * records

    def test_gauge_track_max_from_8_threads(self):
        import threading

        registry = MetricsRegistry()
        gauge = registry.gauge("peak")

        def hammer(values):
            for value in values:
                gauge.track_max(value)

        threads = [
            threading.Thread(target=hammer, args=(range(t, 4000, 8),)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 3999


class TestRateRing:
    def test_window_validation(self):
        import pytest

        with pytest.raises(ValueError):
            RateRing(0)

    def test_empty_snapshot(self):
        snapshot = RateRing(60).snapshot(now=1000.0)
        assert snapshot["count"] == 0
        assert snapshot["qps"] == 0.0
        assert snapshot["mean_latency_ms"] == 0.0
        assert snapshot["max_latency_ms"] == 0.0

    def test_counts_and_latency_within_window(self):
        ring = RateRing(60)
        ring.observe(0.010, now=1000.0)
        ring.observe(0.030, now=1000.5)
        ring.observe(0.020, now=1005.0)
        snapshot = ring.snapshot(window=10, now=1005.0)
        assert snapshot["count"] == 3
        assert snapshot["qps"] == 0.3
        assert abs(snapshot["mean_latency_ms"] - 20.0) < 1e-9
        assert abs(snapshot["max_latency_ms"] - 30.0) < 1e-9

    def test_old_buckets_fall_out_of_the_window(self):
        ring = RateRing(60)
        ring.observe(0.010, now=1000.0)
        ring.observe(0.020, now=1030.0)
        snapshot = ring.snapshot(window=10, now=1035.0)
        assert snapshot["count"] == 1
        assert abs(snapshot["max_latency_ms"] - 20.0) < 1e-9

    def test_stale_bucket_lazily_reset_on_wraparound(self):
        ring = RateRing(10)
        ring.observe(0.010, now=1000.0)
        # 1010 maps to the same bucket index as 1000 a full cycle later
        ring.observe(0.050, now=1010.0)
        snapshot = ring.snapshot(window=10, now=1010.0)
        assert snapshot["count"] == 1
        assert abs(snapshot["max_latency_ms"] - 50.0) < 1e-9

    def test_snapshot_window_clamped_to_ring_size(self):
        ring = RateRing(10)
        ring.observe(0.010, now=1000.0)
        snapshot = ring.snapshot(window=3600, now=1000.0)
        assert snapshot["window_seconds"] == 10
        assert snapshot["count"] == 1

    def test_many_observations_in_one_second(self):
        ring = RateRing(60)
        for index in range(100):
            ring.observe(0.001 * index, now=1000.0 + index / 1000.0)
        snapshot = ring.snapshot(window=1, now=1000.0)
        assert snapshot["count"] == 100
        assert snapshot["qps"] == 100.0

    def test_thread_safety(self):
        import threading

        ring = RateRing(60)

        def hammer():
            for _ in range(5000):
                ring.observe(0.001, now=1000.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert ring.snapshot(window=1, now=1000.0)["count"] == 40_000


class TestNullMetrics:
    def test_instruments_are_noop_and_shared(self):
        counter = NULL_METRICS.counter("a")
        assert counter is NULL_METRICS.counter("b")
        assert counter is NULL_METRICS.gauge("c") is NULL_METRICS.histogram("d")
        counter.inc()
        counter.set(9)
        counter.track_max(9)
        counter.record(9)
        assert counter.value == 0
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert NULL_METRICS.enabled is False


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_metrics() is NULL_METRICS

    def test_use_metrics_restores(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert get_metrics() is registry
        assert get_metrics() is NULL_METRICS

    def test_set_none_restores_null(self):
        set_metrics(MetricsRegistry())
        set_metrics(None)
        assert get_metrics() is NULL_METRICS


class TestEvalObserver:
    def test_node_counters_by_type(self):
        registry = MetricsRegistry()
        observer = EvalObserver(registry, "eval.test")
        observer.on_node(1)
        observer.on_node(2)
        observer.on_node("x")
        assert registry.counter("eval.test.nodes.int").value == 2
        assert registry.counter("eval.test.nodes.str").value == 1

    def test_env_depth_high_water_mark(self):
        registry = MetricsRegistry()
        observer = EvalObserver(registry, "eval.test")
        observer.enter_env()
        observer.enter_env()
        observer.exit_env()
        observer.enter_env()
        observer.exit_env()
        observer.exit_env()
        assert registry.gauge("eval.test.max_env_depth").value == 2

    def test_bag_histogram(self):
        registry = MetricsRegistry()
        observer = EvalObserver(registry, "eval.test")
        observer.on_bag(10)
        observer.on_bag(20)
        assert registry.histogram("eval.test.bag_size").count == 2


class TestEvaluatorsUnderObservation:
    def test_nraenv_eval_counts_operators(self):
        from repro.data.model import Bag, Record
        from repro.nraenv import builders as b
        from repro.nraenv import eval as nraenv_eval

        registry = MetricsRegistry()
        plan = b.chi(b.dot(b.id_(), "a"), b.table("t"))
        table = Bag([Record({"a": 1}), Record({"a": 2})])
        nraenv_eval.set_observer(EvalObserver(registry, "eval.nraenv"))
        try:
            nraenv_eval.eval_nraenv(plan, constants={"t": table})
        finally:
            nraenv_eval.set_observer(None)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["eval.nraenv.nodes.Map"] == 1
        # the body (dot over id) evaluates once per element
        assert snapshot["counters"]["eval.nraenv.nodes.Unop"] == 2
        assert snapshot["histograms"]["eval.nraenv.bag_size"]["max"] == 2

    def test_nraenv_eval_unobserved_records_nothing(self):
        from repro.data.model import Bag, Record
        from repro.nraenv import builders as b
        from repro.nraenv.eval import eval_nraenv

        registry = MetricsRegistry()
        plan = b.chi(b.dot(b.id_(), "a"), b.table("t"))
        eval_nraenv(plan, constants={"t": Bag([Record({"a": 1})])})
        assert registry.snapshot()["counters"] == {}

    def test_nnrc_eval_counts_and_env_depth(self):
        from repro.data.model import Bag
        from repro.nnrc import ast
        from repro.nnrc import eval as nnrc_eval

        registry = MetricsRegistry()
        # let x = {1, 2} in {y | y ∈ x}
        expr = ast.Let(
            "x",
            ast.Const(Bag([1, 2])),
            ast.For("y", ast.Var("x"), ast.Var("y")),
        )
        nnrc_eval.set_observer(EvalObserver(registry, "eval.nnrc"))
        try:
            value = nnrc_eval.eval_nnrc(expr)
        finally:
            nnrc_eval.set_observer(None)
        assert value == Bag([1, 2])
        snapshot = registry.snapshot()
        assert snapshot["counters"]["eval.nnrc.nodes.Let"] == 1
        assert snapshot["counters"]["eval.nnrc.nodes.For"] == 1
        assert snapshot["gauges"]["eval.nnrc.max_env_depth"] == 2
        assert snapshot["histograms"]["eval.nnrc.bag_size"]["max"] == 2

    def test_runtime_observer_counts_calls(self):
        from repro.backend import runtime
        from repro.data.model import Bag, Record

        registry = MetricsRegistry()
        runtime.install_observer(registry)
        try:
            runtime.dot(Record({"a": 5}), "a")
            runtime.dot(Record({"a": 6}), "a")
            runtime.bag_items(Bag([1, 2, 3]))
        finally:
            runtime.uninstall_observer()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["runtime.calls.dot"] == 2
        assert snapshot["counters"]["runtime.calls.bag_items"] == 1
        assert snapshot["histograms"]["runtime.bag_size"]["max"] == 3
        # uninstalled: the bare functions are back and count nothing
        runtime.dot(Record({"a": 7}), "a")
        assert registry.counter("runtime.calls.dot").value == 2

    def test_observe_wires_everything(self):
        from repro.compiler.pipeline import compile_sql, compile_to_python
        from repro.data.model import Bag, Record
        from repro.obs import observe

        with observe() as session:
            result = compile_sql("select a from t where a > 1")
            query = compile_to_python(result.final)
            value = query({"t": Bag([Record({"a": 1}), Record({"a": 5})])})
        assert value == Bag([Record({"a": 5})])
        snapshot = session.metrics.snapshot()
        assert any(name.startswith("runtime.calls.") for name in snapshot["counters"])
        assert session.tracer.find("pipeline") is not None
        # teardown: globals restored
        from repro.obs.trace import NULL_TRACER, get_tracer

        assert get_tracer() is NULL_TRACER
