"""Tests for trace/metrics export (repro.obs.export)."""

import json

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    prometheus_text,
    text_report,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_tracer():
    tracer = Tracer()
    with tracer.span("outer", category="pipeline", stages=2):
        with tracer.span("inner"):
            tracer.instant("fire", rule="r1")
    return tracer


class TestChromeTrace:
    def test_span_events_are_complete_events(self):
        tracer = make_tracer()
        events = chrome_trace_events(tracer)
        spans = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["outer", "inner"]
        for event in spans:
            assert event["cat"]
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1
            assert event["tid"]
        outer = spans[0]
        assert outer["args"] == {"stages": 2}

    def test_instant_events(self):
        tracer = make_tracer()
        events = chrome_trace_events(tracer)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "fire"
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"rule": "r1"}
        assert "dur" not in instants[0]

    def test_orphan_instants_exported(self):
        tracer = Tracer()
        tracer.instant("lonely")
        names = [e["name"] for e in chrome_trace_events(tracer)]
        assert names == ["lonely"]

    def test_document_shape_and_json_round_trip(self):
        tracer = make_tracer()
        metrics = MetricsRegistry()
        metrics.counter("c").inc(3)
        document = chrome_trace(tracer, metrics)
        assert document["displayTimeUnit"] == "ms"
        reloaded = json.loads(json.dumps(document))
        assert [e["name"] for e in reloaded["traceEvents"]] == ["outer", "inner", "fire"]
        assert reloaded["otherData"]["metrics"]["counters"]["c"] == 3

    def test_rich_args_become_reprs(self):
        tracer = Tracer()
        with tracer.span("s", payload=object(), flag=True, none=None):
            pass
        (event,) = chrome_trace_events(tracer)
        assert isinstance(event["args"]["payload"], str)
        assert event["args"]["flag"] is True
        assert event["args"]["none"] is None
        json.dumps(event)

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(str(path), make_tracer(), MetricsRegistry())
        with open(str(path)) as handle:
            document = json.load(handle)
        assert document["traceEvents"]


class TestTextReport:
    def test_span_tree_and_metrics_sections(self):
        tracer = make_tracer()
        metrics = MetricsRegistry()
        metrics.counter("eval.nodes.Map").inc(4)
        metrics.gauge("eval.max_env_depth").track_max(3)
        metrics.histogram("eval.bag_size").record(10)
        report = text_report(tracer, metrics)
        assert "trace:" in report
        assert "outer" in report and "inner" in report
        assert "ms" in report
        assert "counters:" in report
        assert "eval.nodes.Map" in report
        assert "gauges:" in report
        assert "histograms:" in report
        assert "count=1" in report

    def test_zero_instruments_are_suppressed(self):
        metrics = MetricsRegistry()
        metrics.counter("never.fired")  # created but zero
        metrics.histogram("empty.hist")
        report = text_report(None, metrics)
        assert "never.fired" not in report
        assert "empty.hist" not in report

    def test_empty_report_placeholder(self):
        assert "no observability data" in text_report(None, None)
        assert "no observability data" in text_report(Tracer(), MetricsRegistry())

    def test_histogram_line_carries_quantiles(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("eval.bag_size")
        for value in range(1, 101):
            hist.record(value)
        report = text_report(None, metrics)
        (line,) = [l for l in report.splitlines() if "eval.bag_size" in l]
        assert "p50=" in line and "p95=" in line and "p99=" in line
        # quantiles are rendered as numbers, not the "-" placeholder
        assert "p50=-" not in line


class TestPrometheus:
    def test_counter_becomes_total_with_type_line(self):
        metrics = MetricsRegistry()
        metrics.counter("engine.join").inc(3)
        text = prometheus_text(metrics)
        assert "# TYPE repro_engine_join_total counter\n" in text
        assert "\nrepro_engine_join_total 3\n" in "\n" + text

    def test_gauge_exported_numeric_only(self):
        metrics = MetricsRegistry()
        metrics.gauge("depth").set(4)
        metrics.gauge("label").set("q3")  # non-numeric: skipped
        text = prometheus_text(metrics)
        assert "repro_depth 4" in text
        assert "label" not in text

    def test_histogram_becomes_summary(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("service.execute.seconds")
        for value in (1, 2, 3, 4, 100):
            hist.record(value)
        text = prometheus_text(metrics)
        metric = "repro_service_execute_seconds"
        assert "# TYPE %s summary" % metric in text
        for label in ("0.5", "0.95", "0.99"):
            assert '%s{quantile="%s"} ' % (metric, label) in text
        assert "%s_sum 110" % metric in text
        assert "%s_count 5" % metric in text

    def test_names_are_sanitized(self):
        metrics = MetricsRegistry()
        metrics.counter("engine.fallback.env-not-record").inc()
        text = prometheus_text(metrics)
        assert "repro_engine_fallback_env_not_record_total 1" in text

    def test_empty_registry_placeholder(self):
        assert prometheus_text(MetricsRegistry()) == "# (no metrics recorded)\n"

    def test_every_family_has_help_and_type(self):
        from tests.promtext import parse_prometheus

        metrics = MetricsRegistry()
        metrics.counter("service.execute.ok").inc()
        metrics.gauge("depth").set(2)
        metrics.histogram("latency_ms").record(3)
        families = parse_prometheus(prometheus_text(metrics))
        for family in families.values():
            assert family.help is not None
        # the HELP line names the originating instrument
        assert "service.execute.ok" in families["repro_service_execute_ok_total"].help

    def test_histogram_renders_cumulative_le_buckets(self):
        from tests.promtext import parse_prometheus

        metrics = MetricsRegistry()
        hist = metrics.histogram("sizes")
        for value in (1, 2, 3, 4, 100):
            hist.record(value)
        families = parse_prometheus(prometheus_text(metrics))
        buckets = families["repro_sizes_buckets"]
        assert buckets.kind == "histogram"
        # power-of-two buckets cumulate exactly: ≤1:1, ≤2:2, ≤4:4, ≤128:5
        assert buckets.sample_value("_bucket", le="1") == 1
        assert buckets.sample_value("_bucket", le="2") == 2
        assert buckets.sample_value("_bucket", le="4") == 4
        assert buckets.sample_value("_bucket", le="128") == 5
        assert buckets.sample_value("_bucket", le="+Inf") == 5
        assert buckets.sample_value("_sum") == 110
        assert buckets.sample_value("_count") == 5

    def test_colliding_sanitized_names_stay_distinct(self):
        from tests.promtext import parse_prometheus

        metrics = MetricsRegistry()
        metrics.counter("a.b").inc(1)
        metrics.counter("a_b").inc(2)
        text = prometheus_text(metrics)
        families = parse_prometheus(text)
        assert "repro_a_b_total" in families
        assert "repro_a_b_total_2" in families
        values = sorted(
            family.sample_value() for name, family in families.items() if name.startswith("repro_a_b")
        )
        assert values == [1, 2]
        # deterministic: same registry renders identically
        assert text == prometheus_text(metrics)

    def test_exposition_lines_parse(self):
        from tests.promtext import parse_prometheus

        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.gauge("g").set(2)
        metrics.histogram("h").record(3)
        families = parse_prometheus(prometheus_text(metrics))
        assert families["repro_c_total"].sample_value() == 1
        assert families["repro_g"].sample_value() == 2
        assert families["repro_h"].kind == "summary"
        assert families["repro_h"].sample_value("_count") == 1
        assert families["repro_h_buckets"].kind == "histogram"

    def test_output_is_deterministic(self):
        metrics = MetricsRegistry()
        metrics.counter("b").inc()
        metrics.counter("a").inc()
        text = prometheus_text(metrics)
        assert text.index("repro_a_total") < text.index("repro_b_total")
        assert text == prometheus_text(metrics)
