"""Tests for trace/metrics export (repro.obs.export)."""

import json

from repro.obs.export import chrome_trace, chrome_trace_events, text_report, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_tracer():
    tracer = Tracer()
    with tracer.span("outer", category="pipeline", stages=2):
        with tracer.span("inner"):
            tracer.instant("fire", rule="r1")
    return tracer


class TestChromeTrace:
    def test_span_events_are_complete_events(self):
        tracer = make_tracer()
        events = chrome_trace_events(tracer)
        spans = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["outer", "inner"]
        for event in spans:
            assert event["cat"]
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1
            assert event["tid"]
        outer = spans[0]
        assert outer["args"] == {"stages": 2}

    def test_instant_events(self):
        tracer = make_tracer()
        events = chrome_trace_events(tracer)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "fire"
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"rule": "r1"}
        assert "dur" not in instants[0]

    def test_orphan_instants_exported(self):
        tracer = Tracer()
        tracer.instant("lonely")
        names = [e["name"] for e in chrome_trace_events(tracer)]
        assert names == ["lonely"]

    def test_document_shape_and_json_round_trip(self):
        tracer = make_tracer()
        metrics = MetricsRegistry()
        metrics.counter("c").inc(3)
        document = chrome_trace(tracer, metrics)
        assert document["displayTimeUnit"] == "ms"
        reloaded = json.loads(json.dumps(document))
        assert [e["name"] for e in reloaded["traceEvents"]] == ["outer", "inner", "fire"]
        assert reloaded["otherData"]["metrics"]["counters"]["c"] == 3

    def test_rich_args_become_reprs(self):
        tracer = Tracer()
        with tracer.span("s", payload=object(), flag=True, none=None):
            pass
        (event,) = chrome_trace_events(tracer)
        assert isinstance(event["args"]["payload"], str)
        assert event["args"]["flag"] is True
        assert event["args"]["none"] is None
        json.dumps(event)

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(str(path), make_tracer(), MetricsRegistry())
        with open(str(path)) as handle:
            document = json.load(handle)
        assert document["traceEvents"]


class TestTextReport:
    def test_span_tree_and_metrics_sections(self):
        tracer = make_tracer()
        metrics = MetricsRegistry()
        metrics.counter("eval.nodes.Map").inc(4)
        metrics.gauge("eval.max_env_depth").track_max(3)
        metrics.histogram("eval.bag_size").record(10)
        report = text_report(tracer, metrics)
        assert "trace:" in report
        assert "outer" in report and "inner" in report
        assert "ms" in report
        assert "counters:" in report
        assert "eval.nodes.Map" in report
        assert "gauges:" in report
        assert "histograms:" in report
        assert "count=1" in report

    def test_zero_instruments_are_suppressed(self):
        metrics = MetricsRegistry()
        metrics.counter("never.fired")  # created but zero
        metrics.histogram("empty.hist")
        report = text_report(None, metrics)
        assert "never.fired" not in report
        assert "empty.hist" not in report

    def test_empty_report_placeholder(self):
        assert "no observability data" in text_report(None, None)
        assert "no observability data" in text_report(Tracer(), MetricsRegistry())
