"""Tests for the span tracer (repro.obs.trace)."""

import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SamplingPolicy,
    TraceRing,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]

    def test_timing_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.seconds >= inner.seconds >= 0.0
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_args_and_note(self):
        tracer = Tracer()
        with tracer.span("work", category="test", items=3) as span:
            span.note(cost=7)
        span = tracer.roots[0]
        assert span.category == "test"
        assert span.args == {"items": 3, "cost": 7}

    def test_instants_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("fire", rule="r1")
        assert [i.name for i in tracer.roots[0].instants] == ["fire"]
        assert tracer.roots[0].instants[0].args == {"rule": "r1"}

    def test_orphan_instant(self):
        tracer = Tracer()
        tracer.instant("lonely")
        assert [i.name for i in tracer.orphan_instants] == ["lonely"]

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert tracer.find("c") is not None
        assert tracer.find("missing") is None
        assert [s.name for s in tracer.spans()] == ["a", "b", "c"]

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
        assert tracer.current is None

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer.roots) == 1
        assert tracer.roots[0].end >= tracer.roots[0].start
        assert tracer.current is None


class TestThreadLocality:
    def test_threads_get_separate_roots(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread_root"):
                with tracer.span("thread_child"):
                    pass
            done.set()

        with tracer.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            done.wait()
        names = sorted(root.name for root in tracer.roots)
        assert names == ["main_root", "thread_root"]
        main = tracer.find("main_root")
        # The worker's spans never landed inside the main thread's span.
        assert [c.name for c in main.children] == []
        worker_root = tracer.find("thread_root")
        assert [c.name for c in worker_root.children] == ["thread_child"]
        assert worker_root.tid != main.tid


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_is_shared_noop(self):
        a = NULL_TRACER.span("x", category="c", k=1)
        b = NULL_TRACER.span("y")
        assert a is b  # one shared object: no allocation per span
        with a as span:
            span.note(cost=1)
        assert NULL_TRACER.current is None
        assert list(NULL_TRACER.spans()) == []
        assert NULL_TRACER.find("x") is None
        NULL_TRACER.instant("ignored")
        assert NULL_TRACER.total_seconds() == 0.0

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a"):
            pass
        assert tracer.roots == []


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_reset(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        tracer = Tracer()
        try:
            with use_tracer(tracer):
                raise ValueError
        except ValueError:
            pass
        assert get_tracer() is NULL_TRACER


class TestSamplingPolicy:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(rate=-0.1)
        with pytest.raises(ValueError):
            SamplingPolicy(rate=1.5)

    def test_rate_zero_head_is_exactly_never(self):
        policy = SamplingPolicy(rate=0.0)
        assert not any(policy.head() for _ in range(1000))

    def test_rate_one_head_is_exactly_always(self):
        policy = SamplingPolicy(rate=1.0)
        assert all(policy.head() for _ in range(1000))

    def test_fractional_rate_is_probabilistic(self):
        policy = SamplingPolicy(rate=0.5, seed=42)
        kept = sum(policy.head() for _ in range(2000))
        assert 800 < kept < 1200

    def test_seed_pins_the_coin(self):
        flips = lambda: [SamplingPolicy(rate=0.3, seed=7).head() for _ in range(50)]
        assert flips() == flips()

    def test_slow_always_kept_regardless_of_head(self):
        policy = SamplingPolicy(rate=0.0)
        assert policy.keep(head_sampled=False, slow=True, ok=True)

    def test_errors_always_kept_regardless_of_head(self):
        policy = SamplingPolicy(rate=0.0)
        assert policy.keep(head_sampled=False, slow=False, ok=False)

    def test_head_sampled_kept_even_when_fast_and_ok(self):
        policy = SamplingPolicy(rate=0.0)
        assert policy.keep(head_sampled=True, slow=False, ok=True)

    def test_unsampled_fast_ok_dropped(self):
        policy = SamplingPolicy(rate=1.0)
        assert not policy.keep(head_sampled=False, slow=False, ok=True)

    def test_keep_slow_and_keep_errors_can_be_disabled(self):
        policy = SamplingPolicy(rate=0.0, keep_slow=False, keep_errors=False)
        assert not policy.keep(head_sampled=False, slow=True, ok=True)
        assert not policy.keep(head_sampled=False, slow=False, ok=False)

    def test_describe(self):
        assert SamplingPolicy(rate=0.25).describe() == {
            "rate": 0.25,
            "keep_slow": True,
            "keep_errors": True,
        }


class TestTraceRing:
    def fragment(self, query_id):
        return {"query_id": query_id, "events": []}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRing(0)

    def test_add_get_recent(self):
        ring = TraceRing(4)
        for index in range(3):
            ring.add("q%d" % index, self.fragment("q%d" % index))
        assert ring.get("q1")["query_id"] == "q1"
        assert ring.get("missing") is None
        assert [f["query_id"] for f in ring.recent()] == ["q0", "q1", "q2"]
        assert [f["query_id"] for f in ring.recent(2)] == ["q1", "q2"]

    def test_eviction_is_oldest_first(self):
        ring = TraceRing(2)
        for index in range(4):
            ring.add("q%d" % index, self.fragment("q%d" % index))
        assert ring.get("q0") is None
        assert ring.get("q1") is None
        assert [f["query_id"] for f in ring.recent()] == ["q2", "q3"]

    def test_counters(self):
        ring = TraceRing(2)
        ring.add("a", self.fragment("a"))
        ring.drop()
        ring.drop()
        description = ring.describe()
        assert description["kept"] == 1
        assert description["dropped"] == 2
        assert description["held"] == 1
        assert description["capacity"] == 2

    def test_kept_counts_survive_eviction(self):
        ring = TraceRing(1)
        ring.add("a", self.fragment("a"))
        ring.add("b", self.fragment("b"))
        description = ring.describe()
        assert description["kept"] == 2
        assert description["held"] == 1
