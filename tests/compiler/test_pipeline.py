"""Tests for the compiler driver (pipelines, timings, metrics)."""

import pytest

from repro.compiler.metrics import describe, query_depth, query_size
from repro.compiler.pipeline import (
    CompilationResult,
    compile_camp,
    compile_camp_to_nra_via_nraenv,
    compile_camp_via_nra,
    compile_lnra,
    compile_oql,
    compile_sql,
    run_pipeline,
)
from repro.data.model import Record, bag, rec
from repro.nnrc.eval import eval_nnrc
from repro.nra import eval_nra, is_nra


class TestRunPipeline:
    def test_stages_executed_in_order(self):
        result = run_pipeline(1, [("inc", lambda x: x + 1), ("dbl", lambda x: x * 2)])
        assert result.final == 4
        assert [s.name for s in result.stages] == ["inc", "dbl"]

    def test_timings_recorded(self):
        result = run_pipeline(1, [("inc", lambda x: x + 1)])
        assert result.seconds("inc") >= 0.0
        assert result.total_seconds >= 0.0
        assert result.timings() == {"inc": result.seconds("inc")}

    def test_unknown_stage_raises(self):
        result = run_pipeline(1, [("inc", lambda x: x + 1)])
        with pytest.raises(KeyError):
            result.stage("nope")


class TestCampPipelines:
    def test_compile_camp_end_to_end(self, camp_programs):
        program = camp_programs["p03"]
        result = compile_camp(program.pattern)
        nnrc = result.final
        got = eval_nnrc(
            nnrc,
            {"d0": program.world, "e0": Record({})},
            {"WORLD": program.world},
        )
        assert got == bag(program.run())

    def test_compile_camp_via_nra_agrees(self, camp_programs):
        program = camp_programs["p06"]
        direct = compile_camp(program.pattern)
        via_nra = compile_camp_via_nra(program.pattern)
        env = {"d0": program.world, "e0": Record({})}
        # The NRA path encodes the two inputs as one record.
        from repro.translate.camp_to_nra import encode_input

        nra_env = {"d0": encode_input(Record({}), program.world)}
        constants = {"WORLD": program.world}
        assert eval_nnrc(direct.final, env, constants) == eval_nnrc(
            via_nra.final, nra_env, constants
        )

    def test_camp_to_nra_via_nraenv_produces_pure_nra(self, camp_programs):
        program = camp_programs["p02"]
        result = compile_camp_to_nra_via_nraenv(program.pattern)
        assert is_nra(result.final)
        from repro.translate.camp_to_nra import encode_input

        got = eval_nra(
            result.final,
            encode_input(Record({}), program.world),
            {"WORLD": program.world},
        )
        assert got == bag(program.run())

    def test_figure9_size_gap(self, camp_programs):
        """Through-NRAe NRA plans are much smaller than direct ones."""
        program = camp_programs["p01"]
        direct = compile_camp_via_nra(program.pattern)
        through = compile_camp_to_nra_via_nraenv(program.pattern)
        assert through.output("nra_opt").size() < direct.output("nra_opt").size()


class TestFrontendPipelines:
    def test_compile_sql(self):
        result = compile_sql("select a from t where a > 1")
        assert [s.name for s in result.stages] == [
            "parse", "to_nraenv", "nraenv_opt", "to_nnrc", "nnrc_opt",
        ]
        got = eval_nnrc(
            result.final,
            {"d0": None, "e0": Record({})},
            {"t": bag(rec(a=1), rec(a=2))},
        )
        assert got == bag(rec(a=2))

    def test_compile_oql(self):
        result = compile_oql("select p.a from p in t where p.a > 1")
        got = eval_nnrc(
            result.final,
            {"d0": None, "e0": Record({})},
            {"t": bag(rec(a=1), rec(a=2))},
        )
        assert got == bag(2)

    def test_compile_lnra(self):
        from repro.data.operators import OpDot
        from repro.lambda_nra import Lambda, LMap, LTable, LUnop, LVar

        expr = LMap(Lambda("x", LUnop(OpDot("a"), LVar("x"))), LTable("t"))
        result = compile_lnra(expr)
        got = eval_nnrc(
            result.final,
            {"d0": None, "e0": Record({})},
            {"t": bag(rec(a=5))},
        )
        assert got == bag(5)


class TestMetrics:
    def test_uniform_accessors(self):
        result = compile_sql("select a from t")
        plan = result.output("to_nraenv")
        assert describe(plan) == {"size": plan.size(), "depth": plan.depth()}
        assert query_size(plan) == plan.size()
        assert query_depth(plan) == plan.depth()

    def test_repr(self):
        result = compile_sql("select a from t")
        assert "parse" in repr(result)
