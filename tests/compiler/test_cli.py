"""Tests for the command-line interface."""

import io
import json
import re

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCompile:
    def test_metrics_default(self):
        code, output = run_cli(
            ["compile", "--language", "sql", "--query", "select a from t"]
        )
        assert code == 0
        assert "sizes: NRAe" in output
        assert "times:" in output

    def test_show_all(self):
        code, output = run_cli(
            ["compile", "--query", "select a from t where a > 1", "--show", "all"]
        )
        assert code == 0
        assert "NRAe:" in output
        assert "NNRC:" in output
        assert "def query(" in output
        assert "function query(" in output

    def test_lnra(self):
        code, output = run_cli(
            [
                "compile",
                "--language",
                "lnra",
                "--query",
                r"map(\p -> p.a)(t)",
                "--show",
                "opt",
            ]
        )
        assert code == 0
        assert "χ⟨In.a⟩($t)" in output

    def test_oql(self):
        code, output = run_cli(
            ["compile", "--language", "oql", "--query", "select p.a from p in t", "--show", "opt"]
        )
        assert code == 0
        assert "NRAe optimized:" in output

    def test_run_with_data_file(self, tmp_path):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"t": [{"a": 1}, {"a": 5}]}))
        code, output = run_cli(
            [
                "compile",
                "--query",
                "select a from t where a > 2",
                "--run",
                "--data",
                str(data),
            ]
        )
        assert code == 0
        assert '"a": 5' in output

    def test_query_from_file(self, tmp_path):
        query_file = tmp_path / "q.sql"
        query_file.write_text("select a from t")
        code, output = run_cli(["compile", "--file", str(query_file)])
        assert code == 0

    def test_bad_data_shape(self, tmp_path):
        data = tmp_path / "db.json"
        data.write_text("[1, 2]")
        code, output = run_cli(
            ["compile", "--query", "select a from t", "--run", "--data", str(data)]
        )
        assert code == 2
        assert "must be a JSON object" in output

    def test_missing_data_file_one_line_error(self):
        code, output = run_cli(
            [
                "compile",
                "--query",
                "select a from t",
                "--run",
                "--data",
                "/no/such/file.json",
            ]
        )
        assert code == 2
        error_lines = [l for l in output.splitlines() if l.startswith("repro:")]
        assert len(error_lines) == 1
        assert "cannot read --data file" in error_lines[0]
        assert "Traceback" not in output

    def test_malformed_data_file_one_line_error(self, tmp_path):
        data = tmp_path / "bad.json"
        data.write_text("{oops")
        code, output = run_cli(
            ["compile", "--query", "select a from t", "--run", "--data", str(data)]
        )
        assert code == 2
        assert "malformed JSON in --data file" in output
        assert "Traceback" not in output


class TestTpch:
    def test_metrics(self):
        code, output = run_cli(["tpch", "q6"])
        assert code == 0
        assert "sizes: NRAe" in output

    def test_run(self):
        code, output = run_cli(["tpch", "q6", "--run"])
        assert code == 0
        assert "revenue" in output

    def test_unknown_query(self):
        code, output = run_cli(["tpch", "q99"])
        assert code == 2
        assert "unknown TPC-H query" in output


def parse_rule_totals(section):
    """The ``  %4dx rule_name`` lines under ``rule totals:``."""
    return {
        match.group(2): int(match.group(1))
        for match in re.finditer(r"^\s+(\d+)x (\S+)$", section, re.MULTILINE)
    }


class TestTraceAndProfile:
    def test_trace_writes_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "out.trace.json"
        code, output = run_cli(
            ["compile", "--query", "select a from t where a > 1", "--trace", str(path)]
        )
        assert code == 0
        assert "trace written to" in output
        with open(str(path)) as handle:
            document = json.load(handle)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert "name" in event and "ph" in event and "ts" in event
        complete = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        # The pipeline and its stages appear as complete events.
        assert "pipeline" in names
        assert {"parse", "to_nraenv", "nraenv_opt", "to_nnrc", "nnrc_opt"} <= names
        for event in complete:
            assert event["dur"] >= 0

    def test_trace_includes_metrics_dump(self, tmp_path):
        path = tmp_path / "out.trace.json"
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"t": [{"a": 1}, {"a": 5}]}))
        code, _ = run_cli(
            [
                "compile",
                "--query",
                "select a from t where a > 2",
                "--run",
                "--data",
                str(data),
                "--trace",
                str(path),
            ]
        )
        assert code == 0
        with open(str(path)) as handle:
            document = json.load(handle)
        counters = document["otherData"]["metrics"]["counters"]
        assert any(name.startswith("runtime.calls.") and count for name, count in counters.items())

    def test_profile_prints_span_tree(self):
        code, output = run_cli(
            ["compile", "--query", "select a from t", "--profile"]
        )
        assert code == 0
        assert "trace:" in output
        assert "pipeline" in output
        assert "nraenv_opt" in output
        assert "ms" in output

    def test_tpch_profile_shows_runtime_metrics(self):
        code, output = run_cli(["tpch", "q6", "--run", "--profile"])
        assert code == 0
        assert "counters:" in output
        assert "runtime.calls." in output
        assert "histograms:" in output


class TestExplain:
    def test_explain_prints_derivation(self):
        code, output = run_cli(["explain", "--query", "select a from t where a > 1"])
        assert code == 0
        assert "== NRAe optimizer (stage nraenv_opt) ==" in output
        assert "== NNRC optimizer (stage nnrc_opt) ==" in output
        assert "cost trajectory:" in output
        assert re.search(r"cost \d+ → \d+ in \d+ passes \(\w", output)

    def test_rule_totals_match_fire_counts(self):
        from repro.compiler.pipeline import compile_sql

        query = "select a from t where a > 1"
        code, output = run_cli(["explain", "--query", query, "--stage", "nraenv"])
        assert code == 0
        printed = parse_rule_totals(output)
        expected = compile_sql(query).optimize_result("nraenv_opt").fire_counts
        assert printed == expected
        assert printed  # the derivation is not empty for this query

    def test_explain_stage_filter(self):
        code, output = run_cli(
            ["explain", "--query", "select a from t", "--stage", "nnrc"]
        )
        assert code == 0
        assert "nnrc_opt" in output
        assert "nraenv_opt" not in output

    def test_explain_verbose_lists_attempts(self):
        code, output = run_cli(
            ["explain", "--query", "select a from t", "--verbose"]
        )
        assert code == 0
        assert "rule attempts (time):" in output
        assert "attempts" in output

    def test_explain_tpch(self):
        code, output = run_cli(["explain", "--tpch", "q6"])
        assert code == 0
        assert "== NRAe optimizer" in output
        assert "derivation" in output

    def test_explain_tpch_runs_join_engine(self):
        code, output = run_cli(["explain", "--tpch", "q3"])
        assert code == 0
        assert "== Join engine ==" in output
        assert re.search(r"hash joins executed: [1-9]", output)
        assert "fallbacks to reference semantics: none" in output

    def test_explain_without_data_skips_engine(self):
        code, output = run_cli(["explain", "--query", "select a from t"])
        assert code == 0
        assert "not exercised" in output

    def test_explain_unknown_tpch(self):
        code, output = run_cli(["explain", "--tpch", "q99"])
        assert code == 2
        assert "unknown TPC-H query" in output

    def test_explain_analyze_tpch(self):
        code, output = run_cli(["explain", "--tpch", "q3", "--analyze"])
        assert code == 0
        assert "== EXPLAIN ANALYZE (optimized NRAe, join engine) ==" in output
        assert "calls=" in output and "out=" in output and "self=" in output
        assert re.search(r"hash join x[1-9]", output)
        assert "== Cost-model calibration" in output
        assert "rank correlation" in output
        # the join-engine section reuses the analyzed run instead of
        # re-executing, so its counters reflect exactly one execution
        assert re.search(r"executed optimized NRAe plan: [1-9]\d* rows", output)
        assert re.search(r"hash joins executed: [1-9]", output)

    def test_explain_analyze_with_data_file(self, tmp_path):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"t": [{"a": 1}, {"a": 5}]}))
        code, output = run_cli(
            [
                "explain",
                "--query",
                "select a from t where a > 2",
                "--analyze",
                "--data",
                str(data),
            ]
        )
        assert code == 0
        assert "== EXPLAIN ANALYZE" in output
        assert "table(t)" in output

    def test_explain_analyze_without_data_exits_2(self):
        code, output = run_cli(["explain", "--query", "select a from t", "--analyze"])
        assert code == 2
        assert "--analyze needs data" in output

    def test_explain_tpch_bad_scale_name_exits_2(self):
        code, output = run_cli(["explain", "--tpch", "q6", "--data", "huge"])
        assert code == 2
        assert "names a generated scale" in output

    def test_explain_analyze_json(self):
        code, output = run_cli(
            ["explain", "--tpch", "q6", "--analyze", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(output)
        assert doc["ok"] is True
        assert doc["language"] == "sql"
        assert "lineitem" in doc["query"]
        assert doc["rows"] >= 1
        assert doc["analyze"]["nodes"] >= 1
        assert doc["analyze"]["peak_rows"] >= 1
        # the plan tree mirrors the operator tree with per-node stats
        assert "label" in doc["plan"] and "children" in doc["plan"]
        calibration = doc["calibration"]
        assert -1.0 <= calibration["spearman_rho"] <= 1.0
        for row in calibration["rows"]:
            assert {"operator", "cost", "out_rows", "self_seconds"} <= set(row)
        assert "joins" in doc["engine"]

    def test_explain_json_requires_analyze(self):
        code, output = run_cli(
            ["explain", "--tpch", "q6", "--format", "json"]
        )
        assert code == 2
        assert "--format json requires --analyze" in output

    def test_explain_json_runtime_error_is_structured(self, tmp_path):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"t": [{"a": 1}]}))
        code, output = run_cli(
            [
                "explain",
                "--query",
                "select a from missing",
                "--analyze",
                "--format",
                "json",
                "--data",
                str(data),
            ]
        )
        assert code == 1
        doc = json.loads(output)
        assert doc["ok"] is False
        assert "missing" in doc["error"]

    def test_explain_with_trace(self, tmp_path):
        path = tmp_path / "explain.trace.json"
        code, output = run_cli(
            ["explain", "--query", "select a from t", "--trace", str(path)]
        )
        assert code == 0
        with open(str(path)) as handle:
            document = json.load(handle)
        names = {e["name"] for e in document["traceEvents"]}
        assert "optimize" in names


class TestServe:
    def run_serve(self, monkeypatch, lines, extra_args=()):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        code, output = run_cli(["serve", *extra_args])
        return code, [json.loads(l) for l in output.splitlines() if l.startswith("{")]

    def test_register_prepare_execute(self, monkeypatch):
        code, responses = self.run_serve(
            monkeypatch,
            [
                json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}, {"a": 5}]}),
                json.dumps({"op": "prepare", "query": "select a from t where a > $x"}),
                json.dumps({"op": "execute", "handle": "q1", "params": {"x": 2}}),
                json.dumps({"op": "shutdown"}),
            ],
        )
        assert code == 0
        assert responses[0]["ok"] and responses[1]["ok"]
        assert responses[2]["result"] == [{"a": 5}]

    def test_preload_data(self, monkeypatch, tmp_path):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"t": [{"a": 7}]}))
        code, responses = self.run_serve(
            monkeypatch,
            [json.dumps({"op": "query", "query": "select a from t"})],
            extra_args=["--data", str(db)],
        )
        assert code == 0
        assert responses[0]["result"] == [{"a": 7}]

    def test_bad_preload_file_exits_2(self, monkeypatch):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(""))
        code, output = run_cli(["serve", "--data", "/no/such.json"])
        assert code == 2
        assert "cannot read" in output

    def test_metrics_op_over_the_wire(self, monkeypatch):
        code, responses = self.run_serve(
            monkeypatch,
            [
                json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}]}),
                json.dumps({"op": "query", "query": "select a from t"}),
                json.dumps({"op": "metrics"}),
            ],
        )
        assert code == 0
        metrics = responses[2]
        assert metrics["ok"]
        assert "repro_service_execute_ok_total" in metrics["prometheus"]

    def test_slow_query_flag_feeds_telemetry(self, monkeypatch):
        code, responses = self.run_serve(
            monkeypatch,
            [
                json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}]}),
                json.dumps({"op": "query", "query": "select a from t"}),
                json.dumps({"op": "telemetry", "slow": True}),
            ],
            extra_args=["--slow-query", "0", "--telemetry-capacity", "4"],
        )
        assert code == 0
        telemetry = responses[2]
        assert telemetry["ok"]
        assert telemetry["telemetry"]["capacity"] == 4
        assert len(telemetry["queries"]) == 1
        assert telemetry["queries"][0]["slow"] is True

    def test_query_log_flag_writes_audit_events(self, monkeypatch, tmp_path):
        from repro.obs.log import read_events

        log_path = tmp_path / "query.log"
        code, responses = self.run_serve(
            monkeypatch,
            [
                json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}]}),
                json.dumps({"op": "query", "query": "select a from t"}),
                json.dumps({"op": "query", "query": "select a from missing"}),
            ],
            extra_args=["--query-log", str(log_path)],
        )
        assert code == 0
        events = read_events(str(log_path))
        kinds = [e["event"] for e in events]
        assert kinds.count("query") == 2
        assert kinds.count("error") == 1
        audits = [e for e in events if e["event"] == "query"]
        # each audit event correlates with its wire response by query_id
        wire_ids = [r["query_id"] for r in responses[1:]]
        assert [a["query_id"] for a in audits] == wire_ids

    def test_trace_sample_flag(self, monkeypatch):
        code, responses = self.run_serve(
            monkeypatch,
            [
                json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}]}),
                json.dumps({"op": "query", "query": "select a from t"}),
                json.dumps({"op": "traces"}),
            ],
            extra_args=["--trace-sample", "1.0"],
        )
        assert code == 0
        traces = responses[2]
        assert traces["ok"] and traces["kept"] == 1

    def test_negative_trace_sample_disables_tracing(self, monkeypatch):
        code, responses = self.run_serve(
            monkeypatch,
            [
                json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}]}),
                json.dumps({"op": "query", "query": "select a from t"}),
                json.dumps({"op": "traces"}),
            ],
            extra_args=["--trace-sample", "-1"],
        )
        assert code == 0
        traces = responses[2]
        assert traces["kept"] == 0 and traces["dropped"] == 0

    def test_obs_port_serves_while_loop_runs(self, monkeypatch, capsys):
        """--obs-port 0 binds an ephemeral sidecar announced on stderr;
        it answers probes while the JSON-lines loop is live."""
        import re
        import sys
        import urllib.request

        probed = {}

        class ProbingStdin:
            """Feeds the wire loop, probing the sidecar between lines."""

            def __iter__(self):
                yield json.dumps({"op": "register", "table": "t", "rows": [{"a": 1}]}) + "\n"
                yield json.dumps({"op": "query", "query": "select a from t"}) + "\n"
                banner = capsys.readouterr().err
                match = re.search(r"obs endpoint on http://127\.0\.0\.1:(\d+)", banner)
                assert match, banner
                base = "http://127.0.0.1:%s" % match.group(1)
                for path in ("/healthz", "/metrics"):
                    with urllib.request.urlopen(base + path, timeout=10.0) as response:
                        probed[path] = response.read().decode("utf-8")
                yield json.dumps({"op": "shutdown"}) + "\n"

        monkeypatch.setattr(sys, "stdin", ProbingStdin())
        code, output = run_cli(["serve", "--obs-port", "0"])
        assert code == 0
        assert probed["/healthz"] == "ok\n"
        assert "repro_service_execute_ok_total" in probed["/metrics"]

    def test_errors_do_not_kill_loop(self, monkeypatch):
        code, responses = self.run_serve(
            monkeypatch,
            [
                "not json",
                json.dumps({"op": "query", "query": "selec oops"}),
                json.dumps({"op": "query", "query": "select a from t"}),
            ],
        )
        assert code == 0
        kinds = [r.get("error", {}).get("kind") for r in responses]
        assert kinds == ["bad_request", "compile_error", "runtime_error"]
