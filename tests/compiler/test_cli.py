"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCompile:
    def test_metrics_default(self):
        code, output = run_cli(
            ["compile", "--language", "sql", "--query", "select a from t"]
        )
        assert code == 0
        assert "sizes: NRAe" in output
        assert "times:" in output

    def test_show_all(self):
        code, output = run_cli(
            ["compile", "--query", "select a from t where a > 1", "--show", "all"]
        )
        assert code == 0
        assert "NRAe:" in output
        assert "NNRC:" in output
        assert "def query(" in output
        assert "function query(" in output

    def test_lnra(self):
        code, output = run_cli(
            [
                "compile",
                "--language",
                "lnra",
                "--query",
                r"map(\p -> p.a)(t)",
                "--show",
                "opt",
            ]
        )
        assert code == 0
        assert "χ⟨In.a⟩($t)" in output

    def test_oql(self):
        code, output = run_cli(
            ["compile", "--language", "oql", "--query", "select p.a from p in t", "--show", "opt"]
        )
        assert code == 0
        assert "NRAe optimized:" in output

    def test_run_with_data_file(self, tmp_path):
        data = tmp_path / "db.json"
        data.write_text(json.dumps({"t": [{"a": 1}, {"a": 5}]}))
        code, output = run_cli(
            [
                "compile",
                "--query",
                "select a from t where a > 2",
                "--run",
                "--data",
                str(data),
            ]
        )
        assert code == 0
        assert '"a": 5' in output

    def test_query_from_file(self, tmp_path):
        query_file = tmp_path / "q.sql"
        query_file.write_text("select a from t")
        code, output = run_cli(["compile", "--file", str(query_file)])
        assert code == 0

    def test_bad_data_shape(self, tmp_path):
        data = tmp_path / "db.json"
        data.write_text("[1, 2]")
        with pytest.raises(SystemExit):
            run_cli(
                ["compile", "--query", "select a from t", "--run", "--data", str(data)]
            )


class TestTpch:
    def test_metrics(self):
        code, output = run_cli(["tpch", "q6"])
        assert code == 0
        assert "sizes: NRAe" in output

    def test_run(self):
        code, output = run_cli(["tpch", "q6", "--run"])
        assert code == 0
        assert "revenue" in output

    def test_unknown_query(self):
        code, output = run_cli(["tpch", "q99"])
        assert code == 2
        assert "unknown TPC-H query" in output
