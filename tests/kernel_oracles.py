"""The seed's naive multiset loops, kept as *test-only* oracles.

These are the O(n·m) / O(n²) implementations the repository shipped
with before :mod:`repro.data.kernel` replaced them with keyed dict
operations.  They are deliberately slow and deliberately simple — a
bag-semantics specification by nested ``values_equal`` loops — and they
live under ``tests/`` only: the hypothesis law suite checks the kernel
against them, and ``benchmarks/bench_kernel.py`` times the kernel's
asymptotic win over them.  Nothing in ``src/`` may import this module.
"""

from __future__ import annotations

from typing import Any, List

from repro.data.model import Bag, Record, canonical_key, values_equal


def naive_union(left: Bag, right: Bag) -> Bag:
    return Bag(left.items + right.items)


def naive_minus(left: Bag, right: Bag) -> Bag:
    """Multiset difference by one-at-a-time linear matching."""
    remaining = list(right.items)
    kept: List[Any] = []
    for item in left.items:
        for i, candidate in enumerate(remaining):
            if values_equal(item, candidate):
                del remaining[i]
                break
        else:
            kept.append(item)
    return Bag(kept)


def naive_intersection(left: Bag, right: Bag) -> Bag:
    """Multiset intersection by one-at-a-time linear matching."""
    remaining = list(right.items)
    kept: List[Any] = []
    for item in left.items:
        for i, candidate in enumerate(remaining):
            if values_equal(item, candidate):
                del remaining[i]
                kept.append(item)
                break
    return Bag(kept)


def naive_contains(bag: Bag, value: Any) -> bool:
    return any(values_equal(value, item) for item in bag.items)


def naive_distinct(bag: Bag) -> Bag:
    """Duplicate elimination with a *list* of seen keys (O(n²))."""
    seen: List[tuple] = []
    kept: List[Any] = []
    for item in bag.items:
        key = canonical_key(item)
        if key not in seen:
            seen.append(key)
            kept.append(item)
    return Bag(kept)


def naive_equal(left: Bag, right: Bag) -> bool:
    """Multiset equality by sorted canonical-key comparison."""
    if len(left.items) != len(right.items):
        return False
    left_keys = sorted(canonical_key(v) for v in left.items)
    right_keys = sorted(canonical_key(v) for v in right.items)
    return left_keys == right_keys


def naive_compatible(left: Record, right: Record) -> bool:
    mine = dict(left.fields)
    for name, value in right.fields:
        if name in mine and not values_equal(mine[name], value):
            return False
    return True


def naive_merge_concat(left: Record, right: Record) -> Bag:
    if naive_compatible(left, right):
        return Bag([left.concat(right)])
    return Bag([])
