"""The engine's fallbacks are counted, per reason (`repro.obs` metrics).

`_execute_join` used to bail out to the reference semantics silently;
now every bail-out increments ``engine.fallback.<reason>`` and every
completed join increments ``engine.join``.  One test per reason in
:data:`repro.nraenv.exec.FALLBACK_REASONS`, each also asserting the
*answer* is still right — a fallback is a slow path, never a wrong one.
"""

import pytest

from repro.data.model import Bag, Record, bag, rec
from repro.nraenv import builders as b
from repro.nraenv.eval import eval_nraenv
from repro.nraenv.exec import FALLBACK_REASONS, _execute_join, eval_fast
from repro.obs.metrics import MetricsRegistry, use_metrics

DB = {
    "R": bag(rec(a=1, b=10), rec(a=2, b=20), rec(a=3, b=30)),
    "S": bag(rec(c=1, d="x"), rec(c=2, d="y"), rec(c=2, d="z")),
    # heterogeneous rows: some provide ``b``, some don't
    "H": bag(rec(c=1, b=2), rec(c=2)),
}


def counters(registry):
    return registry.snapshot()["counters"]


def run_counted(plan, env=None, constants=DB):
    env = env if env is not None else Record({})
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = eval_fast(plan, env, None, constants)
    assert result == eval_nraenv(plan, env, None, constants)
    return result, counters(registry)


def env_mode_pred(inner):
    """The SQL translator's row shape: ``inner ∘e (Env ⊕ In)``."""
    return b.appenv(inner, b.concat(b.env(), b.id_()))


class TestFallbackCounters:
    def test_join_success_counts_no_fallback(self):
        plan = b.sigma(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.product(b.table("R"), b.table("S")),
        )
        result, counts = run_counted(plan)
        assert len(result) == 3
        assert counts.get("engine.join") == 1
        assert not any(name.startswith("engine.fallback.") for name in counts)

    def test_single_factor(self):
        # unreachable through _eval (guarded on Product inputs), so hit
        # _execute_join directly: a Select over a plain table
        plan = b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.table("R"))
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert _execute_join(plan, Record({}), None, DB) is None
        assert counters(registry) == {"engine.fallback.single_factor": 1}

    def test_env_not_record(self):
        pred = env_mode_pred(b.eq(b.dot(b.env(), "a"), b.dot(b.env(), "c")))
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert _execute_join(plan, bag(1), None, DB) is None
        assert counters(registry) == {"engine.fallback.env_not_record": 1}

    def test_ambiguous_field(self):
        # the predicate reads ``b``, which R always provides but H only
        # sometimes does — the engine cannot tell whose ``b`` wins
        plan = b.sigma(
            b.gt(b.dot(b.id_(), "b"), b.const(1)),
            b.product(b.table("R"), b.table("H")),
        )
        result, counts = run_counted(plan)
        assert counts.get("engine.fallback.ambiguous_field") == 1
        assert "engine.join" not in counts
        assert len(result) == 6  # every ⊕-winning b (2, or R's ≥10) is > 1

    def test_unresolved_field(self):
        plan = b.sigma(
            b.eq(b.dot(b.id_(), "nope"), b.const(1)),
            b.product(b.table("R"), b.table("S")),
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert _execute_join(plan, Record({}), None, DB) is None
        assert counters(registry) == {"engine.fallback.unresolved_field": 1}

    def test_reasons_enumeration_is_exact(self):
        # keep FALLBACK_REASONS in sync with the _fallback call sites:
        # join reasons fire in _execute_join, group reasons in the
        # physical group-by path (_eval_plain / _execute_group_by), and
        # columnar reasons in the fused chain executor (_execute_fused)
        import inspect

        from repro.nraenv import exec as engine

        source = inspect.getsource(engine)
        called = set()
        for reason in FALLBACK_REASONS:
            if (
                '_fallback(select, "%s")' % reason in source
                or '_group_fallback(plan, "%s")' % reason in source
                or '_columnar_fallback(plan, "%s")' % reason in source
            ):
                called.add(reason)
        assert called == set(FALLBACK_REASONS)
        join_source = inspect.getsource(engine._execute_join)
        for reason in ("group_pattern", "group_shape"):
            assert '_fallback(select, "%s")' % reason not in join_source

    def test_labels_cover_all_reasons(self):
        from repro.nraenv.exec import FALLBACK_LABELS

        assert set(FALLBACK_LABELS) == set(FALLBACK_REASONS)

    def test_no_registry_means_no_op(self):
        plan = b.sigma(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.product(b.table("R"), b.table("S")),
        )
        # must not raise without an installed registry
        assert isinstance(eval_fast(plan, Record({}), None, DB), Bag)
