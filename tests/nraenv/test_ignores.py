"""Unit + property tests for the Ie/Ii predicates (paper §3.3).

Soundness is the property that matters: whenever ``ignores_env(q)``
holds, evaluation must be invariant under the environment (and dually
for ``ignores_id``).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import bag, rec, values_equal
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.nraenv.ignores import ignores_env, ignores_id
from repro.optim.verify import gen_plan, random_constants, random_datum


class TestIgnoresEnv:
    def test_leaves(self):
        assert ignores_env(b.id_())
        assert ignores_env(b.const(1))
        assert ignores_env(b.table("T"))
        assert not ignores_env(b.env())

    def test_mapenv_reads_env(self):
        assert not ignores_env(b.chie(b.const(1)))

    def test_appenv_shields_after(self):
        # q2 ∘e q1 ignores the env as soon as q1 does — even if q2 reads Env.
        plan = b.appenv(b.dot(b.env(), "x"), b.const(rec(x=1)))
        assert ignores_env(plan)

    def test_appenv_with_env_reading_before(self):
        plan = b.appenv(b.const(1), b.env())
        assert not ignores_env(plan)

    def test_map_body_env_counts(self):
        assert not ignores_env(b.chi(b.env(), b.const(bag(1))))


class TestIgnoresId:
    def test_leaves(self):
        assert not ignores_id(b.id_())
        assert ignores_id(b.const(1))
        assert ignores_id(b.env())
        assert ignores_id(b.table("T"))

    def test_app_shields_after(self):
        # q1 ∘ q2 ignores the input as soon as q2 does.
        plan = b.comp(b.dot(b.id_(), "x"), b.const(rec(x=1)))
        assert ignores_id(plan)

    def test_map_shields_body(self):
        # The body's In is the bag element, not the outer input.
        plan = b.chi(b.id_(), b.table("T"))
        assert ignores_id(plan)

    def test_map_over_id_reads_input(self):
        assert not ignores_id(b.chi(b.const(1), b.id_()))

    def test_appenv_needs_both(self):
        assert not ignores_id(b.appenv(b.id_(), b.env()))
        assert not ignores_id(b.appenv(b.env(), b.id_()))
        assert ignores_id(b.appenv(b.env(), b.env()))


_FAILED = object()


def _run(plan, env, datum, constants):
    try:
        return eval_nraenv(plan, env, datum, constants)
    except EvalError:
        return _FAILED


def _same_outcome(first, second) -> bool:
    if first is _FAILED or second is _FAILED:
        return first is second
    return values_equal(first, second)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_ignores_env_soundness(seed):
    """If Ie(q), evaluation does not depend on the environment."""
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=2)
    if not ignores_env(plan):
        return
    datum = random_datum(rng)
    constants = random_constants(rng)
    environments = [rec(a=0, u=0), rec(a=5, u=5), bag(rec(a=1, u=1)), 42]
    baseline = _run(plan, environments[0], datum, constants)
    for env in environments[1:]:
        assert _same_outcome(baseline, _run(plan, env, datum, constants))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_ignores_id_soundness(seed):
    """If Ii(q), evaluation does not depend on the input datum."""
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=2)
    if not ignores_id(plan):
        return
    env = rec(a=1, u=2)
    constants = random_constants(rng)
    data = [rec(a=0, b=0), rec(a=5, b=5), bag(), "weird", None]
    baseline = _run(plan, env, data[0], constants)
    for datum in data[1:]:
        assert _same_outcome(baseline, _run(plan, env, datum, constants))
