"""Tests for the join execution engine (`repro.nraenv.exec`).

The contract: wherever the reference evaluator succeeds, the engine
returns the same bag — checked on hand-built join shapes (including the
tricky ones: self-joins, correlated subqueries in predicates, whole-row
predicates) and on random plans.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, Record, bag, rec, values_equal
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.nraenv.exec import _analyse_conjunct, _equality_key, eval_fast
from repro.optim.verify import (
    gen_plan,
    random_constants,
    random_datum,
    random_environment,
)

DB = {
    "R": bag(rec(a=1, b=10), rec(a=2, b=20), rec(a=3, b=30)),
    "S": bag(rec(c=1, d="x"), rec(c=2, d="y"), rec(c=2, d="z")),
}


def both(plan, env=None, datum=None, constants=DB):
    env = env if env is not None else Record({})
    expected = eval_nraenv(plan, env, datum, constants)
    actual = eval_fast(plan, env, datum, constants)
    assert actual == expected, plan
    return actual


class TestEquiJoin:
    def test_two_way_join(self):
        plan = b.sigma(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.product(b.table("R"), b.table("S")),
        )
        result = both(plan)
        assert len(result) == 3  # a=1 matches c=1; a=2 matches two c=2 rows

    def test_join_plus_filter(self):
        pred = b.and_(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.gt(b.dot(b.id_(), "b"), b.const(15)),
        )
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        assert len(both(plan)) == 2

    def test_pure_cartesian(self):
        plan = b.sigma(
            b.const(True), b.product(b.table("R"), b.table("S"))
        )
        assert len(both(plan)) == 9

    def test_three_way_chain(self):
        third = b.const(bag(rec(e=10), rec(e=20)))
        pred = b.and_(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.eq(b.dot(b.id_(), "b"), b.dot(b.id_(), "e")),
        )
        plan = b.sigma(pred, b.product(b.product(b.table("R"), b.table("S")), third))
        both(plan)

    def test_empty_factor(self):
        plan = b.sigma(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.product(b.table("R"), b.const(Bag([]))),
        )
        assert both(plan) == Bag([])


class TestSelfJoin:
    def test_duplicate_fields_right_bias(self):
        # R × R: every field duplicated; ⊕ keeps the right copy.
        plan = b.sigma(b.const(True), b.product(b.table("R"), b.table("R")))
        assert len(both(plan)) == 9

    def test_self_join_with_filter(self):
        plan = b.sigma(
            b.gt(b.dot(b.id_(), "a"), b.const(1)),
            b.product(b.table("R"), b.table("R")),
        )
        # In.a reads the RIGHT copy (right bias): 3 rows survive × 3 left
        assert len(both(plan)) == 6


class TestWholeRowPredicates:
    def test_bare_in_predicate(self):
        # pred reads the whole row: no pushdown, still correct
        plan = b.sigma(
            b.member(b.id_(), b.const(bag(rec(a=1, b=10, c=1, d="x")))),
            b.product(b.table("R"), b.table("S")),
        )
        assert len(both(plan)) == 1

    def test_correlated_subquery_in_predicate(self):
        # pred: In.a ∈ (χ⟨In.c⟩(S)) — a subquery per row
        sub = b.chi(b.dot(b.id_(), "c"), b.table("S"))
        pred = b.member(b.dot(b.id_(), "a"), sub)
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        both(plan)


class TestEnvMode:
    def test_sql_row_shape(self):
        # σ⟨(Env.a = Env.c) ∘e (Env ⊕ In)⟩(R × S): the SQL translator's shape
        pred = b.appenv(
            b.eq(b.dot(b.env(), "a"), b.dot(b.env(), "c")),
            b.concat(b.env(), b.id_()),
        )
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        assert len(both(plan)) == 3

    def test_outer_environment_reference(self):
        pred = b.appenv(
            b.eq(b.dot(b.env(), "a"), b.dot(b.env(), "limit")),
            b.concat(b.env(), b.id_()),
        )
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        assert len(both(plan, env=rec(limit=2))) == 3  # a=2 rows × S

    def test_qualified_alias_paths(self):
        # aliased rows: σ⟨(Env.t1.a = Env.t2.c) ∘e (Env ⊕ In)⟩(R' × S')
        r_rows = b.chi(b.concat(b.id_(), b.rec_field("t1", b.id_())), b.table("R"))
        s_rows = b.chi(b.concat(b.id_(), b.rec_field("t2", b.id_())), b.table("S"))
        pred = b.appenv(
            b.eq(b.dots(b.env(), "t1", "a"), b.dots(b.env(), "t2", "c")),
            b.concat(b.env(), b.id_()),
        )
        plan = b.sigma(pred, b.product(r_rows, s_rows))
        assert len(both(plan)) == 3

    def test_correlated_subquery_sees_joined_fields(self):
        # the q17 shape: a subquery in the predicate reading another
        # factor's field through the environment
        sub = b.sigma(
            b.appenv(
                b.eq(b.dot(b.env(), "c"), b.dot(b.env(), "a")),
                b.concat(b.env(), b.id_()),
            ),
            b.table("S"),
        )
        pred = b.appenv(
            b.gt(b.count(sub), b.const(0)), b.concat(b.env(), b.id_())
        )
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        both(plan)


class TestConjunctAnalysis:
    def test_plain_fields(self):
        pred = b.and_(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.dot(b.id_(), "ok"))
        fields, whole = _analyse_conjunct(pred)
        assert fields == {"a", "ok"} and not whole

    def test_bare_in_is_whole_row(self):
        _, whole = _analyse_conjunct(b.member(b.id_(), b.const(bag(1))))
        assert whole

    def test_map_body_rebinds_in(self):
        pred = b.member(b.const(1), b.chi(b.id_(), b.dot(b.id_(), "xs")))
        fields, whole = _analyse_conjunct(pred)
        assert fields == {"xs"} and not whole

    def test_env_mode_env_reads(self):
        pred = b.eq(b.dot(b.env(), "a"), b.dot(b.id_(), "c"))
        fields, whole = _analyse_conjunct(pred, env_mode=True)
        assert fields == {"a", "c"} and not whole

    def test_env_mode_subquery_env_read_collected(self):
        sub = b.sigma(b.eq(b.dot(b.env(), "a"), b.dot(b.id_(), "c")), b.table("S"))
        pred = b.gt(b.count(sub), b.const(0))
        fields, whole = _analyse_conjunct(pred, env_mode=True)
        assert "a" in fields and not whole

    def test_equality_keys(self):
        assert _equality_key(b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c"))) == (
            ("a",),
            ("c",),
        )
        qualified = b.eq(b.dots(b.env(), "t1", "a"), b.dot(b.env(), "c"))
        assert _equality_key(qualified, env_mode=True) == (("t1", "a"), ("c",))
        assert _equality_key(b.gt(b.dot(b.id_(), "a"), b.const(1))) is None


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=120, deadline=None)
def test_engine_agrees_with_reference_on_random_plans(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    env = random_environment(rng, bag_env=rng.random() < 0.2)
    datum = random_datum(rng)
    constants = random_constants(rng)
    try:
        expected = eval_nraenv(plan, env, datum, constants)
    except EvalError:
        return  # engine may differ on failing inputs (documented)
    actual = eval_fast(plan, env, datum, constants)
    assert values_equal(actual, expected), plan


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=80, deadline=None)
def test_engine_on_random_join_shapes(seed):
    """Random σ-over-product shapes with mixed conjuncts."""
    rng = random.Random(seed)
    tables = [b.table("R"), b.table("S"), b.const(bag(rec(a=1, e=5), rec(a=9, e=6)))]
    factors = rng.sample(tables, rng.randint(2, 3))
    product = factors[0]
    for factor in factors[1:]:
        product = b.product(product, factor)
    conjunct_pool = [
        b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
        b.gt(b.dot(b.id_(), "a"), b.const(rng.randint(0, 3))),
        b.eq(b.dot(b.id_(), "d"), b.const("y")),
        b.const(rng.random() < 0.8),
        b.member(b.dot(b.id_(), "a"), b.const(bag(1, 2))),
    ]
    pred = rng.choice(conjunct_pool)
    for _ in range(rng.randint(0, 2)):
        pred = b.and_(pred, rng.choice(conjunct_pool))
    plan = b.sigma(pred, product)
    try:
        expected = eval_nraenv(plan, Record({}), None, DB)
    except EvalError:
        return
    assert eval_fast(plan, Record({}), None, DB) == expected
