"""Fused columnar chains in the execution engine.

Every fused path must agree (multiset-equal) with the reference
semantics wherever the reference succeeds; fallbacks are counted under
``engine.fallback.columnar_shape`` / ``columnar_fallback`` and fused
passes under ``engine.columnar`` (chains) / ``engine.columnar_filter``
(the join executor's residual masks).  The hypothesis property at the
bottom drives random σ/χ chains over bags with nested values (records,
bags, dates, ``1`` vs ``1.0`` keys) against ``eval_nraenv``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import operators as ops
from repro.data.columnar import cached_columnar, ensure_columnar
from repro.data.foreign import DateValue
from repro.data.model import Bag, Record, bag, rec
from repro.nraenv import ast
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.nraenv.exec import (
    columnar_enabled,
    eval_fast,
    set_columnar_enabled,
)
from repro.obs.metrics import MetricsRegistry, use_metrics

from tests.strategies import values

DB = {
    "R": bag(rec(a=1, b=10), rec(a=2, b=20), rec(a=3, b=30), rec(a=1.0, b=40)),
    "S": bag(rec(c=1, d=5), rec(c=2, d=50), rec(c=2, d=500)),
    "H": bag(rec(c=1, b=2), rec(c=2)),  # heterogeneous: b sometimes absent
    "NR": bag(1, 2, 3),  # not records
    "D": bag(
        rec(k=1, when=DateValue(1995, 3, 1)),
        rec(k=2, when=DateValue(1996, 7, 4)),
    ),
    "T": bag(rec(name="promo x"), rec(name="standard y"), rec(name="promo z")),
}


def counters(registry):
    return registry.snapshot()["counters"]


def run_counted(plan, env=None, constants=DB):
    env = env if env is not None else Record({})
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = eval_fast(plan, env, None, constants)
    assert result == eval_nraenv(plan, env, None, constants)
    return result, counters(registry)


def env_mode_pred(inner):
    """The SQL translator's row shape: ``inner ∘e (Env ⊕ In)``."""
    return b.appenv(inner, b.concat(b.env(), b.id_()))


class TestFusedChains:
    def test_simple_filter(self):
        plan = b.sigma(b.lt(b.dot(b.id_(), "a"), b.const(3)), b.table("R"))
        result, counts = run_counted(plan)
        assert len(result) == 3  # 1, 2, and 1.0
        assert counts.get("engine.columnar") == 1
        assert not any(name.startswith("engine.fallback.") for name in counts)

    def test_equality_collapses_int_float(self):
        plan = b.sigma(b.eq(b.dot(b.id_(), "a"), b.const(1)), b.table("R"))
        result, counts = run_counted(plan)
        assert result == bag(rec(a=1, b=10), rec(a=1.0, b=40))
        assert counts.get("engine.columnar") == 1

    def test_membership_against_constant_bag(self):
        plan = b.sigma(
            b.member(b.dot(b.id_(), "a"), b.const(bag(1, 3))), b.table("R")
        )
        result, counts = run_counted(plan)
        assert len(result) == 3
        assert counts.get("engine.columnar") == 1

    def test_conjunction_and_arithmetic(self):
        pred = b.and_(
            b.gt(b.add(b.dot(b.id_(), "a"), b.const(1)), b.const(2)),
            b.lt(b.dot(b.id_(), "b"), b.const(40)),
        )
        plan = b.sigma(pred, b.table("R"))
        result, counts = run_counted(plan)
        assert result == bag(rec(a=2, b=20), rec(a=3, b=30))
        assert counts.get("engine.columnar") == 1

    def test_date_unop_mask(self):
        pred = b.eq(
            b.unop(ops.OpDateYear(), b.dot(b.id_(), "when")), b.const(1995)
        )
        plan = b.sigma(pred, b.table("D"))
        result, counts = run_counted(plan)
        assert result == bag(rec(k=1, when=DateValue(1995, 3, 1)))
        assert counts.get("engine.columnar") == 1

    def test_like_mask(self):
        pred = b.unop(ops.OpLike("promo%"), b.dot(b.id_(), "name"))
        plan = b.sigma(pred, b.table("T"))
        result, counts = run_counted(plan)
        assert len(result) == 2
        assert counts.get("engine.columnar") == 1

    def test_stacked_filters_fuse_once(self):
        inner = b.sigma(b.gt(b.dot(b.id_(), "b"), b.const(10)), b.table("R"))
        plan = b.sigma(b.lt(b.dot(b.id_(), "a"), b.const(3)), inner)
        result, counts = run_counted(plan)
        assert result == bag(rec(a=2, b=20), rec(a=1.0, b=40))
        assert counts.get("engine.columnar") == 1

    def test_projection_over_filter(self):
        plan = b.chi(
            b.record({"x": b.dot(b.id_(), "b")}),
            b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.table("R")),
        )
        result, counts = run_counted(plan)
        assert result == bag(rec(x=20), rec(x=30))
        assert counts.get("engine.columnar") == 1

    def test_filter_over_projection(self):
        plan = b.sigma(
            b.eq(b.dot(b.id_(), "x"), b.const(20)),
            b.chi(b.record({"x": b.dot(b.id_(), "b")}), b.table("R")),
        )
        result, counts = run_counted(plan)
        assert result == bag(rec(x=20))
        assert counts.get("engine.columnar") == 1

    def test_scan_alias_and_qualified_access(self):
        # the SQL translator's scan shape: χ⟨In ⊕ [t: In]⟩($R)
        alias = b.chi(
            b.concat(b.id_(), b.rec_field("t", b.id_())), b.table("R")
        )
        plan = b.sigma(b.gt(b.dots(b.id_(), "t", "b"), b.const(20)), alias)
        result, counts = run_counted(plan)
        assert len(result) == 2
        assert counts.get("engine.columnar") == 1

    def test_env_mode_outer_read_is_row_free(self):
        pred = env_mode_pred(b.lt(b.dot(b.env(), "a"), b.dot(b.env(), "lim")))
        plan = b.sigma(pred, b.table("R"))
        env = Record({"lim": 3})
        result, counts = run_counted(plan, env=env)
        assert len(result) == 3
        assert counts.get("engine.columnar") == 1

    def test_const_base_bag(self):
        table = bag(rec(a=1), rec(a=2))
        plan = b.sigma(b.eq(b.dot(b.id_(), "a"), b.const(2)), b.const(table))
        result, counts = run_counted(plan)
        assert result == bag(rec(a=2))
        assert counts.get("engine.columnar") == 1

    def test_base_bag_columnar_cache_reused(self):
        table = DB["R"]
        plan = b.sigma(b.lt(b.dot(b.id_(), "a"), b.const(3)), b.table("R"))
        eval_fast(plan, Record({}), None, DB)
        assert cached_columnar(table) is not None
        assert cached_columnar(table) is ensure_columnar(table)

    def test_large_output_gets_derived_columnar(self):
        table = Bag([rec(a=i, b=i * 2) for i in range(64)])
        plan = b.sigma(
            b.lt(b.dot(b.id_(), "a"), b.const(50)), b.const(table)
        )
        result = eval_fast(plan, Record({}), None, {})
        assert len(result) == 50
        assert cached_columnar(result) is not None
        assert cached_columnar(result).column("a") == list(range(50))


class TestFallbacks:
    def test_columnar_shape_on_non_record_base(self):
        plan = b.sigma(b.const(True), b.table("NR"))
        result, counts = run_counted(plan)
        assert result == DB["NR"]
        assert counts.get("engine.fallback.columnar_shape") == 1
        assert "engine.columnar" not in counts

    def test_columnar_shape_on_env_mode_without_record_env(self):
        pred = env_mode_pred(b.const(True))
        plan = b.sigma(pred, b.table("R"))
        registry = MetricsRegistry()
        with use_metrics(registry):
            # reference raises too (Env ⊕ In needs a record env)
            with pytest.raises(EvalError):
                eval_fast(plan, bag(1), None, DB)
        assert counters(registry).get("engine.fallback.columnar_shape") == 1

    def test_columnar_fallback_when_nothing_compiles(self):
        # ``In ∈ bag``: a whole-row read no mask can express
        plan = b.sigma(
            b.member(b.id_(), b.const(bag(rec(a=1, b=10)))), b.table("R")
        )
        result, counts = run_counted(plan)
        assert result == bag(rec(a=1, b=10))
        assert counts.get("engine.fallback.columnar_fallback") == 1
        assert "engine.columnar" not in counts

    def test_missing_column_conjunct_stays_residual(self):
        # H's ``b`` is sometimes absent: the conjunct must not compile
        # to a mask (per-row exactness), but the ``c`` conjunct does —
        # and its mask runs first, so the engine may legitimately skip
        # the row whose missing ``b`` makes the *reference* raise.
        pred = b.and_(
            b.eq(b.dot(b.id_(), "c"), b.const(1)),
            b.eq(b.dot(b.id_(), "b"), b.const(2)),
        )
        plan = b.sigma(pred, b.table("H"))
        registry = MetricsRegistry()
        with use_metrics(registry):
            result = eval_fast(plan, Record({}), None, DB)
        assert result == bag(rec(c=1, b=2))
        assert counters(registry).get("engine.columnar") == 1
        with pytest.raises(EvalError):
            eval_nraenv(plan, Record({}), None, DB)

    def test_kill_switch(self):
        plan = b.sigma(b.lt(b.dot(b.id_(), "a"), b.const(3)), b.table("R"))
        previous = set_columnar_enabled(False)
        try:
            assert not columnar_enabled()
            result, counts = run_counted(plan)
            assert len(result) == 3
            assert "engine.columnar" not in counts
            assert not any(name.startswith("engine.fallback.") for name in counts)
        finally:
            set_columnar_enabled(previous)
        assert columnar_enabled() == previous


class TestJoinResidualMasks:
    def test_non_equi_residual_compiles_to_mask(self):
        pred = b.and_(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.gt(b.dot(b.id_(), "d"), b.dot(b.id_(), "b")),
        )
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        result, counts = run_counted(plan)
        assert counts.get("engine.join") == 1
        assert counts.get("engine.columnar_filter", 0) >= 1
        # cross-check contents: a=c joins, then d>b keeps the c=2 pairs
        expected = eval_nraenv(plan, Record({}), None, DB)
        assert result == expected and len(result) == 2

    def test_join_masks_disabled_with_kill_switch(self):
        pred = b.and_(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.id_(), "c")),
            b.gt(b.dot(b.id_(), "d"), b.dot(b.id_(), "b")),
        )
        plan = b.sigma(pred, b.product(b.table("R"), b.table("S")))
        previous = set_columnar_enabled(False)
        try:
            result, counts = run_counted(plan)
            assert counts.get("engine.join") == 1
            assert "engine.columnar_filter" not in counts
        finally:
            set_columnar_enabled(previous)


class TestGroupByColumnar:
    def test_group_by_over_columnar_source(self):
        table = Bag([rec(g=i % 3, v=i) for i in range(40)])
        ensure_columnar(table)
        constants = {"G": table}
        plan = b.group_by(["g"], b.table("G"), partition_field="part")
        result, counts = run_counted(plan, constants=constants)
        assert counts.get("engine.group_by") == 1
        assert len(result) == 3


# ---------------------------------------------------------------------------
# Property: fused chains agree with the reference over nested values
# ---------------------------------------------------------------------------

_pool = st.one_of(
    st.sampled_from([1, 1.0, 2, "x", None, True, DateValue(1995, 1, 1)]),
    values(4),
)

_rows = st.lists(
    st.builds(lambda a, b_: Record({"a": a, "b": b_}), _pool, _pool),
    max_size=8,
)


@st.composite
def _chains(draw):
    """A fused-shape plan over ``$t``: filters and projections, ≥1 filter."""
    node = ast.GetConstant("t")
    stages = draw(st.integers(min_value=1, max_value=3))
    fields = ["a", "b"]
    has_filter = False
    for position in range(stages):
        kind = draw(st.sampled_from(["filter", "filter", "project"]))
        if kind == "project" and fields:
            name = draw(st.sampled_from(["a", "b", "p"]))
            src = draw(st.sampled_from(fields))
            node = b.chi(b.record({name: b.dot(b.id_(), src)}), node)
            fields = [name]
        else:
            src = draw(st.sampled_from(fields))
            constant = draw(_pool)
            pred = draw(
                st.sampled_from(
                    [
                        b.eq(b.dot(b.id_(), src), b.const(constant)),
                        b.member(
                            b.dot(b.id_(), src),
                            b.const(Bag([constant, draw(_pool)])),
                        ),
                    ]
                )
            )
            node = b.sigma(pred, node)
            has_filter = True
    if not has_filter:
        node = b.sigma(b.eq(b.dot(b.id_(), fields[0]), b.const(1)), node)
    return node


@settings(max_examples=80, deadline=None)
@given(rows=_rows, plan=_chains())
def test_fused_chain_matches_reference(rows, plan):
    constants = {"t": Bag(rows)}
    env = Record({})
    try:
        expected = eval_nraenv(plan, env, None, constants)
    except EvalError:
        return  # partial reference semantics: nothing to compare
    got = eval_fast(plan, env, None, constants)
    assert got == expected
