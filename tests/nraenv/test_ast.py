"""Unit tests for NRAe syntax: equality, metrics, traversal, macros."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.nraenv import ast, builders as b
from repro.nraenv.ast import is_nra, project, unnest
from repro.nraenv.eval import eval_nraenv


class TestStructuralEquality:
    def test_equal_plans(self):
        assert b.chi(b.id_(), b.table("P")) == b.chi(b.id_(), b.table("P"))

    def test_unequal_operators(self):
        assert b.dot(b.id_(), "a") != b.dot(b.id_(), "b")

    def test_unequal_shapes(self):
        assert b.chi(b.id_(), b.table("P")) != b.sigma(b.id_(), b.table("P"))

    def test_const_equality_by_value(self):
        assert b.const(bag(1, 2)) == b.const(bag(2, 1))
        assert b.const(1) != b.const(True)

    def test_hashable(self):
        seen = {b.chi(b.id_(), b.table("P"))}
        assert b.chi(b.id_(), b.table("P")) in seen

    def test_not_equal_to_other_types(self):
        assert b.id_() != "In"


class TestMetrics:
    def test_size_counts_operators(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.table("P"))
        # Map + Unop(dot) + ID + GetConstant
        assert plan.size() == 4

    def test_depth_counts_iterator_nesting(self):
        flat = b.chi(b.dot(b.id_(), "a"), b.table("P"))
        assert flat.depth() == 1
        nested = b.chi(b.chi(b.id_(), b.dot(b.id_(), "xs")), b.table("P"))
        assert nested.depth() == 2

    def test_map_pipeline_depth_does_not_accumulate(self):
        plan = b.chi(b.id_(), b.chi(b.id_(), b.chi(b.id_(), b.table("P"))))
        assert plan.depth() == 1

    def test_composition_depth_is_max(self):
        plan = b.comp(b.chi(b.id_(), b.id_()), b.chi(b.id_(), b.id_()))
        assert plan.depth() == 1


class TestTraversal:
    def test_walk_preorder(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.table("P"))
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds == ["Map", "Unop", "ID", "GetConstant"]

    def test_transform_bottom_up_rebuilds(self):
        plan = b.chi(b.id_(), b.table("P"))

        def swap_table(node):
            if isinstance(node, ast.GetConstant):
                return ast.GetConstant("Q")
            return node

        assert plan.transform_bottom_up(swap_table) == b.chi(b.id_(), b.table("Q"))

    def test_transform_identity_returns_same_nodes(self):
        plan = b.chi(b.id_(), b.table("P"))
        assert plan.transform_bottom_up(lambda n: n) is not None
        assert plan.transform_bottom_up(lambda n: n) == plan


class TestNraPredicate:
    def test_pure_nra_plan(self):
        assert is_nra(b.chi(b.dot(b.id_(), "a"), b.table("P")))

    def test_env_node_is_not_nra(self):
        assert not is_nra(b.chi(b.env(), b.table("P")))

    def test_appenv_is_not_nra(self):
        assert not is_nra(b.appenv(b.id_(), b.id_()))

    def test_mapenv_is_not_nra(self):
        assert not is_nra(b.chie(b.id_()))


class TestDerivedOperators:
    def test_project_macro(self):
        plan = project(["a"], b.const(bag(rec(a=1, b=2), rec(a=3, b=4))))
        assert eval_nraenv(plan, rec(), None) == bag(rec(a=1), rec(a=3))

    def test_unnest_macro(self):
        # ρ_{B/{A}}: unnest the bag under A into field B.
        source = b.const(bag(rec(k=1, A=bag(10, 20)), rec(k=2, A=bag())))
        plan = unnest("B", "A", source)
        assert eval_nraenv(plan, rec(), None) == bag(
            rec(k=1, B=10), rec(k=1, B=20)
        )

    def test_record_builder(self):
        plan = b.record({"x": b.const(1), "y": b.const(2)})
        assert eval_nraenv(plan, rec(), None) == rec(x=1, y=2)

    def test_empty_record_builder(self):
        assert eval_nraenv(b.record({}), rec(), None) == rec()

    def test_dots_builder(self):
        plan = b.dots(b.id_(), "a", "b")
        assert eval_nraenv(plan, rec(), rec(a=rec(b=7))) == 7


class TestGroupBy:
    def test_groups_by_key_fields(self):
        rows = bag(
            rec(d="eng", s=100), rec(d="eng", s=80), rec(d="ops", s=90)
        )
        plan = b.group_by(["d"], b.const(rows))
        result = eval_nraenv(plan, rec(), None)
        groups = {group["d"]: group["partition"] for group in result}
        assert groups["eng"] == bag(rec(d="eng", s=100), rec(d="eng", s=80))
        assert groups["ops"] == bag(rec(d="ops", s=90))

    def test_empty_keys_is_one_group(self):
        rows = bag(rec(a=1), rec(a=2))
        plan = b.group_by([], b.const(rows))
        result = eval_nraenv(plan, rec(), None)
        assert result == bag(rec(partition=rows))

    def test_multi_key_grouping(self):
        rows = bag(rec(a=1, c=1), rec(a=1, c=2), rec(a=1, c=1))
        plan = b.group_by(["a", "c"], b.const(rows))
        result = eval_nraenv(plan, rec(), None)
        assert len(result) == 2

    def test_environment_passes_through(self):
        # the source may itself read the (outer) environment
        plan = b.group_by(["a"], b.coll(b.concat(b.env(), b.const(rec(a=1)))))
        result = eval_nraenv(plan, rec(u=7), None)
        assert result.items[0]["partition"].items[0]["u"] == 7

    def test_grouping_over_empty_bag(self):
        from repro.data.model import Bag

        plan = b.group_by(["a"], b.const(Bag([])))
        assert eval_nraenv(plan, rec(), None) == Bag([])


class TestPretty:
    def test_paper_notation(self):
        plan = b.chi(b.dots(b.env(), "p", "addr", "city"), b.table("P"))
        assert repr(plan) == "χ⟨Env.p.addr.city⟩($P)"

    def test_appenv_notation(self):
        plan = b.appenv(b.id_(), b.concat(b.env(), b.rec_field("x", b.id_())))
        assert "∘e" in repr(plan)
        assert "[x:In]" in repr(plan)

    def test_values_in_notation(self):
        assert repr(b.const(bag(rec(A=1)))) == "{[A:1]}"
