"""Unit tests for parametric plans and the lifting machinery (§4.2)."""

import pytest

from repro.nraenv import builders as b
from repro.nraenv.ast import is_nra
from repro.nraenv.context import (
    ParametricEquivalence,
    PlanVar,
    classic_nra_equivalences,
    instantiate,
    is_parametric,
    plan_vars,
    q,
)


class TestPlanVars:
    def test_collects_sorted_indices(self):
        plan = b.union(q(2), b.sigma(q(0), q(2)))
        assert plan_vars(plan) == (0, 2)

    def test_no_vars(self):
        assert plan_vars(b.id_()) == ()
        assert not is_parametric(b.id_())
        assert is_parametric(q(0))

    def test_plan_var_equality(self):
        assert q(1) == PlanVar(1)
        assert q(1) != q(2)


class TestInstantiation:
    def test_substitutes_each_variable(self):
        template = b.sigma(q(0), q(1))
        result = instantiate(template, [b.id_(), b.table("T")])
        assert result == b.sigma(b.id_(), b.table("T"))

    def test_shared_variable_duplicated(self):
        template = b.union(q(0), q(0))
        assert instantiate(template, [b.table("T")]) == b.union(
            b.table("T"), b.table("T")
        )

    def test_missing_argument_raises(self):
        with pytest.raises(ValueError):
            instantiate(q(3), [b.id_()])


class TestParametricEquivalence:
    def test_arity(self):
        eq = ParametricEquivalence("e", b.sigma(q(0), q(2)), q(2))
        assert eq.arity == 3

    def test_is_nra_equivalence(self):
        eq = ParametricEquivalence("e", b.chi(b.id_(), q(0)), q(0))
        assert eq.is_nra_equivalence
        eq_env = ParametricEquivalence("e", b.chi(b.env(), q(0)), q(0))
        assert not eq_env.is_nra_equivalence

    def test_lift_requires_nra(self):
        eq_env = ParametricEquivalence("e", b.chi(b.env(), q(0)), q(0))
        with pytest.raises(ValueError):
            eq_env.lift()

    def test_lift_preserves_shape_and_sorts(self):
        eq = ParametricEquivalence(
            "map_id", b.chi(b.id_(), q(0)), q(0), var_sorts=("bag",)
        )
        lifted = eq.lift()
        assert lifted.lhs == eq.lhs and lifted.rhs == eq.rhs
        assert lifted.sort_of(0) == "bag"
        assert lifted.name.endswith("_lifted")

    def test_sort_defaults_to_any(self):
        eq = ParametricEquivalence("e", q(0), q(0))
        assert eq.sort_of(0) == "any"


class TestClassicCatalog:
    def test_catalog_is_pure_nra(self):
        for name, eq in classic_nra_equivalences().items():
            assert eq.is_nra_equivalence, name
            assert is_nra(eq.lhs) and is_nra(eq.rhs)

    def test_catalog_contains_the_intro_rule(self):
        assert "select_union_distr" in classic_nra_equivalences()

    def test_instantiation_of_select_union_distr(self):
        eq = classic_nra_equivalences()["select_union_distr"]
        lhs, rhs = eq.instantiate([b.gt(b.dot(b.id_(), "a"), b.const(1)), b.table("T"), b.table("T")])
        assert "∪" in repr(lhs) and "∪" in repr(rhs)
