"""Unit tests for the NRAe operational semantics (paper Figure 2)."""

import pytest

from repro.data.model import Bag, Record, bag, rec
from repro.data.operators import OpAdd, OpDot
from repro.nraenv import ast, builders as b
from repro.nraenv.eval import EvalError, eval_nraenv


class TestLeaves:
    def test_constant(self):
        assert eval_nraenv(b.const(42), rec(), 7) == 42

    def test_id_returns_input(self):
        assert eval_nraenv(b.id_(), rec(), 7) == 7

    def test_env_returns_environment(self):
        assert eval_nraenv(b.env(), rec(x=1), 7) == rec(x=1)

    def test_get_constant(self):
        assert eval_nraenv(b.table("T"), rec(), None, {"T": bag(1)}) == bag(1)

    def test_unknown_constant_fails(self):
        with pytest.raises(EvalError):
            eval_nraenv(b.table("nope"), rec(), None, {})


class TestComposition:
    def test_comp_threads_value(self):
        plan = b.comp(b.dot(b.id_(), "a"), b.const(rec(a=5)))
        assert eval_nraenv(plan, rec(), None) == 5

    def test_comp_preserves_environment(self):
        plan = b.comp(b.env(), b.const(1))
        assert eval_nraenv(plan, rec(x=9), None) == rec(x=9)

    def test_appenv_sets_environment(self):
        plan = b.appenv(b.env(), b.const(rec(y=2)))
        assert eval_nraenv(plan, rec(x=1), None) == rec(y=2)

    def test_appenv_preserves_input(self):
        plan = b.appenv(b.id_(), b.const(rec(y=2)))
        assert eval_nraenv(plan, rec(x=1), 7) == 7


class TestMapSelect:
    def test_map(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.const(bag(rec(a=1), rec(a=2))))
        assert eval_nraenv(plan, rec(), None) == bag(1, 2)

    def test_map_empty(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.const(Bag([])))
        assert eval_nraenv(plan, rec(), None) == Bag([])

    def test_map_over_non_bag_fails(self):
        with pytest.raises(EvalError):
            eval_nraenv(b.chi(b.id_(), b.const(5)), rec(), None)

    def test_map_body_sees_environment(self):
        plan = b.chi(b.dot(b.env(), "x"), b.const(bag(1, 2)))
        assert eval_nraenv(plan, rec(x=9), None) == bag(9, 9)

    def test_select_keeps_true_elements(self):
        plan = b.sigma(b.gt(b.id_(), b.const(1)), b.const(bag(1, 2, 3)))
        assert eval_nraenv(plan, rec(), None) == bag(2, 3)

    def test_select_non_boolean_predicate_fails(self):
        plan = b.sigma(b.id_(), b.const(bag(1)))
        with pytest.raises(EvalError):
            eval_nraenv(plan, rec(), None)


class TestProductDepJoin:
    def test_product(self):
        plan = b.product(
            b.const(bag(rec(a=1), rec(a=2))), b.const(bag(rec(b=3)))
        )
        assert eval_nraenv(plan, rec(), None) == bag(rec(a=1, b=3), rec(a=2, b=3))

    def test_product_right_bias_on_overlap(self):
        plan = b.product(b.const(bag(rec(a=1))), b.const(bag(rec(a=9))))
        assert eval_nraenv(plan, rec(), None) == bag(rec(a=9))

    def test_product_empty_left_short_circuits(self):
        # (Prodˡ∅): the right operand is not evaluated.
        plan = b.product(b.const(Bag([])), b.chi(b.id_(), b.const(5)))
        assert eval_nraenv(plan, rec(), None) == Bag([])

    def test_product_non_record_elements_fail(self):
        plan = b.product(b.const(bag(1)), b.const(bag(rec(a=1))))
        with pytest.raises(EvalError):
            eval_nraenv(plan, rec(), None)

    def test_dep_join_body_sees_element(self):
        # ⋈d⟨χ⟨[b: In]⟩(In.xs)⟩(q): pairs each record with its own xs.
        body = b.chi(b.rec_field("b", b.id_()), b.dot(b.id_(), "xs"))
        plan = b.djoin(body, b.const(bag(rec(a=1, xs=bag(10, 20)), rec(a=2, xs=bag()))))
        assert eval_nraenv(plan, rec(), None) == bag(
            rec(a=1, xs=bag(10, 20), b=10), rec(a=1, xs=bag(10, 20), b=20)
        )


class TestDefault:
    def test_default_left_non_empty(self):
        assert eval_nraenv(b.default(b.const(bag(1)), b.const(bag(2))), rec(), None) == bag(1)

    def test_default_left_empty_takes_right(self):
        assert eval_nraenv(b.default(b.const(Bag([])), b.const(bag(2))), rec(), None) == bag(2)

    def test_default_right_lazy(self):
        # Default¬∅ never evaluates the right operand.
        failing = b.dot(b.const(5), "a")
        assert eval_nraenv(b.default(b.const(bag(1)), failing), rec(), None) == bag(1)

    def test_default_on_non_bag_left_returns_it(self):
        assert eval_nraenv(b.default(b.const(7), b.const(bag(2))), rec(), None) == 7


class TestEnvironmentOperators:
    def test_merge_success_example_from_paper(self):
        # §3.3: χe⟨Env.A + Env.C⟩ ∘e (Env ⊗ [B:3, C:4]) ⇒ {5}
        body = b.binop(OpAdd(), b.dot(b.env(), "A"), b.dot(b.env(), "C"))
        plan = b.appenv(b.chie(body), b.merge(b.env(), b.const(rec(B=3, C=4))))
        assert eval_nraenv(plan, rec(A=1, B=3), None) == bag(5)

    def test_merge_failure_example_from_paper(self):
        # §3.3: conflicting B ⇒ {}
        body = b.binop(OpAdd(), b.dot(b.env(), "A"), b.dot(b.env(), "C"))
        plan = b.appenv(b.chie(body), b.merge(b.env(), b.const(rec(B=2, C=4))))
        assert eval_nraenv(plan, rec(A=1, B=3), None) == Bag([])

    def test_mapenv_requires_bag_environment(self):
        with pytest.raises(EvalError):
            eval_nraenv(b.chie(b.env()), rec(), None)

    def test_mapenv_maps_over_environment(self):
        plan = b.chie(b.dot(b.env(), "x"))
        assert eval_nraenv(plan, bag(rec(x=1), rec(x=2)), None) == bag(1, 2)

    def test_mapenv_body_keeps_input(self):
        plan = b.chie(b.id_())
        assert eval_nraenv(plan, bag(rec(), rec()), 7) == bag(7, 7)

    def test_env_extension_with_shadowing(self):
        # q ∘e (Env ⊕ [x: In]) : ⊕ favors the new binding.
        plan = b.appenv(
            b.dot(b.env(), "x"), b.concat(b.env(), b.rec_field("x", b.id_()))
        )
        assert eval_nraenv(plan, rec(x=1), 99) == 99


class TestConditionalEncoding:
    def test_then_branch(self):
        assert eval_nraenv(b.if_then_else(b.const(True), b.const(1), b.const(2))) == 1

    def test_else_branch(self):
        assert eval_nraenv(b.if_then_else(b.const(False), b.const(1), b.const(2))) == 2

    def test_untaken_else_not_evaluated(self):
        failing = b.dot(b.const(5), "a")
        plan = b.if_then_else(b.const(True), b.const(1), failing)
        assert eval_nraenv(plan) == 1

    def test_then_branch_sees_original_input(self):
        plan = b.if_then_else(b.const(True), b.id_(), b.const(0))
        assert eval_nraenv(plan, rec(), 42) == 42

    def test_taken_then_returning_empty_bag_suppresses_else(self):
        plan = b.if_then_else(b.const(True), b.const(Bag([])), b.const(bag(1)))
        assert eval_nraenv(plan) == Bag([])
