"""The physical group-by ≡ the derived environment encoding (paper §3.2).

The engine recognises the translator's derived group-by shape and runs
it as one bucketing pass (:func:`repro.nraenv.exec._execute_group_by`);
the reference evaluator executes the encoding literally, re-scanning
the source once per distinct key.  These properties pin the rewrite to
the semantics: multiset-equal output over nested and heterogeneous
bags, empty key lists and empty inputs, and a *counted* fallback to the
reference on every shape the fast path cannot prove sound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Bag, Record, bag, rec
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.nraenv.exec import eval_fast
from repro.obs.metrics import MetricsRegistry, use_metrics
from tests.strategies import values

# records that always carry the key fields a, b (arbitrary nested
# values) plus optional extra fields — so rows are heterogeneous but
# both evaluators succeed
keyed_records = st.builds(
    lambda a, b_, extra: Record(dict(extra, a=a, b=b_)),
    values(max_leaves=4),
    values(max_leaves=4),
    st.dictionaries(st.sampled_from(["c", "d"]), values(max_leaves=3), max_size=2),
)

keyed_bags = st.lists(keyed_records, max_size=6).map(Bag)


def run_counted(plan, env=None, datum=None, constants=None):
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = eval_fast(plan, env if env is not None else Record({}), datum, constants or {})
    return result, registry.snapshot()["counters"]


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(rows=keyed_bags, fields=st.sampled_from([["a"], ["b"], ["a", "b"]]))
    def test_physical_equals_derived_encoding(self, rows, fields):
        plan = b.group_by(fields, b.table("R"))
        db = {"R": rows}
        result, counts = run_counted(plan, constants=db)
        assert result == eval_nraenv(plan, Record({}), None, db)
        # the fast path actually ran (this shape always matches)
        assert counts.get("engine.group_by") == 1
        assert not any(name.startswith("engine.fallback.group") for name in counts)

    @settings(max_examples=30, deadline=None)
    @given(rows=keyed_bags)
    def test_empty_key_list(self, rows):
        # builders.group_by([]) emits the single-partition shape, which
        # is not a candidate — answers must still agree
        plan = b.group_by([], b.table("R"))
        db = {"R": rows}
        result, _ = run_counted(plan, constants=db)
        assert result == eval_nraenv(plan, Record({}), None, db)

    def test_empty_input(self):
        plan = b.group_by(["a"], b.table("R"))
        db = {"R": Bag([])}
        result, counts = run_counted(plan, constants=db)
        assert result == eval_nraenv(plan, Record({}), None, db) == Bag([])
        assert counts.get("engine.group_by") == 1

    @settings(max_examples=30, deadline=None)
    @given(rows=keyed_bags)
    def test_group_by_under_outer_environment(self, rows):
        # an outer environment the source reads (Env.x) is stable across
        # the encoding's two contexts: still physical, still equal
        source = b.sigma(b.eq(b.dot(b.id_(), "a"), b.dot(b.env(), "x")), b.table("R"))
        plan = b.group_by(["b"], source)
        env = Record({"x": 1})
        db = {"R": rows}
        result, counts = run_counted(plan, env=env, constants=db)
        assert result == eval_nraenv(plan, env, None, db)
        assert counts.get("engine.group_by") == 1


class TestFallbacks:
    def test_non_matching_candidate_is_counted_and_correct(self):
        # χ⟨… ∘e …⟩(♯distinct(…)) that is *not* a group-by: candidate
        # shape, pattern mismatch → counted fallback, right answer
        plan = b.chi(
            b.appenv(b.id_(), b.env()),
            b.distinct(b.chi(b.record({"a": b.dot(b.id_(), "a")}), b.table("R"))),
        )
        db = {"R": bag(rec(a=1), rec(a=2), rec(a=1))}
        result, counts = run_counted(plan, constants=db)
        assert result == eval_nraenv(plan, Record({}), None, db)
        assert counts.get("engine.fallback.group_pattern") == 1
        assert "engine.group_by" not in counts

    @settings(max_examples=25, deadline=None)
    @given(rows=keyed_bags, body=st.sampled_from(["env", "count", "key_env"]))
    def test_fallback_shapes_never_change_answers(self, rows, body):
        # a family of near-miss candidates: each falls back (counted)
        # and must agree with the reference wherever it succeeds
        inner = b.distinct(b.chi(b.record({"a": b.dot(b.id_(), "a")}), b.table("R")))
        bodies = {
            "env": b.appenv(b.env(), b.concat(b.env(), b.rec_field("__key", b.id_()))),
            "count": b.appenv(b.count(b.table("R")), b.env()),
            "key_env": b.appenv(b.dot(b.env(), "__key"), b.concat(b.env(), b.rec_field("__key", b.id_()))),
        }
        plan = b.chi(bodies[body], inner)
        db = {"R": rows}
        try:
            expected = eval_nraenv(plan, Record({}), None, db)
        except EvalError:
            with pytest.raises(EvalError):
                eval_fast(plan, Record({}), None, db)
            return
        result, counts = run_counted(plan, constants=db)
        assert result == expected
        assert counts.get("engine.fallback.group_pattern", 0) >= 1
        assert "engine.group_by" not in counts

    def test_unstable_source_reading_group_key_falls_back(self):
        # q reads Env.__key, which the encoding rebinds per group: the
        # physical rewrite would be unsound, so the engine must take the
        # reference path (group_shape) — and match it
        source = b.sigma(
            b.eq(b.dot(b.id_(), "a"), b.dot(b.env(), "__key")), b.table("R")
        )
        plan = b.group_by(["a"], source)
        env = Record({"__key": 1})
        db = {"R": bag(rec(a=1), rec(a=2))}
        result, counts = run_counted(plan, env=env, constants=db)
        assert result == eval_nraenv(plan, env, None, db)
        assert counts.get("engine.fallback.group_shape") == 1
        assert "engine.group_by" not in counts

    def test_source_reading_ambient_datum_falls_back(self):
        # q = In: the encoding evaluates the partition's q with the
        # group key as datum, so both evaluators raise — the engine via
        # its counted fallback, never via a wrong physical answer
        plan = b.group_by(["a"], b.id_())
        datum = bag(rec(a=1), rec(a=2))
        with pytest.raises(EvalError):
            eval_nraenv(plan, Record({}), datum, {})
        registry = MetricsRegistry()
        with use_metrics(registry):
            with pytest.raises(EvalError):
                eval_fast(plan, Record({}), datum, {})
        counts = registry.snapshot()["counters"]
        assert counts.get("engine.fallback.group_shape") == 1

    def test_non_record_rows_fall_back(self):
        plan = b.group_by(["a"], b.table("R"))
        db = {"R": bag(1, 2, 3)}
        with pytest.raises(EvalError):
            eval_nraenv(plan, Record({}), None, db)
        registry = MetricsRegistry()
        with use_metrics(registry):
            with pytest.raises(EvalError):
                eval_fast(plan, Record({}), None, db)
        assert registry.snapshot()["counters"].get("engine.fallback.group_shape") == 1


class TestHoistedIn:
    def test_uncorrelated_in_subquery_runs_once(self):
        # the subquery contains a group-by; if the IN were evaluated per
        # candidate row the engine.group_by counter would exceed 1
        from repro.sql.parser import parse_sql
        from repro.sql.to_nraenv import sql_to_nraenv

        sql = (
            "select r1.a from rel r1, st s1 where r1.a = s1.c "
            "and r1.a in (select c from hx group by c)"
        )
        plan = sql_to_nraenv(parse_sql(sql))
        db = {
            "rel": bag(rec(a=1), rec(a=2), rec(a=3)),
            "st": bag(rec(c=1), rec(c=2), rec(c=3)),
            "hx": bag(rec(c=1), rec(c=2), rec(c=1)),
        }
        result, counts = run_counted(plan, constants=db)
        assert result == eval_nraenv(plan, Record({}), None, db)
        assert counts.get("engine.hoisted_in") == 1
        assert counts.get("engine.group_by") == 1  # once, not per row
        assert counts.get("engine.join") == 1

    def test_correlated_in_stays_per_row(self):
        from repro.sql.parser import parse_sql
        from repro.sql.to_nraenv import sql_to_nraenv

        sql = (
            "select r1.a from rel r1, st s1 where r1.a = s1.c "
            "and r1.b in (select h1.c from hx h1 where h1.c = r1.a)"
        )
        plan = sql_to_nraenv(parse_sql(sql))
        db = {
            "rel": bag(rec(a=1, b=1), rec(a=2, b=9)),
            "st": bag(rec(c=1), rec(c=2)),
            "hx": bag(rec(c=1), rec(c=2)),
        }
        result, counts = run_counted(plan, constants=db)
        assert result == eval_nraenv(plan, Record({}), None, db)
        assert "engine.hoisted_in" not in counts
