"""Tests for NNRCMR-lite: sharding-invariance and NNRC agreement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.mapreduce import (
    FlatMapStage,
    MapStage,
    NotDistributable,
    ReduceStage,
    distribute,
    is_distributable,
    nnrc_to_mr,
    run_chain,
)
from repro.data.model import Bag, bag, rec
from repro.data.operators import (
    OpAdd,
    OpBag,
    OpCount,
    OpDot,
    OpFlatten,
    OpGt,
    OpSum,
)
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc

DB = {"T": bag(rec(a=1), rec(a=2), rec(a=3), rec(a=4), rec(a=5))}


def for_(var, source, body):
    return ast.For(var, source, body)


def table(name):
    return ast.GetConstant(name)


def dot(expr, field):
    return ast.Unop(OpDot(field), expr)


class TestCompilation:
    def test_table_is_empty_chain(self):
        chain = nnrc_to_mr(table("T"))
        assert chain.input_table == "T"
        assert chain.stages == []

    def test_map_stage(self):
        chain = nnrc_to_mr(for_("x", table("T"), dot(ast.Var("x"), "a")))
        assert isinstance(chain.stages[0], MapStage)

    def test_selection_is_flatmap(self):
        body = ast.If(
            ast.Binop(OpGt(), dot(ast.Var("x"), "a"), ast.Const(2)),
            ast.Unop(OpBag(), ast.Var("x")),
            ast.Const(Bag([])),
        )
        expr = ast.Unop(OpFlatten(), for_("x", table("T"), body))
        chain = nnrc_to_mr(expr)
        assert isinstance(chain.stages[0], FlatMapStage)

    def test_aggregate_is_reduce(self):
        expr = ast.Unop(OpSum(), for_("x", table("T"), dot(ast.Var("x"), "a")))
        chain = nnrc_to_mr(expr)
        assert isinstance(chain.stages[-1], ReduceStage)
        assert chain.stages[-1].name == "sum"

    def test_driver_variables_rejected(self):
        body = ast.Binop(OpAdd(), dot(ast.Var("x"), "a"), ast.Var("y"))
        with pytest.raises(NotDistributable):
            nnrc_to_mr(for_("x", table("T"), body))

    def test_chain_cannot_extend_past_reduce(self):
        reduced = ast.Unop(OpCount(), table("T"))
        with pytest.raises(NotDistributable):
            nnrc_to_mr(for_("x", reduced, ast.Var("x")))

    def test_let_is_not_distributable(self):
        expr = ast.Let("x", table("T"), ast.Var("x"))
        assert not is_distributable(expr)
        assert is_distributable(table("T"))


class TestExecution:
    @pytest.mark.parametrize("shards", (1, 2, 3, 7, 16))
    def test_map_matches_nnrc_for_any_sharding(self, shards):
        expr = for_("x", table("T"), dot(ast.Var("x"), "a"))
        chain = distribute(expr)
        assert run_chain(chain, DB, shards=shards) == eval_nnrc(expr, {}, DB)

    @pytest.mark.parametrize("shards", (1, 2, 5))
    def test_aggregate_matches_nnrc(self, shards):
        expr = ast.Unop(OpSum(), for_("x", table("T"), dot(ast.Var("x"), "a")))
        chain = distribute(expr)
        assert run_chain(chain, DB, shards=shards) == 15 == eval_nnrc(expr, {}, DB)

    def test_pipeline_map_filter_reduce(self):
        keep = ast.If(
            ast.Binop(OpGt(), dot(ast.Var("x"), "a"), ast.Const(2)),
            ast.Unop(OpBag(), dot(ast.Var("x"), "a")),
            ast.Const(Bag([])),
        )
        expr = ast.Unop(
            OpCount(), ast.Unop(OpFlatten(), for_("x", table("T"), keep))
        )
        chain = distribute(expr)
        assert len(chain.stages) == 2
        assert run_chain(chain, DB, shards=3) == 3

    def test_distinct_reduce(self):
        db = {"T": bag(1, 2, 2, 3, 3, 3)}
        expr = ast.Unop(
            __import__("repro.data.operators", fromlist=["OpDistinct"]).OpDistinct(),
            for_("x", table("T"), ast.Var("x")),
        )
        chain = distribute(expr)
        assert run_chain(chain, db, shards=4) == bag(1, 2, 3)

    def test_missing_table(self):
        from repro.nraenv.eval import EvalError

        with pytest.raises(EvalError):
            run_chain(distribute(table("nope")), DB)


class TestRealQueries:
    def test_tpch_q6_shape_through_mapreduce(self, tpch_db):
        """A q6-equivalent built in canonical shape runs distributed."""
        from repro.data.foreign import DateValue
        from repro.data.operators import OpAnd, OpGe, OpLe, OpLt, OpMult

        x = ast.Var("l")
        start = ast.Const(DateValue(1994, 1, 1))
        end = ast.Const(DateValue(1995, 1, 1))
        pred = ast.Binop(
            OpAnd(),
            ast.Binop(
                OpAnd(),
                ast.Binop(OpGe(), dot(x, "l_shipdate"), start),
                ast.Binop(OpLt(), dot(x, "l_shipdate"), end),
            ),
            ast.Binop(
                OpAnd(),
                ast.Binop(
                    OpAnd(),
                    ast.Binop(OpGe(), dot(x, "l_discount"), ast.Const(0.05)),
                    ast.Binop(OpLe(), dot(x, "l_discount"), ast.Const(0.07)),
                ),
                ast.Binop(OpLt(), dot(x, "l_quantity"), ast.Const(24)),
            ),
        )
        revenue = ast.Binop(OpMult(), dot(x, "l_extendedprice"), dot(x, "l_discount"))
        keep = ast.If(pred, ast.Unop(OpBag(), revenue), ast.Const(Bag([])))
        expr = ast.Unop(
            OpSum(), ast.Unop(OpFlatten(), for_("l", table("lineitem"), keep))
        )
        chain = distribute(expr)
        sequential = eval_nnrc(expr, {}, tpch_db)
        for shards in (1, 4, 9):
            assert run_chain(chain, tpch_db, shards=shards) == pytest.approx(sequential)


@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_sharding_invariance_property(seed, shards):
    """For random supported chains: result independent of shard count
    and equal to sequential NNRC evaluation."""
    rng = random.Random(seed)
    x = ast.Var("x")
    body_choices = [
        dot(x, "a"),
        ast.Binop(OpAdd(), dot(x, "a"), ast.Const(rng.randint(0, 3))),
        x,
    ]
    expr: ast.NnrcNode = for_("x", table("T"), rng.choice(body_choices))
    if rng.random() < 0.5:
        keep = ast.If(
            ast.Binop(OpGt(), dot(x, "a"), ast.Const(rng.randint(0, 5))),
            ast.Unop(OpBag(), dot(x, "a")),
            ast.Const(Bag([])),
        )
        expr = ast.Unop(OpFlatten(), for_("x", table("T"), keep))
    if rng.random() < 0.5:
        expr = ast.Unop(rng.choice((OpSum(), OpCount())), expr)
    db = {"T": Bag([rec(a=rng.randint(0, 9)) for _ in range(rng.randint(0, 12))])}
    chain = distribute(expr)
    from repro.nraenv.eval import EvalError

    failed = object()

    def outcome(fn):
        try:
            return fn()
        except EvalError:
            return failed

    expected = outcome(lambda: eval_nnrc(expr, {}, db))
    assert outcome(lambda: run_chain(chain, db, shards=shards)) == expected
    assert outcome(lambda: run_chain(chain, db, shards=1)) == expected
