"""Tests for the Python backend: generated code ≡ NNRC interpreter."""

import random
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.python_gen import compile_nnrc_to_callable, generate_python
from repro.data.model import Bag, Record, bag, rec
from repro.data.operators import OpAdd, OpBag, OpDot
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc
from repro.nraenv.eval import EvalError
from repro.optim.verify import (
    gen_plan,
    random_constants,
    random_datum,
    random_environment,
)
from repro.translate.nraenv_to_nnrc import nraenv_to_nnrc

_FAILED = object()


def compare(expr, datum=None, env=None, constants=None):
    constants = constants or {}
    try:
        expected = eval_nnrc(expr, {"d0": datum, "e0": env}, constants)
    except EvalError:
        expected = _FAILED
    fn = compile_nnrc_to_callable(expr)
    try:
        actual = fn(constants, datum, env)
    except Exception:
        actual = _FAILED
    if expected is _FAILED:
        assert actual is _FAILED
    else:
        assert actual == expected, fn.__source__
    return expected


class TestBasics:
    def test_constant(self):
        assert compare(ast.Const(42)) == 42

    def test_pooled_constants(self):
        source, pool = generate_python(ast.Const(bag(rec(a=1))))
        assert "_pool[0]" in source
        assert pool == [bag(rec(a=1))]

    def test_let_becomes_assignment(self):
        expr = ast.Let("x", ast.Const(2), ast.Binop(OpAdd(), ast.Var("x"), ast.Var("x")))
        assert compare(expr) == 4

    def test_for_becomes_loop(self):
        expr = ast.For("x", ast.Const(bag(1, 2)), ast.Binop(OpAdd(), ast.Var("x"), ast.Const(1)))
        assert compare(expr) == bag(2, 3)

    def test_if_lazy(self):
        # The untaken branch must not execute (it would fail).
        failing = ast.Unop(OpDot("a"), ast.Const(5))
        expr = ast.If(ast.Const(True), ast.Const(1), failing)
        assert compare(expr) == 1

    def test_get_constant(self):
        expr = ast.GetConstant("T")
        assert compare(expr, constants={"T": bag(1)}) == bag(1)

    def test_shadowed_binders_are_renamed(self):
        expr = ast.Let(
            "x",
            ast.Const(1),
            ast.Binop(
                OpAdd(),
                ast.Unop(
                    __import__("repro.data.operators", fromlist=["OpCount"]).OpCount(),
                    ast.For("x", ast.Const(bag(1, 2, 3)), ast.Var("x")),
                ),
                ast.Var("x"),  # must still see the OUTER x
            ),
        )
        assert compare(expr) == 4

    def test_weird_variable_names_sanitised(self):
        expr = ast.Let("tmp-1$", ast.Const(5), ast.Var("tmp-1$"))
        assert compare(expr) == 5

    def test_source_attached(self):
        fn = compile_nnrc_to_callable(ast.Const(1), name="myquery")
        assert re.search(r"def myquery\S*\(", fn.__source__)


def _representative_ops():
    from repro.data import operators as ops

    unary = [
        ops.OpIdentity(), ops.OpNeg(), ops.OpBag(), ops.OpFlatten(),
        ops.OpRec("a"), ops.OpDot("a"), ops.OpRemove("a"), ops.OpProject(["a"]),
        ops.OpDistinct(), ops.OpCount(), ops.OpSum(), ops.OpAvg(),
        ops.OpMin(), ops.OpMax(), ops.OpSingleton(), ops.OpToString(),
        ops.OpNumNeg(), ops.OpSortBy([("a", False)]), ops.OpLike("%x%"),
        ops.OpSubstring(1, 2), ops.OpLimit(3), ops.OpDateYear(),
        ops.OpDateMonth(), ops.OpDateDay(),
    ]
    binary = [cls() for cls in __import__("repro.data.operators", fromlist=["BINARY_OPS"]).BINARY_OPS]
    return unary, binary


def test_every_operator_has_python_codegen():
    """No operator may silently lack a backend mapping."""
    unary, binary = _representative_ops()
    for op in unary:
        generate_python(ast.Unop(op, ast.Var("x")))
    for op in binary:
        generate_python(ast.Binop(op, ast.Var("x"), ast.Var("y")))


def test_every_operator_has_js_codegen():
    from repro.backend.js_gen import generate_javascript

    unary, binary = _representative_ops()
    for op in unary:
        generate_javascript(ast.Unop(op, ast.Var("x")))
    for op in binary:
        generate_javascript(ast.Binop(op, ast.Var("x"), ast.Var("y")))


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_codegen_equals_interpreter_on_random_pipelines(seed):
    """NRAe plan → NNRC → generated Python agrees with the interpreter."""
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=3)
    expr = nraenv_to_nnrc(plan)
    datum = random_datum(rng)
    env = random_environment(rng, bag_env=rng.random() < 0.2)
    constants = random_constants(rng)
    compare(expr, datum, env, constants)


class TestEndToEndPipelines:
    def test_camp_suite_through_codegen(self, camp_programs):
        from repro.compiler.pipeline import compile_camp

        for name, program in camp_programs.items():
            result = compile_camp(program.pattern)
            fn = compile_nnrc_to_callable(result.final, name=name)
            got = fn({"WORLD": program.world}, program.world, Record({}))
            assert got == bag(program.run()), name

    def test_tpch_q6_through_codegen(self, tpch_db):
        from repro.compiler.pipeline import compile_sql
        from repro.tpch.queries import QUERIES
        from repro.tpch.reference import REFERENCES

        result = compile_sql(QUERIES["q6"])
        fn = compile_nnrc_to_callable(result.final, name="q6")
        rows = fn(tpch_db)
        expected = REFERENCES["q6"](tpch_db)
        assert len(rows) == 1
        assert rows.items[0]["revenue"] == pytest.approx(expected[0]["revenue"])


class TestCompilationIsolation:
    """Many compilations in one process must never collide (PR 3)."""

    def test_unique_function_names_and_filenames(self):
        expr = ast.Const(1)
        a = compile_nnrc_to_callable(expr, name="query")
        b = compile_nnrc_to_callable(expr, name="query")
        assert a.__name__ != b.__name__
        assert a.__code__.co_filename != b.__code__.co_filename
        assert a({}) == b({}) == 1

    def test_traceback_shows_generated_source(self):
        import traceback

        expr = ast.Unop(OpDot("missing"), ast.Const(rec(a=1)))
        fn = compile_nnrc_to_callable(expr, name="boom")
        try:
            fn({})
        except Exception:
            rendered = "".join(traceback.format_exc())
        else:  # pragma: no cover - the query must fail
            raise AssertionError("expected a runtime error")
        assert "<nnrc:boom#" in rendered
        assert "_rt.dot" in rendered

    def test_hundred_distinct_queries_concurrently(self):
        """Compile and run 100 distinct queries across threads; each callable
        must keep computing its own query's answer."""
        from concurrent.futures import ThreadPoolExecutor

        def build_and_check(i):
            expr = ast.Binop(OpAdd(), ast.Const(i), ast.Const(1000))
            fn = compile_nnrc_to_callable(expr, name="q")
            return all(fn({}) == i + 1000 for _ in range(5))

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(build_and_check, range(100)))
        assert all(results)
