"""Tests for the JavaScript emitter (text-level; see module docstring)."""

from repro.backend.js_gen import generate_javascript
from repro.data.foreign import DateValue
from repro.data.model import bag, rec
from repro.data.operators import OpAdd, OpDot, OpFlatten, OpLike, OpSortBy
from repro.nnrc import ast


class TestEmission:
    def test_function_shape(self):
        js = generate_javascript(ast.Const(1), name="q")
        assert js.startswith("function q(rt, constants, ")
        assert "return 1;" in js

    def test_deterministic(self):
        expr = ast.For("x", ast.GetConstant("T"), ast.Unop(OpDot("a"), ast.Var("x")))
        assert generate_javascript(expr) == generate_javascript(expr)

    def test_for_becomes_loop(self):
        expr = ast.For("x", ast.GetConstant("T"), ast.Var("x"))
        js = generate_javascript(expr)
        assert "for (const" in js
        assert "rt.bagItems" in js
        assert ".push(" in js

    def test_if_else(self):
        expr = ast.If(ast.Const(True), ast.Const(1), ast.Const(2))
        js = generate_javascript(expr)
        assert "if (rt.asBool(true))" in js
        assert "} else {" in js

    def test_values_rendered_as_json(self):
        expr = ast.Const(bag(rec(a=1, b="x")))
        js = generate_javascript(expr)
        assert '[{"a": 1, "b": "x"}]' in js

    def test_dates_rendered_via_runtime(self):
        js = generate_javascript(ast.Const(DateValue(1994, 1, 1)))
        assert 'rt.date("1994-01-01")' in js

    def test_string_escaping(self):
        js = generate_javascript(ast.Const('say "hi"\n'))
        assert '"say \\"hi\\"\\n"' in js

    def test_operator_dispatch(self):
        expr = ast.Binop(OpAdd(), ast.Const(1), ast.Const(2))
        assert "rt.add(1, 2)" in generate_javascript(expr)
        expr2 = ast.Unop(OpLike("%a%"), ast.Const("abc"))
        assert 'rt.like("abc", "%a%")' in generate_javascript(expr2)

    def test_sort_keys_serialised(self):
        expr = ast.Unop(OpSortBy([("a", True)]), ast.GetConstant("T"))
        assert 'rt.sortBy' in generate_javascript(expr)

    def test_let_becomes_const(self):
        expr = ast.Let("x", ast.Const(1), ast.Var("x"))
        js = generate_javascript(expr)
        assert "const v_" in js

    def test_shadowing_renamed(self):
        inner = ast.For("x", ast.Const(bag(1)), ast.Var("x"))
        expr = ast.Let("x", ast.Const(2), ast.Binop(OpAdd(), ast.Unop(OpFlatten(), ast.Unop(__import__("repro.data.operators", fromlist=["OpBag"]).OpBag(), inner)), ast.Unop(__import__("repro.data.operators", fromlist=["OpBag"]).OpBag(), ast.Var("x"))))
        js = generate_javascript(expr)
        # two distinct sanitised binder names
        names = {line.split("const ")[1].split(" ")[0] for line in js.splitlines() if "const v_" in line}
        assert len(names) >= 2
