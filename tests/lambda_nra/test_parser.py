r"""Tests for the NRAλ parser."""

import pytest

from repro.data.model import bag, rec
from repro.lambda_nra import LFilter, LMap, LTable, LVar, eval_lnra
from repro.lambda_nra.parser import parse_lnra
from repro.sql.lexer import SqlSyntaxError

PERSONS = bag(
    rec(name="ann", age=40, kids=bag(rec(name="k1"))),
    rec(name="bob", age=20, kids=bag()),
)
DB = {"persons": PERSONS}


class TestParsing:
    def test_map_filter(self):
        expr = parse_lnra(r"map(\p -> p.name)(filter(\p -> p.age < 30)(persons))")
        assert isinstance(expr, LMap)
        assert isinstance(expr.arg, LFilter)
        assert eval_lnra(expr, {}, DB) == bag("bob")

    def test_free_names_are_tables_bound_names_are_vars(self):
        expr = parse_lnra(r"map(\p -> p)(persons)")
        assert isinstance(expr.fn.body, LVar)
        assert isinstance(expr.arg, LTable)

    def test_shadowing(self):
        expr = parse_lnra(r"map(\x -> map(\x -> x.name)(x.kids))(persons)")
        assert eval_lnra(expr, {}, DB) == bag(bag("k1"), bag())

    def test_djoin(self):
        expr = parse_lnra(r"djoin(\p -> map(\k -> struct(kid: k.name))(p.kids))(persons)")
        result = eval_lnra(expr, {}, DB)
        assert len(result) == 1
        assert result.items[0]["kid"] == "k1"

    def test_product_and_struct(self):
        expr = parse_lnra("product(bag(struct(a: 1)), bag(struct(b: 2)))")
        assert eval_lnra(expr) == bag(rec(a=1, b=2))

    def test_aggregates(self):
        assert eval_lnra(parse_lnra(r"sum(map(\p -> p.age)(persons))"), {}, DB) == 60
        assert eval_lnra(parse_lnra("count(persons)"), {}, DB) == 2
        assert eval_lnra(parse_lnra(r"max(map(\p -> p.age)(persons))"), {}, DB) == 40

    def test_arithmetic_precedence(self):
        assert eval_lnra(parse_lnra("1 + 2 * 3")) == 7

    def test_boolean_connectives(self):
        assert eval_lnra(parse_lnra("1 < 2 and not (2 < 1)")) is True

    def test_bag_literal(self):
        assert eval_lnra(parse_lnra("bag(1, 2, 2)")) == bag(1, 2, 2)
        assert eval_lnra(parse_lnra("bag()")) == bag()

    def test_union_and_in(self):
        assert eval_lnra(parse_lnra("bag(1) union bag(2)")) == bag(1, 2)
        assert eval_lnra(parse_lnra("2 in bag(1, 2)")) is True

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_lnra("1 2")


class TestThroughCompiler:
    def test_parsed_query_compiles_and_runs(self):
        from repro.compiler.pipeline import compile_lnra, compile_to_python

        expr = parse_lnra(r"map(\p -> p.name)(filter(\p -> p.age < 30)(persons))")
        result = compile_lnra(expr)
        fn = compile_to_python(result.final)
        assert fn(DB) == bag("bob")

    def test_figure1_t1_from_text(self):
        left = parse_lnra(r"map(\a -> a.city)(map(\p -> p.addr)(p0))")
        right = parse_lnra(r"map(\p -> p.addr.city)(p0)")
        db = {"p0": bag(rec(addr=rec(city="NY")))}
        assert eval_lnra(left, {}, db) == eval_lnra(right, {}, db) == bag("NY")
