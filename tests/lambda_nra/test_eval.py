"""Unit tests for NRAλ (paper §6): scoping, closures, the LINQ example."""

import pytest

from repro.data.model import bag, rec
from repro.data.operators import OpAdd, OpDot, OpLt
from repro.lambda_nra import (
    Lambda,
    LBinop,
    LConst,
    LDJoin,
    LFilter,
    LMap,
    LProduct,
    LTable,
    LUnop,
    LVar,
    eval_lnra,
)
from repro.nraenv.eval import EvalError


def dot(expr, field):
    return LUnop(OpDot(field), expr)


class TestLambdaSemantics:
    def test_map(self):
        expr = LMap(Lambda("x", dot(LVar("x"), "a")), LTable("T"))
        assert eval_lnra(expr, {}, {"T": bag(rec(a=1), rec(a=2))}) == bag(1, 2)

    def test_filter(self):
        expr = LFilter(
            Lambda("x", LBinop(OpLt(), LConst(1), dot(LVar("x"), "a"))), LTable("T")
        )
        assert eval_lnra(expr, {}, {"T": bag(rec(a=1), rec(a=2))}) == bag(rec(a=2))

    def test_filter_requires_boolean(self):
        expr = LFilter(Lambda("x", LConst(3)), LConst(bag(1)))
        with pytest.raises(EvalError):
            eval_lnra(expr)

    def test_lambda_closes_over_outer_variables(self):
        # map(λx. x.a + y) with y from the enclosing scope
        expr = LMap(
            Lambda("x", LBinop(OpAdd(), dot(LVar("x"), "a"), LVar("y"))),
            LTable("T"),
        )
        assert eval_lnra(expr, {"y": 10}, {"T": bag(rec(a=1))}) == bag(11)

    def test_shadowing(self):
        # map(λx. map(λx. x)(bag)) — inner x shadows outer.
        inner = LMap(Lambda("x", LVar("x")), LConst(bag(7)))
        expr = LMap(Lambda("x", inner), LConst(bag(1, 2)))
        assert eval_lnra(expr) == bag(bag(7), bag(7))

    def test_unbound_variable(self):
        with pytest.raises(EvalError):
            eval_lnra(LVar("nope"))

    def test_dependent_join(self):
        expr = LDJoin(
            Lambda("p", LMap(Lambda("k", LUnop(__import__("repro.data.operators", fromlist=["OpRec"]).OpRec("kid"), LVar("k"))), dot(LVar("p"), "kids"))),
            LTable("P"),
        )
        world = {"P": bag(rec(name="a", kids=bag(1, 2)))}
        result = eval_lnra(expr, {}, world)
        assert result == bag(
            rec(name="a", kids=bag(1, 2), kid=1), rec(name="a", kids=bag(1, 2), kid=2)
        )

    def test_product(self):
        expr = LProduct(LConst(bag(rec(a=1))), LConst(bag(rec(b=2))))
        assert eval_lnra(expr) == bag(rec(a=1, b=2))

    def test_linq_example_from_paper(self):
        # Persons.Where(p => p.age < 30).Select(p => p.name)
        expr = LMap(
            Lambda("p", dot(LVar("p"), "name")),
            LFilter(
                Lambda("p", LBinop(OpLt(), dot(LVar("p"), "age"), LConst(30))),
                LTable("Persons"),
            ),
        )
        persons = bag(rec(name="ann", age=40), rec(name="bob", age=20))
        assert eval_lnra(expr, {}, {"Persons": persons}) == bag("bob")


class TestStructure:
    def test_size_includes_lambdas(self):
        expr = LMap(Lambda("x", LVar("x")), LTable("T"))
        assert expr.size() == 4  # LMap + Lambda + LVar + LTable

    def test_equality(self):
        left = LMap(Lambda("x", LVar("x")), LTable("T"))
        right = LMap(Lambda("x", LVar("x")), LTable("T"))
        assert left == right
        assert left != LMap(Lambda("y", LVar("y")), LTable("T"))

    def test_pretty(self):
        expr = LMap(Lambda("p", dot(LVar("p"), "name")), LTable("P"))
        assert repr(expr) == "map (λp.(p.name)) $P"
