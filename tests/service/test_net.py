"""Tests for the asyncio network front end (repro.service.net).

The serving contract under test:

- the HTTP and TCP transports speak the existing JSON wire protocol,
  status-mapped from the structured error taxonomy;
- every response — including sheds under overload and worker crashes
  mid-query — is exactly one of ``ok / overloaded / timeout /
  runtime_error / bad_request`` (or ``compile_error`` for bad query
  text) with a valid 16-hex ``query_id``; a client never hangs;
- control ops broadcast to every worker, so any worker can serve any
  prepared handle;
- graceful drain stops admission, finishes in-flight work, and writes
  the final ``shutdown`` audit event to the query log.

Worker processes are expensive to spawn, so the live server is
module-scoped; drain tests build their own throwaway servers.
"""

import http.client
import json
import re
import socket
import threading

import pytest

from repro.obs.log import read_events
from repro.service import QueryService, ServeNetServer, WorkerPool, catalog_snapshot

ROWS = [
    {"name": "ann", "age": 40},
    {"name": "bob", "age": 20},
    {"name": "cyd", "age": 31},
]

#: Kinds a work request may legally produce (hammer test; satellite 3).
WORK_KINDS = {"ok", "overloaded", "timeout", "runtime_error", "bad_request"}

_QUERY_ID = re.compile(r"^[0-9a-f]{16}$")


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    log_path = str(tmp_path_factory.mktemp("net") / "query_log.jsonl")
    service = QueryService(trace_sample_rate=None, query_log=log_path)
    service.register_table("people", ROWS)
    service.prepare("sql", "select name from people where age > $min")
    # A bulk table whose aggregate costs real CPU, so a tiny deadline
    # reliably trips the worker-side executor timeout.
    service.register_table(
        "bulk",
        [{"qty": i % 50, "price": float(i % 97)} for i in range(20000)],
    )
    service.prepare("sql", "select sum(price) as total from bulk where qty > $min")
    pool = WorkerPool(
        2,
        lambda: catalog_snapshot(service),
        options={"fault_injection": True},
        metrics=service.metrics,
    ).start()
    server = ServeNetServer(
        service, pool=pool, http_port=0, tcp_port=0, queue_depth=2
    ).start_background()
    yield service, server, log_path
    server.stop_background()


def post(server, payload, timeout=60.0):
    host, port = server.endpoints()["http"]
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/", body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def get(server, path, timeout=30.0):
    host, port = server.endpoints()["http"]
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


# -- HTTP transport --------------------------------------------------------


def test_execute_over_http(stack):
    _, server, _ = stack
    status, body = post(
        server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
    )
    assert status == 200
    assert body["ok"]
    assert sorted(row["name"] for row in body["result"]) == ["ann", "cyd"]
    assert _QUERY_ID.match(body["query_id"])


def test_bad_handle_is_400_bad_request(stack):
    _, server, _ = stack
    status, body = post(server, {"op": "execute", "handle": "nope"})
    assert status == 400
    assert body["error"]["kind"] == "bad_request"
    assert _QUERY_ID.match(body["query_id"])


def test_compile_error_is_400(stack):
    _, server, _ = stack
    status, body = post(server, {"op": "query", "query": "select from from"})
    assert status == 400
    assert body["error"]["kind"] == "compile_error"


def test_malformed_json_is_400(stack):
    _, server, _ = stack
    host, port = server.endpoints()["http"]
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request("POST", "/", body="{not json")
        response = conn.getresponse()
        assert response.status == 400
        body = json.loads(response.read().decode("utf-8"))
        assert body["error"]["kind"] == "bad_request"
    finally:
        conn.close()


def test_tiny_deadline_is_504_timeout(stack):
    _, server, _ = stack
    status, body = post(
        server,
        {"op": "execute", "handle": "q2", "params": {"min": 5}, "timeout": 1e-9},
    )
    assert status == 504
    assert body["error"]["kind"] == "timeout"
    assert _QUERY_ID.match(body["query_id"])


def test_keep_alive_reuses_one_connection(stack):
    _, server, _ = stack
    host, port = server.endpoints()["http"]
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        for _ in range(3):
            conn.request(
                "POST",
                "/",
                body=json.dumps(
                    {"op": "execute", "handle": "q1", "params": {"min": 25}}
                ),
            )
            response = conn.getresponse()
            assert response.status == 200
            json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def test_obs_routes_on_the_query_port(stack):
    _, server, _ = stack
    status, body = get(server, "/healthz")
    assert (status, body.strip()) == (200, "ok")
    status, body = get(server, "/stats")
    assert status == 200
    stats = json.loads(body)
    assert "plan_cache" in stats and "metrics" in stats
    status, body = get(server, "/metrics")
    assert status == 200
    assert "repro_service_admitted_total" in body
    assert "repro_service_shed_total" in body
    status, _ = get(server, "/telemetry")
    assert status == 200
    status, _ = get(server, "/definitely-not-a-route")
    assert status == 404


def test_method_not_allowed(stack):
    _, server, _ = stack
    host, port = server.endpoints()["http"]
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request("PUT", "/", body="{}")
        assert conn.getresponse().status == 405
    finally:
        conn.close()


# -- control-op broadcast --------------------------------------------------


def test_register_and_prepare_broadcast_to_all_workers(stack):
    _, server, _ = stack
    status, body = post(
        server,
        {
            "op": "register",
            "table": "pets",
            "rows": [{"pet": "cat"}, {"pet": "dog"}],
        },
    )
    assert status == 200 and body["ok"]
    status, body = post(server, {"op": "prepare", "query": "select pet from pets"})
    assert status == 200 and body["ok"]
    handle = body["handle"]
    # Enough executions that (with two workers round-robining) both
    # must serve the new handle — a worker that missed the broadcast
    # would answer bad_request.
    for _ in range(6):
        status, body = post(server, {"op": "execute", "handle": handle})
        assert status == 200, body
        assert body["ok"], body
        assert sorted(row["pet"] for row in body["result"]) == ["cat", "dog"]


def test_per_worker_metrics_appear(stack):
    service, server, _ = stack
    for _ in range(4):
        post(server, {"op": "execute", "handle": "q1", "params": {"min": 25}})
    counters = service.metrics.snapshot()["counters"]
    worker_ok = {
        name: count
        for name, count in counters.items()
        if re.match(r"service\.worker\.w\d+\.ok$", name)
    }
    assert worker_ok, "no per-worker ok counters recorded"
    assert sum(worker_ok.values()) >= 4


def test_worker_label_lands_in_query_log(stack):
    service, server, log_path = stack
    status, body = post(
        server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
    )
    assert status == 200
    events = [
        e
        for e in read_events(log_path)
        if e["event"] == "query" and e["query_id"] == body["query_id"]
    ]
    assert len(events) == 1
    assert re.match(r"^w\d+$", events[0]["worker"])


# -- the taxonomy hammer (satellite 3) ------------------------------------


def test_hammer_past_admission_bound_taxonomy_holds(stack):
    """Overload the front end; every answer is structured, nobody hangs."""
    _, server, _ = stack
    results = []
    lock = threading.Lock()

    def client(n):
        host, port = server.endpoints()["http"]
        conn = http.client.HTTPConnection(host, port, timeout=60.0)
        try:
            for _ in range(5):
                conn.request(
                    "POST",
                    "/",
                    body=json.dumps(
                        {"op": "execute", "handle": "q1", "params": {"min": 25}}
                    ),
                )
                response = conn.getresponse()
                body = json.loads(response.read().decode("utf-8"))
                with lock:
                    results.append((response.status, body))
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert all(not t.is_alive() for t in threads), "a client hung"
    assert len(results) == 16 * 5
    kinds = []
    for status, body in results:
        if body.get("ok"):
            kinds.append("ok")
            assert status == 200
        else:
            kind = body["error"]["kind"]
            kinds.append(kind)
            assert kind in WORK_KINDS, body
            if kind == "overloaded":
                assert status == 503
        assert _QUERY_ID.match(str(body.get("query_id", ""))), body
    assert kinds.count("ok") > 0


def test_sheds_are_counted_in_service_shed(stack):
    service, server, _ = stack
    before = service.metrics.counter("service.shed").value
    # Fill every admission slot by hand, then drive one request through
    # the wire: it must shed, and the shed must land in service.shed.
    taken = 0
    while server.admission.try_admit():
        taken += 1
    try:
        status, body = post(
            server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
        )
    finally:
        for _ in range(taken):
            server.admission.release()
    assert status == 503
    assert body["error"]["kind"] == "overloaded"
    assert body.get("shed") is True
    assert _QUERY_ID.match(body["query_id"])
    assert service.metrics.counter("service.shed").value > before


# -- worker crash mid-query ------------------------------------------------


def test_worker_crash_is_structured_runtime_error(stack):
    _, server, _ = stack
    status, body = post(
        server,
        {"op": "execute", "handle": "q1", "params": {"min": 25}, "_inject": "crash"},
        timeout=60.0,
    )
    assert status == 500
    assert body["error"]["kind"] == "runtime_error"
    assert "crashed" in body["error"]["message"]
    assert _QUERY_ID.match(body["query_id"])
    # The pool respawned: the very next executes succeed on the same handle.
    for _ in range(4):
        status, body = post(
            server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
        )
        assert status == 200, body
        assert body["ok"], body


def test_crash_respawn_counter(stack):
    service, _, _ = stack
    assert service.metrics.counter("service.worker.respawns").value >= 1


# -- TCP JSON-lines transport ----------------------------------------------


def test_tcp_json_lines_roundtrip(stack):
    _, server, _ = stack
    host, port = server.endpoints()["tcp"]
    with socket.create_connection((host, port), timeout=30.0) as sock:
        stream = sock.makefile("rw", encoding="utf-8")
        for params, expect in (({"min": 25}, 2), ({"min": 0}, 3)):
            stream.write(
                json.dumps({"op": "execute", "handle": "q1", "params": params})
                + "\n"
            )
            stream.flush()
            reply = json.loads(stream.readline())
            assert reply["ok"], reply
            assert len(reply["result"]) == expect
        stream.write("not json\n")
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["error"]["kind"] == "bad_request"


# -- in-process mode (workers=0) ------------------------------------------


def test_in_process_mode_serves_without_a_pool():
    service = QueryService(trace_sample_rate=None, workers=2)
    service.register_table("people", ROWS)
    prepared = service.prepare("sql", "select name from people where age > $min")
    server = ServeNetServer(
        service, pool=None, http_port=0, queue_depth=2
    ).start_background()
    try:
        status, body = post(
            server, {"op": "execute", "handle": prepared.handle, "params": {"min": 25}}
        )
        assert status == 200
        assert body["ok"]
        assert len(body["result"]) == 2
    finally:
        server.stop_background()


def test_needs_at_least_one_transport():
    service = QueryService(trace_sample_rate=None)
    with pytest.raises(ValueError):
        ServeNetServer(service)
    service.close(wait=False)


# -- graceful drain --------------------------------------------------------


def test_shutdown_op_drains_and_audits(tmp_path):
    log_path = str(tmp_path / "log.jsonl")
    service = QueryService(trace_sample_rate=None, query_log=log_path)
    service.register_table("people", ROWS)
    server = ServeNetServer(service, http_port=0, queue_depth=2).start_background()
    status, body = post(server, {"op": "query", "query": "select name from people"})
    assert status == 200 and body["ok"]
    status, body = post(server, {"op": "shutdown"})
    assert status == 200 and body["ok"]
    assert body["served"] == 1
    server.stop_background()
    kinds = [event["event"] for event in read_events(log_path)]
    assert kinds.count("shutdown") == 1
    shutdown = [e for e in read_events(log_path) if e["event"] == "shutdown"][0]
    assert shutdown["reason"] == "shutdown_op"
    assert shutdown["served"] >= 1


def test_draining_server_sheds_new_work(tmp_path):
    service = QueryService(trace_sample_rate=None)
    service.register_table("people", ROWS)
    prepared = service.prepare("sql", "select name from people")
    server = ServeNetServer(service, http_port=0, queue_depth=2).start_background()
    # Flip admission into draining *without* tearing the listener down
    # yet: new work must come back as structured `overloaded`.
    server.admission.start_drain()
    status, body = post(server, {"op": "execute", "handle": prepared.handle})
    assert status == 503
    assert body["error"]["kind"] == "overloaded"
    assert "draining" in body["error"]["message"]
    assert _QUERY_ID.match(body["query_id"])
    server.stop_background()


def test_stop_background_is_idempotent(tmp_path):
    service = QueryService(trace_sample_rate=None)
    server = ServeNetServer(service, http_port=0).start_background()
    server.stop_background()
    server.stop_background()


# -- distributed tracing and fleet observability ---------------------------
#
# One query = one trace across processes: the leader ships QueryContext
# over the pipe, the worker spans under the same id and piggybacks its
# fragment on the reply, the leader stitches and tail-samples the merged
# trace.  These tests need head sampling at 1.0 and a fast heartbeat, so
# they run on their own module-scoped stack.


@pytest.fixture(scope="module")
def traced_stack(tmp_path_factory):
    log_path = str(tmp_path_factory.mktemp("traced") / "query_log.jsonl")
    service = QueryService(trace_sample_rate=1.0, query_log=log_path)
    service.register_table("people", ROWS)
    service.prepare("sql", "select name from people where age > $min")
    pool = WorkerPool(
        2,
        lambda: catalog_snapshot(service),
        options={"fault_injection": True},
        metrics=service.metrics,
    ).start()
    server = ServeNetServer(
        service, pool=pool, http_port=0, queue_depth=4, heartbeat_interval=0.2
    ).start_background()
    yield service, server, log_path
    server.stop_background()


def _wait_for(predicate, timeout=20.0, interval=0.1):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


def test_merged_trace_has_leader_and_worker_lanes(traced_stack):
    _, server, _ = traced_stack
    status, body = post(
        server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
    )
    assert status == 200 and body["ok"]
    query_id = body["query_id"]
    status, text = get(server, "/trace/" + query_id)
    assert status == 200, text
    fragment = json.loads(text)
    assert fragment["query_id"] == query_id
    lanes = {p["process"]: p["spans"] for p in fragment["processes"]}
    assert "leader" in lanes
    worker_lanes = [name for name in lanes if re.match(r"^w\d+$", name)]
    assert worker_lanes, lanes.keys()
    leader_names = [span["name"] for span in lanes["leader"]]
    assert "serve.acquire" in leader_names
    assert "serve.dispatch" in leader_names
    assert lanes[worker_lanes[0]], "worker lane shipped no spans"
    # The pre-merged chrome events place each process in its own pid lane.
    metadata = [e for e in fragment["events"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metadata} >= {"leader", worker_lanes[0]}
    pids = {e["pid"] for e in fragment["events"] if e["ph"] == "X"}
    assert len(pids) >= 2, "spans all landed in one lane"


def test_trace_available_over_wire_op_and_404_when_unknown(traced_stack):
    _, server, _ = traced_stack
    status, body = post(
        server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
    )
    assert status == 200
    status, reply = post(server, {"op": "trace", "query_id": body["query_id"]})
    assert status == 200 and reply["ok"]
    assert reply["trace"]["query_id"] == body["query_id"]
    status, text = get(server, "/trace/" + "f" * 16)
    assert status == 404
    assert "no kept trace" in json.loads(text)["error"]


def test_workers_route_reports_fleet_health_and_resources(traced_stack):
    _, server, _ = traced_stack

    def resourced_view():
        status, text = get(server, "/workers")
        assert status == 200
        view = json.loads(text)
        if all("resources" in w for w in view["workers"]):
            return view
        return None

    view = _wait_for(resourced_view)
    assert view is not None, "heartbeats never delivered resources"
    assert view["count"] == 2
    live = [w for w in view["workers"] if not w.get("retired")]
    assert len(live) == 2
    for worker in live:
        assert re.match(r"^w\d+$", worker["name"])
        assert worker["alive"] is True
        assert worker["heartbeat_age_seconds"] < 30.0
        resources = worker["resources"]
        assert resources["rss_bytes"] > 0
        assert resources["catalog_bytes"] > 0
        assert resources["uptime_seconds"] >= 0.0
        assert "plan_cache_entries" in resources


def test_worker_labeled_series_reach_metrics_exposition(traced_stack):
    from tests.promtext import parse_prometheus

    _, server, _ = traced_stack
    for _ in range(3):
        post(server, {"op": "execute", "handle": "q1", "params": {"min": 25}})

    def scraped():
        status, text = get(server, "/metrics")
        assert status == 200
        families = parse_prometheus(text)
        if "repro_worker_resource_rss_bytes" in families:
            return families
        return None

    families = _wait_for(scraped)
    assert families is not None, "no fleet families in /metrics"
    rss = families["repro_worker_resource_rss_bytes"]
    workers = {labels["worker"] for _, labels, _ in rss.samples}
    assert workers and all(re.match(r"^w\d+$", w) for w in workers)
    assert all(value > 0 for _, _, value in rss.samples)
    # Query work shipped as deltas: some repro_worker_* counter family
    # must carry per-worker execution counts.
    executed = [
        family
        for name, family in families.items()
        if name.startswith("repro_worker_") and family.kind == "counter"
        and any(value > 0 for _, _, value in family.samples)
    ]
    assert executed, "no non-zero per-worker counters"


def test_crash_audit_event_carries_in_flight_query_id(traced_stack):
    service, server, log_path = traced_stack
    status, body = post(
        server,
        {"op": "execute", "handle": "q1", "params": {"min": 25}, "_inject": "crash"},
        timeout=60.0,
    )
    assert status == 500
    assert body["error"]["kind"] == "runtime_error"
    query_id = body["query_id"]
    assert _QUERY_ID.match(query_id)

    def audited():
        crashes = [
            e for e in read_events(log_path) if e["event"] == "worker_crash"
        ]
        return crashes if crashes else None

    crashes = _wait_for(audited, timeout=30.0)
    assert crashes, "no worker_crash audit event in the query log"
    assert any(e.get("query_id") == query_id for e in crashes), crashes
    assert re.match(r"^w\d+$", crashes[-1]["worker"])
    respawns = _wait_for(
        lambda: [e for e in read_events(log_path) if e["event"] == "worker_respawn"]
        or None,
        timeout=30.0,
    )
    assert respawns, "no worker_respawn audit event in the query log"
    assert respawns[-1]["replaced"]
    counters = service.metrics.snapshot()["counters"]
    assert counters.get("service.worker.events.worker_crash", 0) >= 1
    assert counters.get("service.worker.events.worker_respawn", 0) >= 1


def test_repro_trace_cli_renders_the_merged_tree(traced_stack):
    from repro.cli import main

    _, server, _ = traced_stack
    status, body = post(
        server, {"op": "execute", "handle": "q1", "params": {"min": 25}}
    )
    assert status == 200 and body["ok"]
    host, port = server.endpoints()["http"]
    url = "http://%s:%d" % (host, port)
    import io

    out = io.StringIO()
    code = main(["trace", body["query_id"], "--url", url], out=out)
    assert code == 0, out.getvalue()
    rendered = out.getvalue()
    assert body["query_id"] in rendered
    assert "[leader]" in rendered
    assert re.search(r"\[w\d+\]", rendered)
    out = io.StringIO()
    code = main(["trace", "f" * 16, "--url", url], out=out)
    assert code != 0
    # --json mode emits the raw fragment
    out = io.StringIO()
    code = main(["trace", body["query_id"], "--url", url, "--json"], out=out)
    assert code == 0
    assert json.loads(out.getvalue())["query_id"] == body["query_id"]
