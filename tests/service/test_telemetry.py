"""Tests for per-query service telemetry (repro.service.telemetry)."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.telemetry import QueryTelemetry, TelemetryLog


def make_record(handle="q", execute_seconds=0.01, ok=True, **kwargs):
    return QueryTelemetry(
        handle=handle,
        language="sql",
        cache_hit=False,
        compile_seconds=0.005,
        execute_seconds=execute_seconds,
        ok=ok,
        **kwargs
    )


class TestQueryTelemetry:
    def test_describe_base_fields(self):
        record = make_record(rows=4)
        described = record.describe()
        assert described["handle"] == "q"
        assert described["language"] == "sql"
        assert described["cache_hit"] is False
        assert described["ok"] is True
        assert described["rows"] == 4
        assert "error_kind" not in described
        assert "analyzed" not in described
        assert "slow" not in described
        json.dumps(described)

    def test_describe_error(self):
        described = make_record(ok=False, error_kind="EvalError").describe()
        assert described["ok"] is False
        assert described["error_kind"] == "EvalError"

    def test_describe_analyzed_fields(self):
        record = make_record(
            analyzed=True,
            peak_rows=120,
            hot_operators=[{"label": "σ", "self_seconds": 0.001}],
        )
        described = record.describe()
        assert described["analyzed"] is True
        assert described["peak_rows"] == 120
        assert described["hot_operators"][0]["label"] == "σ"
        json.dumps(described)


class TestTelemetryLog:
    def test_recent_ring_is_bounded(self):
        log = TelemetryLog(capacity=3)
        for i in range(10):
            log.record(make_record(handle="q%d" % i))
        records = log.recent()
        assert [r.handle for r in records] == ["q7", "q8", "q9"]
        assert log.describe()["recorded"] == 10
        assert log.describe()["recent"] == 3

    def test_recent_n_takes_newest(self):
        log = TelemetryLog(capacity=8)
        for i in range(5):
            log.record(make_record(handle="q%d" % i))
        assert [r.handle for r in log.recent(2)] == ["q3", "q4"]

    def test_slow_marking_and_ring(self):
        log = TelemetryLog(capacity=8, slow_query_seconds=0.1)
        log.record(make_record(handle="fast", execute_seconds=0.01))
        log.record(make_record(handle="slow", execute_seconds=0.5))
        log.record(make_record(handle="at-threshold", execute_seconds=0.1))
        assert [r.handle for r in log.slow()] == ["slow", "at-threshold"]
        assert all(r.slow for r in log.slow())
        assert log.recent()[0].slow is False
        assert log.describe()["slow"] == 2
        assert "slow" in log.recent()[1].describe()

    def test_slow_ring_disabled_by_default(self):
        log = TelemetryLog(capacity=8)
        log.record(make_record(execute_seconds=1e9))
        assert log.slow() == []
        assert log.describe()["slow_query_seconds"] is None

    def test_counters_land_in_registry(self):
        registry = MetricsRegistry()
        log = TelemetryLog(capacity=8, slow_query_seconds=0.1, metrics=registry)
        log.record(make_record(execute_seconds=0.01))
        log.record(make_record(execute_seconds=0.2))
        counters = registry.snapshot()["counters"]
        assert counters["service.telemetry.recorded"] == 2
        assert counters["service.slow_queries"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryLog(capacity=0)

    def test_describe_is_json_safe(self):
        log = TelemetryLog(capacity=2, slow_query_seconds=0.5)
        log.record(make_record())
        json.dumps(log.describe())

    def test_thread_safety_under_concurrent_records(self):
        import threading

        log = TelemetryLog(capacity=64)
        per_thread = 500

        def hammer(tag):
            for i in range(per_thread):
                log.record(make_record(handle="%s-%d" % (tag, i)))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        described = log.describe()
        assert described["recorded"] == 8 * per_thread
        assert described["recent"] == 64
