"""Tests for per-query service telemetry (repro.service.telemetry)."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.telemetry import QueryTelemetry, TelemetryLog


def make_record(handle="q", execute_seconds=0.01, ok=True, **kwargs):
    return QueryTelemetry(
        handle=handle,
        language="sql",
        cache_hit=False,
        compile_seconds=0.005,
        execute_seconds=execute_seconds,
        ok=ok,
        **kwargs
    )


class TestQueryTelemetry:
    def test_describe_base_fields(self):
        record = make_record(rows=4)
        described = record.describe()
        assert described["handle"] == "q"
        assert described["language"] == "sql"
        assert described["cache_hit"] is False
        assert described["ok"] is True
        assert described["rows"] == 4
        assert "error_kind" not in described
        assert "analyzed" not in described
        assert "slow" not in described
        json.dumps(described)

    def test_describe_error(self):
        described = make_record(ok=False, error_kind="EvalError").describe()
        assert described["ok"] is False
        assert described["error_kind"] == "EvalError"

    def test_describe_analyzed_fields(self):
        record = make_record(
            analyzed=True,
            peak_rows=120,
            hot_operators=[{"label": "σ", "self_seconds": 0.001}],
        )
        described = record.describe()
        assert described["analyzed"] is True
        assert described["peak_rows"] == 120
        assert described["hot_operators"][0]["label"] == "σ"
        json.dumps(described)


class TestTelemetryLog:
    def test_recent_ring_is_bounded(self):
        log = TelemetryLog(capacity=3)
        for i in range(10):
            log.record(make_record(handle="q%d" % i))
        records = log.recent()
        assert [r.handle for r in records] == ["q7", "q8", "q9"]
        assert log.describe()["recorded"] == 10
        assert log.describe()["recent"] == 3

    def test_recent_n_takes_newest(self):
        log = TelemetryLog(capacity=8)
        for i in range(5):
            log.record(make_record(handle="q%d" % i))
        assert [r.handle for r in log.recent(2)] == ["q3", "q4"]

    def test_slow_marking_and_ring(self):
        log = TelemetryLog(capacity=8, slow_query_seconds=0.1)
        log.record(make_record(handle="fast", execute_seconds=0.01))
        log.record(make_record(handle="slow", execute_seconds=0.5))
        log.record(make_record(handle="at-threshold", execute_seconds=0.1))
        assert [r.handle for r in log.slow()] == ["slow", "at-threshold"]
        assert all(r.slow for r in log.slow())
        assert log.recent()[0].slow is False
        assert log.describe()["slow"] == 2
        assert "slow" in log.recent()[1].describe()

    def test_slow_ring_disabled_by_default(self):
        log = TelemetryLog(capacity=8)
        log.record(make_record(execute_seconds=1e9))
        assert log.slow() == []
        assert log.describe()["slow_query_seconds"] is None

    def test_counters_land_in_registry(self):
        registry = MetricsRegistry()
        log = TelemetryLog(capacity=8, slow_query_seconds=0.1, metrics=registry)
        log.record(make_record(execute_seconds=0.01))
        log.record(make_record(execute_seconds=0.2))
        counters = registry.snapshot()["counters"]
        assert counters["service.telemetry.recorded"] == 2
        assert counters["service.slow_queries"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryLog(capacity=0)

    def test_describe_is_json_safe(self):
        log = TelemetryLog(capacity=2, slow_query_seconds=0.5)
        log.record(make_record())
        json.dumps(log.describe())

    def test_select_outcome_filter(self):
        log = TelemetryLog(capacity=8)
        log.record(make_record(handle="good", ok=True))
        log.record(make_record(handle="bad", ok=False, error_kind="timeout"))
        log.record(make_record(handle="good2", ok=True))
        assert [r.handle for r in log.select(outcome="error")] == ["bad"]
        assert [r.handle for r in log.select(outcome="ok")] == ["good", "good2"]
        with pytest.raises(ValueError):
            log.select(outcome="weird")

    def test_select_handle_filter(self):
        log = TelemetryLog(capacity=8)
        for handle in ("a", "b", "a"):
            log.record(make_record(handle=handle))
        assert len(log.select(handle="a")) == 2
        assert log.select(handle="zzz") == []

    def test_select_filters_apply_before_n_cut(self):
        """Asking for the last 2 errors returns 2 errors, not whatever
        errors sit in the last 2 records."""
        log = TelemetryLog(capacity=16)
        log.record(make_record(handle="e1", ok=False))
        log.record(make_record(handle="e2", ok=False))
        for i in range(5):
            log.record(make_record(handle="ok%d" % i, ok=True))
        assert [r.handle for r in log.select(outcome="error", n=2)] == ["e1", "e2"]

    def test_select_slow_ring(self):
        log = TelemetryLog(capacity=8, slow_query_seconds=0.1)
        log.record(make_record(handle="fast", execute_seconds=0.01))
        log.record(make_record(handle="slow", execute_seconds=0.5))
        assert [r.handle for r in log.select(slow=True)] == ["slow"]

    def test_query_id_and_started_at_in_describe(self):
        record = make_record(query_id="abc123", started_at=1700000000.0)
        described = record.describe()
        assert described["query_id"] == "abc123"
        assert described["started_at"] == 1700000000.0
        json.dumps(described)

    def test_query_id_omitted_when_absent(self):
        described = make_record().describe()
        assert "query_id" not in described
        assert described["started_at"] > 0  # stamped at construction

    def test_trace_fragment_in_describe(self):
        record = make_record()
        assert "trace" not in record.describe()
        record.trace = {"query_id": "abc", "events": []}
        assert record.describe()["trace"]["query_id"] == "abc"
        json.dumps(record.describe())

    def test_thread_safety_under_concurrent_records(self):
        import threading

        log = TelemetryLog(capacity=64)
        per_thread = 500

        def hammer(tag):
            for i in range(per_thread):
                log.record(make_record(handle="%s-%d" % (tag, i)))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        described = log.describe()
        assert described["recorded"] == 8 * per_thread
        assert described["recent"] == 64
