"""Columnar tables in the catalog and column-oriented worker snapshots.

Large registrations get a columnar twin built eagerly (the engine's
fused chains then find it cached); worker snapshots ship those tables
column-oriented through a payload that is built once and shared by
reference across snapshots; ``rows_from_wire`` inverts both wire forms
and preserves the columnar back-link on the receiving side.
"""

import asyncio
import json

import pytest

from repro.data.columnar import cached_columnar
from repro.data.model import Bag, Record, bag, rec
from repro.service import Catalog, QueryService, WorkerPool, catalog_snapshot
from repro.service.catalog import COLUMNAR_MIN_ROWS, rows_from_wire

BIG = [{"g": i % 3, "v": i} for i in range(COLUMNAR_MIN_ROWS + 8)]


class TestColumnarRegistration:
    def test_large_table_stored_columnar(self):
        catalog = Catalog()
        info = catalog.register_table("big", BIG)
        assert info.columnar
        assert cached_columnar(info.rows) is not None
        assert info.describe()["columnar"] is True

    def test_small_table_stays_row_only(self):
        catalog = Catalog()
        info = catalog.register_table("small", [{"a": 1}])
        assert not info.columnar
        assert cached_columnar(info.rows) is None
        assert info.describe()["columnar"] is False


class TestWirePayload:
    def test_columnar_table_ships_columns(self):
        catalog = Catalog()
        info = catalog.register_table("big", BIG)
        payload = info.wire_payload()
        assert set(payload) == {"columns", "count", "schema"}
        assert payload["count"] == len(BIG)
        assert payload["columns"]["v"] == [row["v"] for row in BIG]
        json.dumps(payload)  # picklable/plain data for spawn

    def test_row_table_ships_rows(self):
        catalog = Catalog()
        info = catalog.register_table("small", [{"a": 1}])
        payload = info.wire_payload()
        assert set(payload) == {"rows", "schema"}

    def test_payload_cached_and_shared(self):
        catalog = Catalog()
        info = catalog.register_table("big", BIG)
        assert info.wire_payload() is info.wire_payload()

    def test_heterogeneous_columnar_table_falls_back_to_rows(self):
        rows = [{"a": i} for i in range(COLUMNAR_MIN_ROWS)] + [{"b": 1}]
        catalog = Catalog()
        info = catalog.register_table("ragged", rows)
        assert info.columnar
        payload = info.wire_payload()
        assert "rows" in payload and "columns" not in payload
        assert rows_from_wire(payload) == info.rows


class TestRowsFromWire:
    def test_columns_form_round_trips_with_backlink(self):
        catalog = Catalog()
        info = catalog.register_table("big", BIG)
        rebuilt = rows_from_wire(info.wire_payload())
        assert rebuilt == info.rows
        assert cached_columnar(rebuilt) is not None  # already columnar

    def test_rows_form_round_trips(self):
        payload = {"rows": [{"a": 1}, {"a": 2}], "schema": ["a"]}
        assert rows_from_wire(payload) == bag(rec(a=1), rec(a=2))

    def test_dates_survive_the_column_wire(self):
        from repro.data.foreign import DateValue

        rows = Bag(
            [
                Record({"d": DateValue(1995, 1, day % 28 + 1)})
                for day in range(COLUMNAR_MIN_ROWS)
            ]
        )
        catalog = Catalog()
        info = catalog.register_table("dated", rows)
        payload = info.wire_payload()
        assert payload["columns"]["d"][0] == {"$date": "1995-01-01"}
        assert rows_from_wire(payload) == info.rows


def test_snapshot_shares_payloads_across_calls():
    service = QueryService(trace_sample_rate=None)
    try:
        service.register_table("big", BIG)
        first = catalog_snapshot(service)
        second = catalog_snapshot(service)
        assert first["tables"]["big"] is second["tables"]["big"]
        assert "columns" in first["tables"]["big"]
    finally:
        service.close(wait=False)


def test_worker_executes_from_columnar_snapshot():
    leader = QueryService(trace_sample_rate=None)
    leader.register_table("big", BIG)
    leader.prepare("sql", "select g, sum(v) as total from big group by g")
    pool = WorkerPool(1, lambda: catalog_snapshot(leader))
    try:
        pool.start()

        async def go():
            pool.bind(asyncio.get_event_loop())
            worker = await pool.acquire(30.0)
            return await pool.request(
                worker, {"op": "execute", "handle": "q1"}, timeout=30.0
            )

        loop = asyncio.new_event_loop()
        try:
            reply = loop.run_until_complete(go())
        finally:
            loop.close()
        assert reply["ok"], reply
        got = {(row["g"], row["total"]) for row in reply["result"]}
        want = {}
        for row in BIG:
            want[row["g"]] = want.get(row["g"], 0) + row["v"]
        assert got == set(want.items())
    finally:
        pool.close()
        leader.close(wait=False)
