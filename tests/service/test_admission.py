"""Tests for the admission controller (repro.service.admission).

The contract: a fixed in-flight capacity checked in O(1); over-capacity
and draining requests are shed (counted in ``service.shed``); releases
re-open slots; ``wait_idle`` is the drain barrier.
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionController


def test_admits_up_to_capacity_then_sheds():
    gate = AdmissionController(capacity=3)
    assert [gate.try_admit() for _ in range(3)] == [True, True, True]
    assert gate.try_admit() is False
    assert gate.inflight == 3


def test_release_reopens_a_slot():
    gate = AdmissionController(capacity=1)
    assert gate.try_admit()
    assert not gate.try_admit()
    gate.release()
    assert gate.try_admit()


def test_unbalanced_release_raises():
    gate = AdmissionController(capacity=1)
    with pytest.raises(RuntimeError):
        gate.release()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        AdmissionController(capacity=0)


def test_draining_sheds_everything_new():
    gate = AdmissionController(capacity=4)
    assert gate.try_admit()
    gate.start_drain()
    assert gate.try_admit() is False
    assert gate.draining
    # The in-flight request keeps its slot until it releases.
    assert gate.inflight == 1
    gate.release()
    assert gate.inflight == 0


def test_shed_message_distinguishes_full_from_draining():
    gate = AdmissionController(capacity=1)
    assert gate.try_admit()
    assert "full" in gate.shed_message()
    gate.start_drain()
    assert "draining" in gate.shed_message()


def test_wait_idle_blocks_until_last_release():
    gate = AdmissionController(capacity=2)
    assert gate.wait_idle(timeout=0.01)  # idle at birth
    assert gate.try_admit()
    assert not gate.wait_idle(timeout=0.05)
    released = threading.Event()

    def releaser():
        released.wait(5.0)
        gate.release()

    thread = threading.Thread(target=releaser)
    thread.start()
    released.set()
    assert gate.wait_idle(timeout=5.0)
    thread.join()


def test_metrics_count_admits_and_sheds():
    metrics = MetricsRegistry()
    gate = AdmissionController(capacity=1, metrics=metrics)
    gate.try_admit()
    gate.try_admit()  # shed
    gate.try_admit()  # shed
    counters = metrics.snapshot()["counters"]
    assert counters["service.admitted"] == 1
    assert counters["service.shed"] == 2
    assert metrics.snapshot()["gauges"]["service.inflight"] == 1


def test_describe_and_repr():
    gate = AdmissionController(capacity=2)
    gate.try_admit()
    doc = gate.describe()
    assert doc == {"capacity": 2, "inflight": 1, "draining": False}
    assert "1/2" in repr(gate)
    gate.start_drain()
    assert "draining" in repr(gate)


def test_concurrent_admits_never_exceed_capacity():
    gate = AdmissionController(capacity=8)
    admitted = []
    lock = threading.Lock()
    peak = [0]

    def worker():
        for _ in range(200):
            if gate.try_admit():
                with lock:
                    admitted.append(1)
                    peak[0] = max(peak[0], gate.inflight)
                gate.release()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert peak[0] <= 8
    assert gate.inflight == 0
    assert gate.wait_idle(timeout=0.1)
