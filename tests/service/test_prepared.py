"""Prepared queries: compile once, execute many, bind params at run time."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.service import BadRequest, CompileError, compile_plan, parse_query
from repro.service.plan_key import plan_key


@pytest.fixture
def people():
    return {
        "people": bag(
            rec(name="ann", age=40),
            rec(name="bob", age=20),
            rec(name="cyd", age=31),
        )
    }


def plan_for(text, language="sql"):
    ast = parse_query(language, text)
    return compile_plan(language, ast, key=plan_key(language, ast))


class TestCompiledPlan:
    def test_execute_many_times(self, people):
        plan = plan_for("select name from people where age > 25")
        for _ in range(3):
            result = plan.execute(people)
            assert result == bag(rec(name="ann"), rec(name="cyd"))

    def test_params_bound_at_execute_time(self, people):
        plan = plan_for("select name from people where age > $min and age < $max")
        assert plan.params == ("max", "min")
        young = plan.execute(people, {"min": 0, "max": 25})
        old = plan.execute(people, {"min": 35, "max": 99})
        assert young == bag(rec(name="bob"))
        assert old == bag(rec(name="ann"))

    def test_missing_param_is_bad_request(self, people):
        plan = plan_for("select name from people where age > $min")
        with pytest.raises(BadRequest, match=r"unbound parameters: \$min"):
            plan.execute(people, {})

    def test_unknown_param_is_bad_request(self, people):
        plan = plan_for("select name from people where age > $min")
        with pytest.raises(BadRequest, match=r"unknown parameters: \$typo"):
            plan.execute(people, {"min": 1, "typo": 2})

    def test_binding_does_not_mutate_constants(self, people):
        plan = plan_for("select name from people where age > $min")
        plan.execute(people, {"min": 30})
        assert "$min" not in people

    def test_string_and_in_list_params(self, people):
        plan = plan_for("select name from people where name = $who")
        assert plan.execute(people, {"who": "bob"}) == bag(rec(name="bob"))
        in_plan = plan_for("select name from people where name in ($x, $y)")
        assert in_plan.execute(people, {"x": "ann", "y": "cyd"}) == bag(
            rec(name="ann"), rec(name="cyd")
        )


class TestCompileErrors:
    def test_syntax_error(self):
        with pytest.raises(CompileError):
            parse_query("sql", "selec a from t")

    def test_translation_error(self):
        # GROUP BY over an expression is outside the supported subset and
        # fails in translation, after parsing
        with pytest.raises(CompileError):
            plan_for("select a + 1 from t group by a + 1")

    def test_unknown_language(self):
        with pytest.raises(CompileError):
            parse_query("prolog", "likes(a, b).")

    def test_timings_recorded(self):
        plan = plan_for("select a from t")
        assert plan.compile_seconds > 0
        assert set(plan.timings) == {"to_nraenv", "nraenv_opt", "to_nnrc", "nnrc_opt"}


class TestOtherLanguages:
    def test_oql_plan(self):
        plan = plan_for("select p.name from p in people", language="oql")
        constants = {
            "people": bag(rec(name="ann", age=40), rec(name="bob", age=20))
        }
        assert plan.execute(constants) == bag("ann", "bob")

    def test_lnra_plan(self):
        plan = plan_for(r"map(\x -> x.a)(t)", language="lnra")
        assert plan.execute({"t": bag(rec(a=1), rec(a=2))}) == bag(1, 2)
