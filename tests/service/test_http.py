"""Tests for the HTTP observability sidecar (repro.service.http).

The sidecar promises a second, read-only window onto a live service:
Prometheus scrapes must parse, probes must answer while the service is
executing queries, and bad requests must come back as 4xx JSON rather
than killing the serving thread.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ObsHttpServer, QueryService
from tests.promtext import parse_prometheus


@pytest.fixture
def service():
    svc = QueryService(
        cache_capacity=8,
        workers=2,
        trace_sample_rate=1.0,
        slow_query_seconds=60.0,
    )
    svc.register_table(
        "people",
        [
            {"name": "ann", "age": 40},
            {"name": "bob", "age": 20},
            {"name": "cyd", "age": 31},
        ],
    )
    yield svc
    svc.close(wait=False)


@pytest.fixture
def server(service):
    with ObsHttpServer(service, port=0) as srv:
        yield srv


def fetch(server, path):
    """GET a path; returns (status, content_type, body_text)."""
    try:
        with urllib.request.urlopen(server.url(path), timeout=10.0) as response:
            return response.status, response.headers["Content-Type"], response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], error.read().decode("utf-8")


class TestEndpoints:
    def test_ephemeral_port_is_bound(self, server):
        assert server.port > 0
        assert server.url("/healthz").startswith("http://127.0.0.1:")

    def test_healthz(self, server):
        status, content_type, body = fetch(server, "/healthz")
        assert status == 200
        assert body == "ok\n"
        assert content_type.startswith("text/plain")

    def test_metrics_parses_as_prometheus_exposition(self, service, server):
        assert service.query("sql", "select name from people").ok
        status, content_type, body = fetch(server, "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        families = parse_prometheus(body)
        assert families["repro_service_execute_ok_total"].sample_value() >= 1
        assert families["repro_service_execute_latency_ms"].kind == "summary"
        assert families["repro_service_execute_latency_ms_buckets"].kind == "histogram"

    def test_stats_document(self, service, server):
        service.query("sql", "select name from people")
        status, _, body = fetch(server, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["telemetry"]["recorded"] == 1
        assert stats["traces"]["kept"] == 1
        assert stats["uptime_seconds"] >= 0
        assert "last_60s" in stats["rates"]
        assert stats["sampling"]["rate"] == 1.0

    def test_telemetry_and_params(self, service, server):
        service.query("sql", "select name from people")
        service.query("sql", "select a from missing")  # runtime error
        status, _, body = fetch(server, "/telemetry")
        assert status == 200
        document = json.loads(body)
        assert document["telemetry"]["recorded"] == 2
        assert len(document["queries"]) == 2
        assert document["queries"][0]["query_id"]

        _, _, body = fetch(server, "/telemetry?n=1")
        assert len(json.loads(body)["queries"]) == 1

        _, _, body = fetch(server, "/telemetry?outcome=error")
        errors = json.loads(body)["queries"]
        assert len(errors) == 1 and errors[0]["ok"] is False

        _, _, body = fetch(server, "/telemetry?outcome=ok&n=5")
        assert all(q["ok"] for q in json.loads(body)["queries"])

    def test_telemetry_handle_filter(self, service, server):
        prepared = service.prepare("sql", "select name from people")
        service.execute(prepared.handle)
        service.query("sql", "select age from people")
        _, _, body = fetch(server, "/telemetry?handle=%s" % prepared.handle)
        queries = json.loads(body)["queries"]
        assert len(queries) == 1
        assert queries[0]["handle"] == prepared.handle

    def test_slow_is_telemetry_slow_shorthand(self, service, server):
        service.query("sql", "select name from people")
        status, _, body = fetch(server, "/slow")
        assert status == 200
        assert json.loads(body)["queries"] == []  # threshold is 60s

    def test_unknown_path_is_404(self, server):
        status, _, body = fetch(server, "/nope")
        assert status == 404
        assert "unknown path" in json.loads(body)["error"]

    def test_bad_params_are_400(self, server):
        status, _, body = fetch(server, "/telemetry?outcome=weird")
        assert status == 400
        assert "outcome" in json.loads(body)["error"]

        status, _, _ = fetch(server, "/telemetry?n=abc")
        assert status == 400

    def test_trailing_slash_routes(self, server):
        status, _, _ = fetch(server, "/healthz/")
        assert status == 200


class TestAcceptanceCorrelation:
    def test_one_id_across_telemetry_http_log_and_trace(self, tmp_path):
        """The PR's acceptance property: one executed query yields the
        same query_id in its telemetry record, query-log audit event,
        kept trace fragment, and /telemetry HTTP response."""
        from repro.obs.log import read_events

        svc = QueryService(
            workers=1,
            trace_sample_rate=1.0,
            query_log=str(tmp_path / "query.log"),
        )
        svc.register_table("t", [{"a": 1}, {"a": 5}])
        try:
            with ObsHttpServer(svc, port=0) as server:
                assert svc.query("sql", "select a from t where a > 2").ok
                _, _, body = fetch(server, "/telemetry")
                (http_record,) = json.loads(body)["queries"]
                query_id = http_record["query_id"]
                assert query_id

                (telemetry_record,) = svc.telemetry.recent()
                assert telemetry_record.query_id == query_id
                assert svc.traces.get(query_id)["query_id"] == query_id
                (audit,) = [
                    e
                    for e in read_events(svc.query_log.path)
                    if e["event"] == "query"
                ]
                assert audit["query_id"] == query_id
        finally:
            svc.close(wait=False)


class TestConcurrency:
    def test_scrapes_during_concurrent_executes(self, service, server):
        """Probes answer correctly while the service is running queries."""
        errors = []
        stop = threading.Event()

        def scrape(path):
            while not stop.is_set():
                try:
                    status, _, body = fetch(server, path)
                    assert status == 200
                    if path == "/metrics":
                        parse_prometheus(body)
                    elif path == "/healthz":
                        assert body == "ok\n"
                    else:
                        json.loads(body)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        scrapers = [
            threading.Thread(target=scrape, args=(path,))
            for path in ("/metrics", "/telemetry", "/stats", "/healthz")
        ]
        for thread in scrapers:
            thread.start()
        try:
            for _ in range(20):
                assert service.query("sql", "select name from people where age > 25").ok
        finally:
            stop.set()
            for thread in scrapers:
                thread.join(timeout=10.0)
        assert not errors
        assert not any(thread.is_alive() for thread in scrapers)
        # and the scrape after the dust settles sees every execution
        _, _, body = fetch(server, "/metrics")
        families = parse_prometheus(body)
        assert families["repro_service_execute_ok_total"].sample_value() == 20

    def test_close_is_idempotent_and_joins(self, service):
        server = ObsHttpServer(service, port=0).start()
        status, _, _ = fetch(server, "/healthz")
        assert status == 200
        server.close()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(server.url("/healthz"), timeout=2.0)
