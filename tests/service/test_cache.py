"""PlanCache: LRU behavior and metrics counters."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import PlanCache


def test_hit_miss_counters():
    metrics = MetricsRegistry()
    cache = PlanCache(capacity=4, metrics=metrics)
    assert cache.get("k") is None
    cache.put("k", "plan")
    assert cache.get("k") == "plan"
    counters = metrics.snapshot()["counters"]
    assert counters["service.plan_cache.hits"] == 1
    assert counters["service.plan_cache.misses"] == 1
    assert counters["service.plan_cache.evictions"] == 0


def test_lru_eviction_order():
    metrics = MetricsRegistry()
    cache = PlanCache(capacity=2, metrics=metrics)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a: b is now least-recent
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert metrics.snapshot()["counters"]["service.plan_cache.evictions"] == 1
    assert metrics.snapshot()["gauges"]["service.plan_cache.size"] == 2


def test_put_existing_key_updates_without_eviction():
    cache = PlanCache(capacity=2, metrics=MetricsRegistry())
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    assert len(cache) == 2
    assert cache.get("a") == 10


def test_capacity_validated():
    with pytest.raises(ValueError):
        PlanCache(capacity=0, metrics=MetricsRegistry())


def test_stats_shape():
    cache = PlanCache(capacity=3, metrics=MetricsRegistry())
    cache.put("a", 1)
    cache.get("a")
    cache.get("zz")
    stats = cache.stats()
    assert stats == {"capacity": 3, "size": 1, "hits": 1, "misses": 1, "evictions": 0}
