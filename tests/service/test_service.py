"""QueryService: the facade and the JSON-lines wire protocol.

The acceptance-critical property: compile errors, runtime errors, and
timeouts all come back as structured error responses, and the serving
loop keeps answering afterwards.
"""

import io
import json

import pytest

from repro.service import QueryService


@pytest.fixture
def service():
    svc = QueryService(cache_capacity=8, workers=2, queue_depth=4, default_timeout=10.0)
    svc.register_table(
        "people",
        [
            {"name": "ann", "age": 40},
            {"name": "bob", "age": 20},
            {"name": "cyd", "age": 31},
        ],
    )
    yield svc
    svc.close(wait=False)


class TestFacade:
    def test_prepare_execute_repeatedly(self, service):
        prepared = service.prepare("sql", "select name from people where age > $min")
        for expected_min, names in ((25, ["ann", "cyd"]), (35, ["ann"])):
            outcome = service.execute(prepared.handle, params={"min": expected_min})
            assert outcome.ok
            assert sorted(row["name"] for row in outcome.value.items) == names
        assert service.prepared(prepared.handle).executions == 2

    def test_structural_cache_hit(self, service):
        first = service.prepare("sql", "select name from people")
        second = service.prepare("sql", "SELECT  name\nFROM people  -- same plan")
        assert not first.cached and second.cached
        assert first.plan is second.plan
        assert service.stats()["plan_cache"]["hits"] == 1

    def test_lru_eviction_recompiles(self):
        svc = QueryService(cache_capacity=1, workers=1)
        try:
            svc.register_table("t", [{"a": 1}])
            svc.prepare("sql", "select a from t")
            svc.prepare("sql", "select a from t where a > 0")  # evicts the first
            again = svc.prepare("sql", "select a from t")
            assert not again.cached
            assert svc.stats()["plan_cache"]["evictions"] == 2
        finally:
            svc.close(wait=False)

    def test_compile_error_outcome(self, service):
        outcome = service.query("sql", "selec nonsense")
        assert not outcome.ok and outcome.error.kind == "compile_error"

    def test_runtime_error_outcome(self, service):
        outcome = service.query("sql", "select a from no_such_table")
        assert not outcome.ok and outcome.error.kind == "runtime_error"
        assert "no_such_table" in str(outcome.error)

    def test_timeout_outcome(self, service):
        service.register_table("n", [{"i": i} for i in range(15)])
        cross = "select a.i from n a, n b, n c, n d where a.i = 1"
        outcome = service.query("sql", cross, timeout=0.02)
        assert not outcome.ok and outcome.error.kind == "timeout"

    def test_unknown_handle(self, service):
        outcome = service.execute("q999")
        assert not outcome.ok and outcome.error.kind == "bad_request"

    def test_close_prepared(self, service):
        prepared = service.prepare("sql", "select name from people")
        service.close_prepared(prepared.handle)
        assert not service.execute(prepared.handle).ok

    def test_service_survives_all_error_classes(self, service):
        """One facade instance keeps serving after every failure mode."""
        service.query("sql", "selec nonsense")
        service.query("sql", "select a from missing")
        ok = service.query("sql", "select name from people where age > 30")
        assert ok.ok and len(ok.value.items) == 2

    def test_one_shot_handles_do_not_accumulate(self, service):
        for _ in range(5):
            assert service.query("sql", "select name from people").ok
        assert service.stats()["prepared"] == 0


class TestWireProtocol:
    def run_lines(self, service, requests):
        stdin = io.StringIO("\n".join(json.dumps(r) if isinstance(r, dict) else r for r in requests) + "\n")
        stdout = io.StringIO()
        code = service.serve(stdin, stdout)
        assert code == 0
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_full_session(self, service):
        responses = self.run_lines(
            service,
            [
                {"op": "register", "table": "t", "rows": [{"a": 1}, {"a": 5}]},
                {"op": "prepare", "query": "select a from t where a > $x"},
                {"op": "execute", "handle": "q1", "params": {"x": 2}},
                {"op": "query", "query": "select a from t where a > 0"},
                {"op": "stats"},
                {"op": "shutdown"},
            ],
        )
        register, prepare, execute, one_shot, stats, goodbye = responses
        assert register["ok"] and register["table"]["columns"] == ["a"]
        assert prepare["ok"] and prepare["params"] == ["x"]
        assert execute["ok"] and execute["result"] == [{"a": 5}]
        assert one_shot["ok"] and len(one_shot["result"]) == 2
        assert stats["stats"]["plan_cache"]["misses"] == 2
        assert goodbye["ok"] and goodbye["served"] == 5

    def test_loop_survives_error_classes(self, service):
        """Malformed JSON, compile errors, runtime errors, and timeouts are
        answered in place and the loop keeps going."""
        service.register_table("n", [{"i": i} for i in range(15)])
        responses = self.run_lines(
            service,
            [
                "this is not json",
                {"op": "query", "query": "selec nonsense"},
                {"op": "query", "query": "select a from missing"},
                {
                    "op": "query",
                    "query": "select a.i from n a, n b, n c, n d where a.i = 1",
                    "timeout": 0.02,
                },
                {"op": "execute", "handle": "q404"},
                {"nonsense": True},
                {"op": "query", "query": "select name from people where age = 20"},
            ],
        )
        kinds = [
            r["error"]["kind"] if not r["ok"] else "ok" for r in responses
        ]
        assert kinds == [
            "bad_request",       # malformed JSON
            "compile_error",
            "runtime_error",
            "timeout",
            "bad_request",       # unknown handle
            "bad_request",       # missing op
            "ok",                # ...and the loop still works
        ]
        assert responses[-1]["result"] == [{"name": "bob"}]

    def test_missing_fields_reported(self, service):
        responses = self.run_lines(service, [{"op": "prepare"}, {"op": "register"}])
        assert all(not r["ok"] and r["error"]["kind"] == "bad_request" for r in responses)
        assert "query" in responses[0]["error"]["message"]

    def test_date_values_cross_the_wire(self, service):
        responses = self.run_lines(
            service,
            [
                {
                    "op": "register",
                    "table": "events",
                    "rows": [{"d": {"$date": "1995-06-01"}}],
                },
                {
                    "op": "query",
                    "query": "select d from events where d > date '1995-01-01'",
                },
            ],
        )
        assert responses[1]["ok"]
        assert responses[1]["result"] == [{"d": {"$date": "1995-06-01"}}]
