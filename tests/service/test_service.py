"""QueryService: the facade and the JSON-lines wire protocol.

The acceptance-critical property: compile errors, runtime errors, and
timeouts all come back as structured error responses, and the serving
loop keeps answering afterwards.
"""

import io
import json

import pytest

from repro.obs.log import read_events
from repro.service import QueryService


@pytest.fixture
def service():
    svc = QueryService(cache_capacity=8, workers=2, queue_depth=4, default_timeout=10.0)
    svc.register_table(
        "people",
        [
            {"name": "ann", "age": 40},
            {"name": "bob", "age": 20},
            {"name": "cyd", "age": 31},
        ],
    )
    yield svc
    svc.close(wait=False)


class TestFacade:
    def test_prepare_execute_repeatedly(self, service):
        prepared = service.prepare("sql", "select name from people where age > $min")
        for expected_min, names in ((25, ["ann", "cyd"]), (35, ["ann"])):
            outcome = service.execute(prepared.handle, params={"min": expected_min})
            assert outcome.ok
            assert sorted(row["name"] for row in outcome.value.items) == names
        assert service.prepared(prepared.handle).executions == 2

    def test_structural_cache_hit(self, service):
        first = service.prepare("sql", "select name from people")
        second = service.prepare("sql", "SELECT  name\nFROM people  -- same plan")
        assert not first.cached and second.cached
        assert first.plan is second.plan
        assert service.stats()["plan_cache"]["hits"] == 1

    def test_lru_eviction_recompiles(self):
        svc = QueryService(cache_capacity=1, workers=1)
        try:
            svc.register_table("t", [{"a": 1}])
            svc.prepare("sql", "select a from t")
            svc.prepare("sql", "select a from t where a > 0")  # evicts the first
            again = svc.prepare("sql", "select a from t")
            assert not again.cached
            assert svc.stats()["plan_cache"]["evictions"] == 2
        finally:
            svc.close(wait=False)

    def test_compile_error_outcome(self, service):
        outcome = service.query("sql", "selec nonsense")
        assert not outcome.ok and outcome.error.kind == "compile_error"

    def test_runtime_error_outcome(self, service):
        outcome = service.query("sql", "select a from no_such_table")
        assert not outcome.ok and outcome.error.kind == "runtime_error"
        assert "no_such_table" in str(outcome.error)

    def test_timeout_outcome(self, service):
        service.register_table("n", [{"i": i} for i in range(15)])
        cross = "select a.i from n a, n b, n c, n d where a.i = 1"
        outcome = service.query("sql", cross, timeout=0.02)
        assert not outcome.ok and outcome.error.kind == "timeout"

    def test_unknown_handle(self, service):
        outcome = service.execute("q999")
        assert not outcome.ok and outcome.error.kind == "bad_request"

    def test_close_prepared(self, service):
        prepared = service.prepare("sql", "select name from people")
        service.close_prepared(prepared.handle)
        assert not service.execute(prepared.handle).ok

    def test_service_survives_all_error_classes(self, service):
        """One facade instance keeps serving after every failure mode."""
        service.query("sql", "selec nonsense")
        service.query("sql", "select a from missing")
        ok = service.query("sql", "select name from people where age > 30")
        assert ok.ok and len(ok.value.items) == 2

    def test_one_shot_handles_do_not_accumulate(self, service):
        for _ in range(5):
            assert service.query("sql", "select name from people").ok
        assert service.stats()["prepared"] == 0


class TestAnalyze:
    def test_execute_analyzed_attaches_analysis(self, service):
        prepared = service.prepare("sql", "select name from people where age > $min")
        outcome = service.execute(prepared.handle, params={"min": 25}, analyze=True)
        assert outcome.ok
        assert sorted(row["name"] for row in outcome.value.items) == ["ann", "cyd"]
        assert outcome.analysis["peak_rows"] >= 2
        assert outcome.analysis["nodes"] >= 1
        assert "tree" in outcome.analysis

    def test_analyzed_matches_plain(self, service):
        text = "select name from people where age > 25"
        plain = service.query("sql", text)
        analyzed = service.query("sql", text, analyze=True)
        assert plain.ok and analyzed.ok
        assert plain.value == analyzed.value
        assert plain.analysis is None
        assert analyzed.analysis is not None

    def test_runtime_error_still_structured(self, service):
        outcome = service.query("sql", "select a from missing", analyze=True)
        assert not outcome.ok and outcome.error.kind == "runtime_error"


class TestTelemetry:
    def test_every_execution_is_recorded(self, service):
        service.query("sql", "select name from people")
        service.query("sql", "select a from missing")  # errors are recorded too
        records = service.telemetry.recent()
        assert len(records) == 2
        assert records[0].ok and records[0].rows == 3
        assert not records[1].ok and records[1].error_kind == "runtime_error"
        assert service.stats()["telemetry"]["recorded"] == 2

    def test_cache_hit_and_compile_seconds(self, service):
        text = "select name from people"
        service.query("sql", text)
        service.query("sql", text)
        first, second = service.telemetry.recent()
        assert not first.cache_hit and first.compile_seconds > 0
        assert second.cache_hit and second.compile_seconds == 0.0

    def test_analyzed_record_carries_cardinality(self, service):
        service.query("sql", "select name from people where age > 25", analyze=True)
        (record,) = service.telemetry.recent()
        assert record.analyzed
        assert record.peak_rows >= 2
        assert record.hot_operators

    def test_slow_query_log(self):
        svc = QueryService(workers=1, slow_query_seconds=0.0)
        try:
            svc.register_table("t", [{"a": 1}])
            svc.query("sql", "select a from t")
            assert len(svc.telemetry.slow()) == 1
            assert svc.metrics.snapshot()["counters"]["service.slow_queries"] == 1
        finally:
            svc.close(wait=False)

    def test_telemetry_ring_capacity(self):
        svc = QueryService(workers=1, telemetry_capacity=2)
        try:
            svc.register_table("t", [{"a": 1}])
            for _ in range(5):
                svc.query("sql", "select a from t")
            described = svc.stats()["telemetry"]
            assert described["recorded"] == 5 and described["recent"] == 2
        finally:
            svc.close(wait=False)


class TestCorrelation:
    """The tentpole acceptance property: one request is one ``query_id``
    end to end — telemetry record, kept trace fragment, query-log audit
    event, and wire response all carry the same id."""

    def make_service(self, tmp_path, **kwargs):
        svc = QueryService(
            workers=1,
            trace_sample_rate=kwargs.pop("trace_sample_rate", 1.0),
            query_log=str(tmp_path / "query.log"),
            **kwargs
        )
        svc.register_table("t", [{"a": 1}, {"a": 2}])
        return svc

    def test_one_query_one_id_everywhere(self, tmp_path):
        svc = self.make_service(tmp_path)
        try:
            outcome = svc.query("sql", "select a from t where a > 1")
            assert outcome.ok
            (record,) = svc.telemetry.recent()
            query_id = record.query_id
            assert query_id

            fragment = svc.traces.get(query_id)
            assert fragment is not None
            assert fragment["query_id"] == query_id
            span_names = {e["name"] for e in fragment["events"]}
            assert "service.execute" in span_names
            assert "pipeline" in span_names
            assert "executor.run" in span_names

            assert record.trace is fragment

            events = read_events(svc.query_log.path)
            audits = [e for e in events if e["event"] == "query"]
            assert len(audits) == 1
            assert audits[0]["query_id"] == query_id
            assert audits[0]["outcome"] == "ok"
        finally:
            svc.close(wait=False)

    def test_wire_response_id_matches_telemetry(self, tmp_path):
        svc = self.make_service(tmp_path)
        try:
            response = svc.handle_request(
                {"op": "query", "query": "select a from t"}
            )
            assert response["ok"]
            (record,) = svc.telemetry.recent()
            assert response["query_id"] == record.query_id
        finally:
            svc.close(wait=False)

    def test_each_request_gets_a_fresh_id(self, tmp_path):
        svc = self.make_service(tmp_path)
        try:
            ids = set()
            for _ in range(5):
                response = svc.handle_request({"op": "query", "query": "select a from t"})
                ids.add(response["query_id"])
            assert len(ids) == 5
        finally:
            svc.close(wait=False)

    def test_non_query_ops_are_correlated_too(self, tmp_path):
        svc = self.make_service(tmp_path)
        try:
            response = svc.handle_request({"op": "stats"})
            assert response["ok"] and response["query_id"]
        finally:
            svc.close(wait=False)

    def test_error_event_shares_the_id(self, tmp_path):
        svc = self.make_service(tmp_path)
        try:
            outcome = svc.query("sql", "select a from missing")
            assert not outcome.ok
            (record,) = svc.telemetry.recent()
            events = read_events(svc.query_log.path)
            kinds = {e["event"] for e in events}
            assert kinds == {"query", "error"}
            for event in events:
                assert event["query_id"] == record.query_id
            error = next(e for e in events if e["event"] == "error")
            assert "missing" in error["message"]
        finally:
            svc.close(wait=False)

    def test_log_lines_up_with_telemetry_under_load(self, tmp_path):
        """Events written under concurrent load parse back and match the
        telemetry records one-to-one by query_id."""
        import threading

        svc = QueryService(
            workers=4,
            telemetry_capacity=256,
            trace_sample_rate=1.0,
            query_log=str(tmp_path / "query.log"),
        )
        svc.register_table("t", [{"a": i} for i in range(5)])
        try:
            def hammer():
                for _ in range(10):
                    assert svc.query("sql", "select a from t where a > 1").ok

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            telemetry_ids = {r.query_id for r in svc.telemetry.recent()}
            assert len(telemetry_ids) == 40
            audits = [
                e for e in read_events(svc.query_log.path) if e["event"] == "query"
            ]
            assert len(audits) == 40
            assert {e["query_id"] for e in audits} == telemetry_ids
        finally:
            svc.close(wait=False)

    def test_slow_query_event(self, tmp_path):
        svc = self.make_service(tmp_path, slow_query_seconds=0.0)
        try:
            svc.query("sql", "select a from t")
            events = read_events(svc.query_log.path)
            slow = [e for e in events if e["event"] == "slow_query"]
            assert len(slow) == 1
            assert slow[0]["threshold_seconds"] == 0.0
        finally:
            svc.close(wait=False)


class TestTailSampling:
    def make_service(self, **kwargs):
        svc = QueryService(workers=1, **kwargs)
        svc.register_table("t", [{"a": 1}])
        return svc

    def test_rate_one_keeps_every_trace(self):
        svc = self.make_service(trace_sample_rate=1.0)
        try:
            for _ in range(3):
                svc.query("sql", "select a from t")
            assert svc.traces.describe()["kept"] == 3
            assert svc.metrics.snapshot()["counters"]["obs.trace.kept"] == 3
        finally:
            svc.close(wait=False)

    def test_rate_zero_drops_fast_ok_queries(self):
        svc = self.make_service(trace_sample_rate=0.0)
        try:
            svc.query("sql", "select a from t")
            description = svc.traces.describe()
            assert description["kept"] == 0 and description["dropped"] == 1
            assert svc.metrics.snapshot()["counters"]["obs.trace.dropped"] == 1
        finally:
            svc.close(wait=False)

    def test_rate_zero_still_keeps_errors(self):
        svc = self.make_service(trace_sample_rate=0.0)
        try:
            svc.query("sql", "select a from missing")
            assert svc.traces.describe()["kept"] == 1
            (fragment,) = svc.traces.recent()
            assert fragment["events"]
        finally:
            svc.close(wait=False)

    def test_rate_zero_still_keeps_slow_queries(self):
        svc = self.make_service(trace_sample_rate=0.0, slow_query_seconds=0.0)
        try:
            svc.query("sql", "select a from t")
            assert svc.traces.describe()["kept"] == 1
        finally:
            svc.close(wait=False)

    def test_none_disables_tracing_entirely(self):
        svc = self.make_service(trace_sample_rate=None)
        try:
            svc.query("sql", "select a from t")
            description = svc.traces.describe()
            assert description["kept"] == 0 and description["dropped"] == 0
            assert "sampling" not in svc.stats()
            (record,) = svc.telemetry.recent()
            assert record.trace is None
        finally:
            svc.close(wait=False)

    def test_stats_surface_obs_state(self):
        svc = self.make_service(trace_sample_rate=1.0)
        try:
            svc.query("sql", "select a from t")
            stats = svc.stats()
            assert stats["sampling"]["rate"] == 1.0
            assert stats["traces"]["kept"] == 1
            assert stats["uptime_seconds"] >= 0
            assert stats["rates"]["last_60s"]["count"] == 1
        finally:
            svc.close(wait=False)


class TestWireProtocol:
    def run_lines(self, service, requests):
        stdin = io.StringIO("\n".join(json.dumps(r) if isinstance(r, dict) else r for r in requests) + "\n")
        stdout = io.StringIO()
        code = service.serve(stdin, stdout)
        assert code == 0
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_full_session(self, service):
        responses = self.run_lines(
            service,
            [
                {"op": "register", "table": "t", "rows": [{"a": 1}, {"a": 5}]},
                {"op": "prepare", "query": "select a from t where a > $x"},
                {"op": "execute", "handle": "q1", "params": {"x": 2}},
                {"op": "query", "query": "select a from t where a > 0"},
                {"op": "stats"},
                {"op": "shutdown"},
            ],
        )
        register, prepare, execute, one_shot, stats, goodbye = responses
        assert register["ok"] and register["table"]["columns"] == ["a"]
        assert prepare["ok"] and prepare["params"] == ["x"]
        assert execute["ok"] and execute["result"] == [{"a": 5}]
        assert one_shot["ok"] and len(one_shot["result"]) == 2
        assert stats["stats"]["plan_cache"]["misses"] == 2
        assert goodbye["ok"] and goodbye["served"] == 5

    def test_loop_survives_error_classes(self, service):
        """Malformed JSON, compile errors, runtime errors, and timeouts are
        answered in place and the loop keeps going."""
        service.register_table("n", [{"i": i} for i in range(15)])
        responses = self.run_lines(
            service,
            [
                "this is not json",
                {"op": "query", "query": "selec nonsense"},
                {"op": "query", "query": "select a from missing"},
                {
                    "op": "query",
                    "query": "select a.i from n a, n b, n c, n d where a.i = 1",
                    "timeout": 0.02,
                },
                {"op": "execute", "handle": "q404"},
                {"nonsense": True},
                {"op": "query", "query": "select name from people where age = 20"},
            ],
        )
        kinds = [
            r["error"]["kind"] if not r["ok"] else "ok" for r in responses
        ]
        assert kinds == [
            "bad_request",       # malformed JSON
            "compile_error",
            "runtime_error",
            "timeout",
            "bad_request",       # unknown handle
            "bad_request",       # missing op
            "ok",                # ...and the loop still works
        ]
        assert responses[-1]["result"] == [{"name": "bob"}]

    def test_missing_fields_reported(self, service):
        responses = self.run_lines(service, [{"op": "prepare"}, {"op": "register"}])
        assert all(not r["ok"] and r["error"]["kind"] == "bad_request" for r in responses)
        assert "query" in responses[0]["error"]["message"]

    def test_analyze_flag_returns_analysis_over_the_wire(self, service):
        responses = self.run_lines(
            service,
            [
                {
                    "op": "query",
                    "query": "select name from people where age > 25",
                    "analyze": True,
                },
            ],
        )
        (response,) = responses
        assert response["ok"] and len(response["result"]) == 2
        analysis = response["analysis"]
        assert analysis["peak_rows"] >= 2
        assert isinstance(analysis["tree"], str)

    def test_metrics_op_returns_prometheus_text(self, service):
        responses = self.run_lines(
            service,
            [
                {"op": "query", "query": "select name from people"},
                {"op": "metrics"},
            ],
        )
        metrics = responses[1]
        assert metrics["ok"]
        assert "repro_service_execute_ok_total" in metrics["prometheus"]
        assert metrics["prometheus"].endswith("\n")
        assert metrics["metrics"]["counters"]["service.execute.ok"] >= 1

    def test_telemetry_op(self, service):
        responses = self.run_lines(
            service,
            [
                {"op": "query", "query": "select name from people"},
                {"op": "query", "query": "select age from people"},
                {"op": "telemetry", "n": 1},
                {"op": "telemetry", "slow": True},
            ],
        )
        recent = responses[2]
        assert recent["ok"]
        assert recent["telemetry"]["recorded"] == 2
        assert len(recent["queries"]) == 1
        assert recent["queries"][0]["ok"] is True
        slow = responses[3]
        assert slow["ok"] and slow["queries"] == []

    def test_telemetry_op_outcome_and_handle_filters(self, service):
        responses = self.run_lines(
            service,
            [
                {"op": "query", "query": "select name from people"},
                {"op": "query", "query": "select a from missing"},
                {"op": "telemetry", "outcome": "error"},
                {"op": "telemetry", "outcome": "ok"},
                {"op": "telemetry", "filter_handle": "q999"},
                {"op": "telemetry", "outcome": "weird"},
            ],
        )
        errors = responses[2]
        assert errors["ok"] and len(errors["queries"]) == 1
        assert errors["queries"][0]["error_kind"] == "runtime_error"
        oks = responses[3]
        assert len(oks["queries"]) == 1 and oks["queries"][0]["ok"]
        assert responses[4]["queries"] == []
        bad = responses[5]
        assert not bad["ok"] and bad["error"]["kind"] == "bad_request"

    def test_traces_op(self):
        svc = QueryService(workers=1, trace_sample_rate=1.0)
        try:
            svc.register_table("t", [{"a": 1}])
            responses = self.run_lines(
                svc,
                [
                    {"op": "query", "query": "select a from t"},
                    {"op": "query", "query": "select a from t where a > 0"},
                    {"op": "traces"},
                    {"op": "traces", "n": 1},
                ],
            )
            traces = responses[2]
            assert traces["ok"] and traces["kept"] == 2
            assert [f["query_id"] for f in traces["traces"]] == [
                responses[0]["query_id"],
                responses[1]["query_id"],
            ]
            assert any(
                e["name"] == "service.execute" for e in traces["traces"][0]["events"]
            )
            newest = responses[3]["traces"]
            assert len(newest) == 1
            assert newest[0]["query_id"] == responses[1]["query_id"]
        finally:
            svc.close(wait=False)

    def test_every_response_carries_a_query_id(self, service):
        responses = self.run_lines(
            service,
            [
                {"op": "query", "query": "select name from people"},
                {"op": "stats"},
                {"op": "nope"},  # even structured errors are correlated
            ],
        )
        assert all(r.get("query_id") for r in responses)

    def test_date_values_cross_the_wire(self, service):
        responses = self.run_lines(
            service,
            [
                {
                    "op": "register",
                    "table": "events",
                    "rows": [{"d": {"$date": "1995-06-01"}}],
                },
                {
                    "op": "query",
                    "query": "select d from events where d > date '1995-01-01'",
                },
            ],
        )
        assert responses[1]["ok"]
        assert responses[1]["result"] == [{"d": {"$date": "1995-06-01"}}]
