"""Catalog: registration, schemas, JSON ingestion, snapshots."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.service import Catalog, CatalogError


class TestRegistration:
    def test_register_plain_rows(self):
        catalog = Catalog()
        info = catalog.register_table("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert info.columns == ("a", "b")
        assert len(catalog.constants()["t"].items) == 2

    def test_register_bag(self):
        catalog = Catalog()
        info = catalog.register_table("t", bag(rec(a=1), rec(a=2, c=3)))
        assert info.columns == ("a", "c")

    def test_declared_schema_validates(self):
        catalog = Catalog()
        catalog.register_table("ok", [{"a": 1}], schema=["a", "b"])
        with pytest.raises(CatalogError, match="outside the declared schema"):
            catalog.register_table("bad", [{"a": 1, "z": 2}], schema=["a"])

    def test_non_record_rows_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError, match="records"):
            catalog.register_table("t", [1, 2, 3])

    def test_dollar_names_reserved_for_params(self):
        with pytest.raises(CatalogError, match="invalid table name"):
            Catalog().register_table("$t", [])

    def test_replace_and_drop(self):
        catalog = Catalog()
        catalog.register_table("t", [{"a": 1}])
        catalog.register_table("t", [{"a": 1}, {"a": 2}])
        assert len(catalog.table("t").rows.items) == 2
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_constants_snapshot_is_stable(self):
        """A snapshot taken before a registration must not change."""
        catalog = Catalog()
        catalog.register_table("t", [{"a": 1}])
        snapshot = catalog.constants()
        catalog.register_table("u", [{"b": 2}])
        assert "u" not in snapshot
        assert "u" in catalog.constants()


class TestJsonIngestion:
    def test_load_json_file(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text('{"t": [{"a": 1}], "u": [{"d": {"$date": "1995-06-01"}}]}')
        catalog = Catalog()
        tables = catalog.load_json(str(path))
        assert sorted(t.name for t in tables) == ["t", "u"]
        from repro.data.foreign import DateValue

        assert catalog.table("u").rows.items[0]["d"] == DateValue(1995, 6, 1)

    def test_missing_file(self):
        with pytest.raises(CatalogError, match="cannot read"):
            Catalog().load_json("/no/such/file.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(CatalogError, match="malformed JSON"):
            Catalog().load_json(str(path))

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text("[1, 2]")
        with pytest.raises(CatalogError, match="JSON object"):
            Catalog().load_json(str(path))
