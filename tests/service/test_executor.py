"""SessionExecutor: structured outcomes for every failure mode."""

import threading
import time

from repro.obs.metrics import MetricsRegistry
from repro.service import BadRequest, SessionExecutor


def test_ok_outcome_and_latency_metric():
    metrics = MetricsRegistry()
    with SessionExecutor(workers=2, metrics=metrics) as executor:
        outcome = executor.submit(lambda: 41 + 1)
    assert outcome.ok and outcome.value == 42
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["service.execute.ok"] == 1
    assert snapshot["histograms"]["service.execute.latency_ms"]["count"] == 1


def test_runtime_error_is_structured():
    metrics = MetricsRegistry()
    with SessionExecutor(workers=1, metrics=metrics) as executor:
        outcome = executor.submit(lambda: 1 // 0)
    assert not outcome.ok
    assert outcome.error.kind == "runtime_error"
    assert "ZeroDivisionError" in str(outcome.error)
    assert metrics.snapshot()["counters"]["service.execute.runtime_error"] == 1


def test_service_errors_pass_through_with_their_kind():
    def raise_bad():
        raise BadRequest("unbound parameters: $x")

    with SessionExecutor(workers=1, metrics=MetricsRegistry()) as executor:
        outcome = executor.submit(raise_bad)
    assert outcome.error.kind == "bad_request"


def test_timeout_is_structured_and_does_not_block_caller():
    metrics = MetricsRegistry()
    release = threading.Event()
    executor = SessionExecutor(workers=1, metrics=metrics)
    try:
        start = time.perf_counter()
        outcome = executor.submit(lambda: release.wait(5), timeout=0.05)
        waited = time.perf_counter() - start
        assert not outcome.ok and outcome.error.kind == "timeout"
        assert waited < 2.0
        assert metrics.snapshot()["counters"]["service.execute.timeout"] == 1
    finally:
        release.set()
        executor.shutdown()


def test_admission_queue_rejects_when_full():
    metrics = MetricsRegistry()
    gate = threading.Event()
    executor = SessionExecutor(workers=1, queue_depth=0, metrics=metrics)
    try:
        results = []
        thread = threading.Thread(
            target=lambda: results.append(executor.submit(lambda: gate.wait(5)))
        )
        thread.start()
        time.sleep(0.05)  # let the first request occupy the only slot
        rejected = executor.submit(lambda: 1, timeout=1)
        assert rejected.error is not None and rejected.error.kind == "overloaded"
        assert metrics.snapshot()["counters"]["service.execute.rejected"] == 1
        gate.set()
        thread.join()
        assert results[0].ok
        # the slot is reclaimed once the worker finishes
        assert executor.submit(lambda: 7).value == 7
    finally:
        gate.set()
        executor.shutdown()


def test_shutdown_rejects_new_work():
    executor = SessionExecutor(workers=1, metrics=MetricsRegistry())
    executor.shutdown()
    outcome = executor.submit(lambda: 1)
    assert outcome.error is not None and outcome.error.kind == "overloaded"
