"""Tests for leader-side fleet aggregation and its /metrics exposition.

The :class:`~repro.service.fleet.Fleet` is the leader's view of the
worker processes: per-worker metric registries fed by shipped deltas,
resource gauges fed by heartbeats, and the ``/workers`` health join.
The second half validates the worker-labeled Prometheus families
through the strict test-side parser — one HELP/TYPE per family, one
sample per worker, an independent bucket ladder per worker.
"""

import math

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry, snapshot_delta
from repro.service.fleet import RESOURCE_GAUGES, Fleet
from tests.promtext import parse_prometheus


def _delta(build):
    """A shipped delta: what ``build`` records on a fresh registry."""
    registry = MetricsRegistry()
    baseline = registry.snapshot()
    build(registry)
    return snapshot_delta(baseline, registry.snapshot())


class TestFleetDeltas:
    def test_deltas_accumulate_per_worker(self):
        fleet = Fleet()
        fleet.apply_delta("w0", _delta(lambda r: r.counter("queries").inc(2)))
        fleet.apply_delta("w0", _delta(lambda r: r.counter("queries").inc(3)))
        fleet.apply_delta("w1", _delta(lambda r: r.counter("queries").inc(7)))
        snapshots = fleet.worker_snapshots()
        assert snapshots["w0"]["counters"]["queries"] == 5
        assert snapshots["w1"]["counters"]["queries"] == 7

    def test_empty_or_missing_delta_is_ignored(self):
        metrics = MetricsRegistry()
        fleet = Fleet(metrics=metrics)
        fleet.apply_delta("w0", None)
        fleet.apply_delta("w0", {"counters": {}, "gauges": {}, "histograms": {}})
        assert fleet.worker_snapshots() == {}
        assert metrics.snapshot()["counters"].get("service.fleet.deltas", 0) == 0
        fleet.apply_delta("w0", _delta(lambda r: r.counter("c").inc()))
        assert metrics.snapshot()["counters"]["service.fleet.deltas"] == 1

    def test_histogram_deltas_merge_sample_equivalently(self):
        fleet = Fleet()
        direct = MetricsRegistry()
        for chunk in ([1, 5, 9], [200, 3], [70]):
            fleet.apply_delta(
                "w0",
                _delta(lambda r, c=chunk: [r.histogram("lat").record(v) for v in c]),
            )
            for value in chunk:
                direct.histogram("lat").record(value)
        merged = fleet.registry("w0").histogram("lat")
        assert merged.count == 6
        assert merged.buckets == direct.histogram("lat").buckets
        assert merged.quantile(0.5) == direct.histogram("lat").quantile(0.5)


class TestFleetResources:
    def test_resources_mirror_to_gauges_and_survive_lookup(self):
        metrics = MetricsRegistry()
        fleet = Fleet(metrics=metrics)
        doc = {key: index + 1.0 for index, key in enumerate(RESOURCE_GAUGES)}
        doc["pid"] = 1234  # not in RESOURCE_GAUGES: stored, not mirrored
        fleet.set_resources("w0", doc, now=100.0)
        assert fleet.resources("w0") == doc
        gauges = fleet.worker_snapshots()["w0"]["gauges"]
        for key in RESOURCE_GAUGES:
            assert gauges["resource.%s" % key] == doc[key]
        assert "resource.pid" not in gauges
        assert metrics.snapshot()["counters"]["service.fleet.heartbeats"] == 1

    def test_non_dict_resources_are_ignored(self):
        fleet = Fleet()
        fleet.set_resources("w0", None)
        fleet.set_resources("w0", "oops")
        assert fleet.resources("w0") is None
        assert fleet.worker_snapshots() == {}


class TestFleetDescribe:
    def test_join_of_pool_liveness_pending_and_heartbeats(self):
        fleet = Fleet()
        fleet.attach_pool(
            lambda: {
                "count": 2,
                "workers": [
                    {"name": "w0", "alive": True},
                    {"name": "w1", "alive": False},
                ],
            },
            lambda: {"w0": 3},
        )
        fleet.set_resources("w0", {"rss_bytes": 1}, now=0.0)
        view = fleet.describe()
        assert view["count"] == 2
        w0, w1 = view["workers"]
        assert w0["name"] == "w0" and w0["alive"] and w0["pending"] == 3
        assert w0["resources"] == {"rss_bytes": 1}
        assert w0["heartbeat_age_seconds"] >= 0.0
        assert w1["name"] == "w1" and not w1["alive"] and w1["pending"] == 0
        assert "heartbeat_age_seconds" not in w1

    def test_retired_workers_stay_listed_after_respawn(self):
        fleet = Fleet()
        fleet.apply_delta("w0", _delta(lambda r: r.counter("queries").inc(9)))
        fleet.attach_pool(lambda: {"count": 1, "workers": [{"name": "w2", "alive": True}]})
        names = {entry["name"]: entry for entry in fleet.describe()["workers"]}
        assert names["w2"]["alive"] and "retired" not in names["w2"]
        assert names["w0"]["retired"] and not names["w0"]["alive"]

    def test_describe_without_pool_lists_known_workers(self):
        fleet = Fleet()
        fleet.apply_delta("w5", _delta(lambda r: r.counter("c").inc()))
        view = fleet.describe()
        assert view == {
            "count": 1,
            "workers": [{"name": "w5", "alive": False, "pending": 0, "retired": True}],
        }


class TestFleetExposition:
    """The worker-labeled families in /metrics, via the strict parser."""

    def _scrape(self):
        leader = MetricsRegistry()
        leader.counter("service.queries").inc(10)
        leader.histogram("service.latency_ms").record(4)
        fleet = Fleet()
        for worker, latencies in (("w0", [1, 3, 900]), ("w1", [250])):
            fleet.apply_delta(
                worker,
                _delta(
                    lambda r, ls=latencies: (
                        r.counter("service.queries").inc(len(ls)),
                        [r.histogram("service.latency_ms").record(v) for v in ls],
                    )
                ),
            )
        fleet.set_resources("w0", {"rss_bytes": 2048, "plan_cache_hit_rate": 0.5})
        return parse_prometheus(prometheus_text(leader, fleet=fleet))

    def test_worker_counter_family_has_one_labeled_sample_per_worker(self):
        families = self._scrape()
        family = families["repro_worker_service_queries_total"]
        assert family.kind == "counter"
        assert family.sample_value(worker="w0") == 3
        assert family.sample_value(worker="w1") == 1
        # the leader's own unlabeled family coexists under its own name
        assert families["repro_service_queries_total"].sample_value() == 10

    def test_resource_gauges_ride_the_same_labeled_exposition(self):
        families = self._scrape()
        assert families["repro_worker_resource_rss_bytes"].sample_value(worker="w0") == 2048
        assert (
            families["repro_worker_resource_plan_cache_hit_rate"].sample_value(worker="w0")
            == 0.5
        )

    def test_worker_histograms_have_independent_bucket_ladders(self):
        families = self._scrape()
        buckets = families["repro_worker_service_latency_ms_buckets"]
        assert buckets.kind == "histogram"
        assert buckets.sample_value("_count", worker="w0") == 3
        assert buckets.sample_value("_count", worker="w1") == 1
        assert buckets.sample_value("_bucket", worker="w0", le="+Inf") == 3
        assert buckets.sample_value("_bucket", worker="w1", le="+Inf") == 1
        # w1's single 250ms sample is <= 256 but not <= 4
        assert buckets.sample_value("_bucket", worker="w1", le="256") == 1
        summary = families["repro_worker_service_latency_ms"]
        assert summary.kind == "summary"
        assert summary.sample_value("_sum", worker="w0") == 1 + 3 + 900

    def test_help_and_type_once_per_family_across_workers(self):
        # parse_prometheus already rejects duplicate declarations; this
        # pins that every fleet family actually carries a HELP string.
        for name, family in self._scrape().items():
            assert family.help, "family %r missing HELP" % name
            if name.startswith("repro_worker_"):
                for _, labels, _ in family.samples:
                    assert "worker" in labels, (name, labels)

    def test_fleetless_scrape_is_unchanged(self):
        leader = MetricsRegistry()
        leader.counter("c").inc()
        assert prometheus_text(leader) == prometheus_text(leader, fleet=None)
        families = parse_prometheus(prometheus_text(leader, fleet=Fleet()))
        assert set(families) == {"repro_c_total"}

    def test_values_are_finite_floats(self):
        for family in self._scrape().values():
            for _, _, value in family.samples:
                assert not math.isnan(value)
