"""Plan-cache keys: structural equality ⇒ equal keys ⇒ equal results.

The hypothesis properties generate random WHERE-clause expression trees,
render each tree with randomized formatting (keyword case, whitespace,
comments, redundant parentheses), and check the two soundness directions
the cache relies on:

1. the same tree always hashes to the same key, however it is written;
2. whenever two independently drawn queries get the same key, their
   compiled plans compute the same function on random data.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.compiler.pipeline import compile_parsed, parse_source
from repro.data.model import Bag, rec
from repro.service import ast_fingerprint, plan_key
from repro.service.prepared import collect_params


def key_of(text, language="sql"):
    return plan_key(language, parse_source(language, text))


class TestUnitCases:
    def test_formatting_is_invisible(self):
        assert key_of("select a from t") == key_of(
            "SELECT  a\nFROM t   -- trailing comment\n;"
        )

    def test_structure_is_visible(self):
        baseline = key_of("select a from t")
        assert baseline != key_of("select b from t")
        assert baseline != key_of("select a from u")
        assert baseline != key_of("select a from t where a > 1")

    def test_literal_types_distinguished(self):
        assert key_of("select a from t where a > 1") != key_of(
            "select a from t where a > 1.0"
        )
        assert key_of("select a from t where a > 1") != key_of(
            "select a from t where a > '1'"
        )

    def test_params_are_part_of_the_key(self):
        assert key_of("select a from t where a > $x") != key_of(
            "select a from t where a > $y"
        )
        assert key_of("select a from t where a > $x") != key_of(
            "select a from t where a > 1"
        )

    def test_language_is_part_of_the_key(self):
        sql = parse_source("sql", "select a from t")
        assert plan_key("sql", sql) != plan_key("oql", sql)

    def test_fingerprint_is_deterministic_text(self):
        node = parse_source("sql", "select a, b from t where a between 1 and 2")
        assert ast_fingerprint(node) == ast_fingerprint(
            parse_source("sql", "SELECT a, b FROM t WHERE a BETWEEN 1 AND 2")
        )

    def test_other_languages_fingerprint(self):
        assert key_of("select p.name from p in people", "oql") == key_of(
            "SELECT p.name FROM p IN people", "oql"
        )
        assert key_of(r"map(\x -> x.a)(t)", "lnra") == key_of(
            r"map( \x  ->  x.a )( t )", "lnra"
        )


# -- random expression trees -------------------------------------------------

_ARITH_OPS = ["+", "*", "-"]
_CMP_OPS = [">", "<", "=", ">=", "<="]
_BOOL_OPS = ["and", "or"]

arith = st.recursive(
    st.one_of(
        st.sampled_from([("col", "a"), ("col", "b")]),
        st.integers(min_value=0, max_value=3).map(lambda n: ("int", n)),
    ),
    lambda children: st.tuples(
        st.just("bin"), st.sampled_from(_ARITH_OPS), children, children
    ),
    max_leaves=4,
)

predicate = st.recursive(
    st.tuples(st.just("cmp"), st.sampled_from(_CMP_OPS), arith, arith),
    lambda children: st.tuples(
        st.just("bool"), st.sampled_from(_BOOL_OPS), children, children
    ),
    max_leaves=3,
)


def render(tree, rng=None):
    """Render an expression tree, optionally with noisy formatting."""

    def pad(text):
        if rng is None:
            return text
        return "%s%s%s" % (" " * rng.randrange(3), text, " " * rng.randrange(2))

    def wrap(text):
        if rng is not None and rng.random() < 0.4:
            return "(%s)" % pad(text)
        return text

    def caseit(word):
        if rng is not None and rng.random() < 0.5:
            return word.upper()
        return word

    kind = tree[0]
    if kind == "col":
        return pad(tree[1])
    if kind == "int":
        return pad(str(tree[1]))
    if kind == "bin":
        # Always parenthesised, so `*`/`+` precedence cannot reassociate
        # the canonical rendering away from the generated tree.
        _, op, left, right = tree
        return "(%s %s %s)" % (render(left, rng), op, render(right, rng))
    if kind == "cmp":
        _, op, left, right = tree
        return wrap("%s %s %s" % (render(left, rng), op, render(right, rng)))
    if kind == "bool":
        _, op, left, right = tree
        # 'and'/'or' binding: parenthesise both sides so the canonical and
        # noisy renderings share one parse regardless of precedence.
        return wrap(
            "(%s) %s (%s)" % (render(left, rng), caseit(op), render(right, rng))
        )
    raise AssertionError(tree)


def query_text(tree, rng=None):
    head = "select a, b from t where" if rng is None else (
        "%s a, b %s t %s" % (
            "SELECT" if rng.random() < 0.5 else "select",
            "FROM" if rng.random() < 0.5 else "from",
            "WHERE" if rng.random() < 0.5 else "where",
        )
    )
    text = "%s %s" % (head, render(tree, rng))
    if rng is not None and rng.random() < 0.5:
        text += "  -- noise %d" % rng.randrange(10)
    return text


def run_query(text, table):
    result = compile_parsed("sql", parse_source("sql", text))
    fn = compile_nnrc_to_callable(result.final)
    return fn({"t": table})


@given(predicate, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=80, deadline=None)
def test_formatting_never_changes_the_key(tree, seed):
    rng = random.Random(seed)
    canonical = query_text(tree)
    noisy = query_text(tree, rng)
    assert key_of(canonical) == key_of(noisy), (canonical, noisy)


@given(
    predicate,
    predicate,
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
        ),
        max_size=5,
    ),
)
@settings(max_examples=60, deadline=None)
def test_equal_keys_imply_equal_results(tree1, tree2, rows):
    """Cache-key soundness: a key collision must mean the plans agree."""
    q1, q2 = query_text(tree1), query_text(tree2)
    if key_of(q1) != key_of(q2):
        return
    table = Bag([rec(a=a, b=b) for a, b in rows])
    assert run_query(q1, table) == run_query(q2, table), (q1, q2)


def test_collect_params():
    node = parse_source("sql", "select a from t where a > $lo and a < $hi")
    assert collect_params(node) == ("hi", "lo")
    assert collect_params(parse_source("sql", "select a from t")) == ()
