"""Tests for the worker-process pool (repro.service.worker).

The contract: a worker warms up from the leader's catalog snapshot with
the leader's prepared handles intact, answers wire requests over its
pipe, reports structured errors (never a dead pipe with a live client),
and the pool replaces a crashed worker with a freshly-snapshotted one.

Worker processes cost real startup time (spawn + warm-up replay), so
the live pool is module-scoped and every test leaves it serviceable.
"""

import asyncio
import json
import time

import pytest

from repro.service import QueryService, WorkerCrashed, WorkerPool, catalog_snapshot

ROWS = [
    {"name": "ann", "age": 40},
    {"name": "bob", "age": 20},
    {"name": "cyd", "age": 31},
]


@pytest.fixture(scope="module")
def leader():
    service = QueryService(trace_sample_rate=None)
    service.register_table("people", ROWS)
    service.prepare("sql", "select name from people where age > $min")
    yield service
    service.close(wait=False)


@pytest.fixture(scope="module")
def pool(leader):
    pool = WorkerPool(
        2,
        lambda: catalog_snapshot(leader),
        options={"fault_injection": True},
    ).start()
    yield pool
    pool.close()


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def roundtrip(pool, msg, timeout=30.0):
    """acquire → request → (implicit release) on a fresh event loop."""

    async def go():
        pool.bind(asyncio.get_event_loop())
        worker = await pool.acquire(timeout)
        return await pool.request(worker, dict(msg), timeout=timeout)

    return run(go())


def test_snapshot_carries_tables_and_prepared(leader):
    snapshot = catalog_snapshot(leader)
    assert "people" in snapshot["tables"]
    assert snapshot["tables"]["people"]["rows"] == ROWS
    assert set(snapshot["tables"]["people"]["schema"]) == {"name", "age"}
    assert snapshot["prepared"][0]["handle"] == "q1"
    assert snapshot["prepared"][0]["language"] == "sql"
    # The snapshot must be plain JSON-able data (picklable for spawn).
    json.dumps(snapshot)


def test_warmup_replay_makes_leader_handles_valid(pool):
    reply = roundtrip(
        pool, {"op": "execute", "handle": "q1", "params": {"min": 25}}
    )
    assert reply["ok"], reply
    assert sorted(row["name"] for row in reply["result"]) == ["ann", "cyd"]
    assert reply["_worker"] in ("w0", "w1")


def test_query_id_propagates_into_the_worker(pool):
    reply = roundtrip(
        pool,
        {
            "op": "execute",
            "handle": "q1",
            "params": {"min": 25},
            "_query_id": "cafe0123cafe0123",
        },
    )
    assert reply["ok"]
    assert reply["query_id"] == "cafe0123cafe0123"


def test_worker_reports_structured_errors(pool):
    reply = roundtrip(pool, {"op": "execute", "handle": "zz9"})
    assert reply["ok"] is False
    assert reply["error"]["kind"] == "bad_request"


def test_worker_oneshot_handles_use_their_own_prefix(pool):
    reply = roundtrip(
        pool, {"op": "query", "query": "select age from people where age > 25"}
    )
    assert reply["ok"], reply
    # A one-shot query inside worker N allocates (and frees) a "wNt…"
    # handle; the leader-broadcast handle space ("q…") stays untouched.
    reply2 = roundtrip(pool, {"op": "execute", "handle": "q1", "params": {"min": 0}})
    assert reply2["ok"], reply2
    assert len(reply2["result"]) == 3


def test_forced_handle_prepare_mirrors_leader_handle(pool):
    reply = roundtrip(
        pool,
        {"op": "prepare", "query": "select age from people", "_handle": "q77"},
    )
    assert reply["ok"], reply
    assert reply["handle"] == "q77"
    reply2 = roundtrip(pool, {"op": "execute", "handle": "q77"})
    assert reply2["ok"], reply2


def test_broadcast_reaches_every_worker(pool):
    async def go():
        pool.bind(asyncio.get_event_loop())
        replies = await pool.broadcast(
            {"op": "prepare", "query": "select name from people", "_handle": "q88"}
        )
        return replies

    replies = run(go())
    assert len(replies) == 2
    workers = {reply["_worker"] for reply in replies}
    assert workers == {h.name for h in pool._handles}
    assert all(reply["ok"] for reply in replies)


def test_crash_surfaces_and_pool_respawns(pool):
    async def go():
        pool.bind(asyncio.get_event_loop())
        worker = await pool.acquire(30.0)
        crashed = None
        try:
            await pool.request(
                worker,
                {"op": "execute", "handle": "q1", "_inject": "crash"},
                timeout=30.0,
            )
        except WorkerCrashed as exc:
            crashed = exc
        assert crashed is not None, "crash injection did not surface"
        # The replacement warms up from a fresh snapshot and joins the
        # rotation; the pool keeps answering on the same leader handle.
        for _ in range(4):
            replacement = await pool.acquire(60.0)
            reply = await pool.request(
                replacement,
                {"op": "execute", "handle": "q1", "params": {"min": 25}},
                timeout=60.0,
            )
            assert reply["ok"], reply

    run(go())
    # The respawn happens on the dead worker's IO thread; give it a beat.
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if all(handle.alive for handle in pool._handles):
            break
        time.sleep(0.05)
    assert all(handle.alive for handle in pool._handles)


def test_pool_requires_at_least_one_worker(leader):
    with pytest.raises(ValueError):
        WorkerPool(0, lambda: catalog_snapshot(leader))


def test_handle_submit_is_threadsafe_sync_api(pool):
    # submit() without the asyncio wrapper: plain concurrent futures.
    handle = pool._handles[0]
    futures = [
        handle.submit({"op": "execute", "handle": "q1", "params": {"min": 25}})
        for _ in range(3)
    ]
    for future in futures:
        reply = future.result(timeout=30.0)
        assert reply["ok"], reply


def test_worker_resources_document_shape(leader):
    from repro.service.worker import worker_resources

    doc = worker_resources(leader, catalog_bytes=4096, started_at=time.time() - 2.0)
    assert doc["pid"] > 0
    assert doc["catalog_bytes"] == 4096
    assert doc["uptime_seconds"] >= 2.0
    assert doc["rss_bytes"] > 0
    assert doc["columnar_cache_bytes"] >= 0
    assert doc["plan_cache_entries"] >= 0
    assert 0.0 <= doc["plan_cache_hit_rate"] <= 1.0
    # JSON-serializable: it ships on the heartbeat reply.
    json.dumps(doc)
