"""TPC-H end-to-end tests (paper §6).

- All 21 supported queries parse, translate, optimize, and reach NNRC
  (the paper's compilation claim; q13 is excluded there too).
- The executable subset runs against the micro database and matches the
  straight-Python reference implementations — through the interpreter
  *and* through generated Python code.
"""

import pytest

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.compiler.pipeline import compile_sql
from repro.data.foreign import DateValue
from repro.data.model import Record, to_python
from repro.nraenv.eval import eval_nraenv
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.queries import EXECUTABLE, QUERIES, QUERY_NAMES
from repro.tpch.reference import REFERENCES


def normalise(rows):
    def convert(value):
        if isinstance(value, DateValue):
            return value.isoformat()
        if isinstance(value, float):
            return round(value, 4)
        return value

    return sorted(
        tuple(sorted((key, convert(value)) for key, value in row.items()))
        for row in rows
    )


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_query_compiles_through_full_pipeline(name):
    result = compile_sql(QUERIES[name])
    nraenv_plan = result.output("to_nraenv")
    optimized = result.output("nraenv_opt")
    nnrc = result.output("nnrc_opt")
    assert nraenv_plan.size() > 0
    assert optimized.size() <= nraenv_plan.size()
    assert nnrc.size() > 0


def test_query13_is_not_supported():
    """The paper: 'all TPC-H queries with the exception of one' (q13)."""
    assert "q13" not in QUERIES
    assert len(QUERY_NAMES) == 21


@pytest.mark.parametrize("name", EXECUTABLE)
def test_executable_query_matches_reference(name, tpch_db):
    plan = sql_to_nraenv(parse_sql(QUERIES[name]))
    rows = to_python(eval_nraenv(plan, Record({}), None, tpch_db))
    assert normalise(rows) == normalise(REFERENCES[name](tpch_db)), name


@pytest.mark.parametrize("name", ("q1", "q6", "q14", "q15", "q22"))
def test_optimized_and_codegen_agree_with_reference(name, tpch_db):
    result = compile_sql(QUERIES[name])
    # optimized NRAe
    rows_opt = to_python(
        eval_nraenv(result.output("nraenv_opt"), Record({}), None, tpch_db)
    )
    assert normalise(rows_opt) == normalise(REFERENCES[name](tpch_db))
    # generated Python from optimized NNRC
    fn = compile_nnrc_to_callable(result.final, name=name)
    rows_gen = to_python(fn(tpch_db))
    assert normalise(rows_gen) == normalise(REFERENCES[name](tpch_db))


def test_ordered_output_order_is_respected(tpch_db):
    """q1's ORDER BY: rows come out sorted, not just set-equal."""
    plan = sql_to_nraenv(parse_sql(QUERIES["q1"]))
    rows = to_python(eval_nraenv(plan, Record({}), None, tpch_db))
    keys = [(r["l_returnflag"], r["l_linestatus"]) for r in rows]
    assert keys == sorted(keys)


def test_compile_times_are_modest():
    """The paper: 'compilation time is under two seconds for all queries'.

    Absolute numbers differ (CPython vs extracted OCaml); we assert the
    same order of magnitude per query on this substrate.
    """
    for name in ("q1", "q5", "q21"):
        result = compile_sql(QUERIES[name])
        assert result.total_seconds < 10.0, (name, result.total_seconds)
