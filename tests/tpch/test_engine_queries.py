"""All 20 engine-executable TPC-H queries, end to end, vs references.

The join engine (`repro.nraenv.exec`) executes σ-over-× chains as hash
joins, which makes every supported TPC-H query (q2 excepted — NULL
semantics) runnable at micro scale.  Each must match its independent
reference implementation exactly.
"""

import pytest

from repro.data.foreign import DateValue
from repro.data.model import Record, to_python
from repro.nraenv.exec import eval_fast
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.queries import ENGINE_EXECUTABLE, QUERIES
from repro.tpch.reference import REFERENCES


def normalise(rows):
    def convert(value):
        if isinstance(value, DateValue):
            return value.isoformat()
        if isinstance(value, float):
            return round(value, 4)
        return value

    return sorted(
        tuple(sorted((key, convert(value)) for key, value in row.items()))
        for row in rows
    )


def test_engine_covers_everything_but_q2():
    assert len(ENGINE_EXECUTABLE) == 20
    assert "q2" not in ENGINE_EXECUTABLE
    assert set(ENGINE_EXECUTABLE) <= set(REFERENCES)


@pytest.mark.parametrize("name", ENGINE_EXECUTABLE)
def test_engine_query_matches_reference(name, tpch_db):
    plan = sql_to_nraenv(parse_sql(QUERIES[name]))
    rows = to_python(eval_fast(plan, Record({}), None, tpch_db))
    assert normalise(rows) == normalise(REFERENCES[name](tpch_db)), name


@pytest.mark.parametrize("name", ENGINE_EXECUTABLE)
def test_every_engine_query_returns_rows(name, tpch_db):
    """The generator curates coverage: no query is trivially empty."""
    rows = REFERENCES[name](tpch_db)
    assert rows, "%s has no qualifying rows in the micro database" % name


def test_engine_agrees_with_interpreter_on_small_join(tpch_db):
    """Spot-check engine == reference interpreter on a real query."""
    from repro.nraenv.eval import eval_nraenv

    plan = sql_to_nraenv(parse_sql(QUERIES["q3"]))
    assert eval_fast(plan, Record({}), None, tpch_db) == eval_nraenv(
        plan, Record({}), None, tpch_db
    )


def test_engine_executes_optimized_plans_too(tpch_db):
    from repro.optim.defaults import optimize_nraenv

    for name in ("q3", "q10", "q14"):
        plan = sql_to_nraenv(parse_sql(QUERIES[name]))
        optimized = optimize_nraenv(plan).plan
        rows = to_python(eval_fast(optimized, Record({}), None, tpch_db))
        assert normalise(rows) == normalise(REFERENCES[name](tpch_db)), name
