"""Tests for the TPC-H mini data generator."""

from repro.data.foreign import DateValue
from repro.data.model import Bag, Record
from repro.tpch import schema
from repro.tpch.datagen import MICRO, SMALL, TpchScale, generate


class TestDeterminism:
    def test_same_seed_same_database(self):
        assert generate(MICRO, seed=7) == generate(MICRO, seed=7)

    def test_different_seed_different_database(self):
        assert generate(MICRO, seed=7) != generate(MICRO, seed=8)


class TestSchemaConformance:
    def test_all_tables_present(self, tpch_db):
        assert set(tpch_db) == set(schema.TABLES)

    def test_rows_have_exact_columns(self, tpch_db):
        for table, columns in schema.TABLES.items():
            expected = {name for name, _ in columns}
            for row in tpch_db[table]:
                assert isinstance(row, Record)
                assert set(row.domain()) == expected, table

    def test_column_kinds(self, tpch_db):
        kind_checks = {
            "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "float": lambda v: isinstance(v, float),
            "str": lambda v: isinstance(v, str),
            "date": lambda v: isinstance(v, DateValue),
        }
        for table, columns in schema.TABLES.items():
            for row in tpch_db[table]:
                for name, kind in columns:
                    assert kind_checks[kind](row[name]), (table, name, row[name])

    def test_reference_tables_fixed_size(self, tpch_db):
        assert len(tpch_db["region"]) == 5
        assert len(tpch_db["nation"]) == 25


class TestReferentialIntegrity:
    def test_foreign_keys(self, tpch_db):
        nations = {n["n_nationkey"] for n in tpch_db["nation"]}
        regions = {r["r_regionkey"] for r in tpch_db["region"]}
        suppliers = {s["s_suppkey"] for s in tpch_db["supplier"]}
        parts = {p["p_partkey"] for p in tpch_db["part"]}
        customers = {c["c_custkey"] for c in tpch_db["customer"]}
        orders = {o["o_orderkey"] for o in tpch_db["orders"]}
        assert all(n["n_regionkey"] in regions for n in tpch_db["nation"])
        assert all(s["s_nationkey"] in nations for s in tpch_db["supplier"])
        assert all(c["c_nationkey"] in nations for c in tpch_db["customer"])
        assert all(o["o_custkey"] in customers for o in tpch_db["orders"])
        for ps in tpch_db["partsupp"]:
            assert ps["ps_partkey"] in parts
            assert ps["ps_suppkey"] in suppliers
        for line in tpch_db["lineitem"]:
            assert line["l_orderkey"] in orders
            assert line["l_partkey"] in parts
            assert line["l_suppkey"] in suppliers

    def test_line_dates_consistent(self, tpch_db):
        orders = {o["o_orderkey"]: o for o in tpch_db["orders"]}
        for line in tpch_db["lineitem"]:
            order = orders[line["l_orderkey"]]
            assert order["o_orderdate"] <= line["l_shipdate"]
            assert line["l_shipdate"] <= line["l_receiptdate"]


class TestCoverageGuarantees:
    """The distribution pins that keep every executed query non-trivial."""

    def test_heavy_order_for_q18(self, tpch_db):
        totals = {}
        for line in tpch_db["lineitem"]:
            totals[line["l_orderkey"]] = totals.get(line["l_orderkey"], 0) + line["l_quantity"]
        assert max(totals.values()) > 300

    def test_orderless_customers_for_q22(self, tpch_db):
        with_orders = {o["o_custkey"] for o in tpch_db["orders"]}
        all_customers = {c["c_custkey"] for c in tpch_db["customer"]}
        assert all_customers - with_orders

    def test_every_segment_present_for_q3(self, tpch_db):
        segments = {c["c_mktsegment"] for c in tpch_db["customer"]}
        assert segments == set(schema.SEGMENTS)

    def test_q16_sizes_present(self, tpch_db):
        assert any(p["p_size"] == 14 for p in tpch_db["part"])

    def test_scales(self):
        small = generate(SMALL, seed=7)
        assert len(small["lineitem"]) > len(generate(MICRO, seed=7)["lineitem"])
        custom = generate(TpchScale(suppliers=2, parts=3, customers=2, orders=4), seed=1)
        assert len(custom["supplier"]) == 2
