"""Tests for the OQL frontend: parsing, evaluation, translation (§6)."""

import pytest

from repro.data.model import Bag, Record, bag, rec, to_python
from repro.nraenv.eval import eval_nraenv
from repro.oql import eval_oql, oql_to_nraenv, parse_oql
from repro.oql import ast

PERSONS = bag(
    rec(name="ann", age=40, kids=bag(rec(name="k1", age=9), rec(name="k2", age=12))),
    rec(name="bob", age=20, kids=bag()),
    rec(name="cyd", age=31, kids=bag(rec(name="k3", age=2))),
)
DB = {"persons": PERSONS}


def both(text, constants=DB):
    """Evaluate via the interpreter and via NRAe; assert agreement."""
    program = parse_oql(text)
    direct = eval_oql(program, constants)
    plan = oql_to_nraenv(program)
    translated = eval_nraenv(plan, Record({}), None, constants)
    assert direct == translated, text
    return direct


class TestParser:
    def test_select_from_where(self):
        program = parse_oql("select p.name from p in persons where p.age > 30")
        sfw = program.query
        assert isinstance(sfw, ast.SelectFromWhere)
        assert sfw.bindings[0].var == "p"

    def test_struct(self):
        program = parse_oql("struct(a: 1, b: 'x')")
        assert isinstance(program.query, ast.OStruct)

    def test_defines(self):
        program = parse_oql("define a as bag(1); define b as a; b")
        assert [d.name for d in program.defines] == ["a", "b"]

    def test_multiple_bindings(self):
        program = parse_oql("select k from p in persons, k in p.kids")
        assert len(program.query.bindings) == 2

    def test_depth_metric(self):
        nested = parse_oql("select (select k from k in p.kids) from p in persons")
        assert nested.query.depth() == 2


class TestSemantics:
    def test_simple_select(self):
        assert both("select p.name from p in persons where p.age > 30") == bag(
            "ann", "cyd"
        )

    def test_struct_construction(self):
        result = both(
            "select struct(n: p.name, k: count(p.kids)) from p in persons"
        )
        assert rec(n="ann", k=2) in result.items

    def test_dependent_binding(self):
        result = both("select k.name from p in persons, k in p.kids")
        assert result == bag("k1", "k2", "k3")

    def test_nested_query_in_projection(self):
        result = both(
            "select struct(n: p.name, young: (select k from k in p.kids where k.age < 10)) "
            "from p in persons where p.age > 35"
        )
        assert to_python(result) == [
            {"n": "ann", "young": [{"name": "k1", "age": 9}]}
        ]

    def test_aggregates(self):
        assert both("sum(select p.age from p in persons)") == 91
        assert both("max(select p.age from p in persons)") == 40
        assert both("avg(select k.age from p in persons, k in p.kids)") == pytest.approx(23 / 3)
        assert both("count(persons)") == 3

    def test_exists(self):
        assert both("exists p in persons : p.age > 35") is True
        assert both("exists p in persons : p.age > 99") is False

    def test_distinct(self):
        assert both("select distinct count(p.kids) from p in persons") == bag(2, 0, 1)

    def test_bag_ops(self):
        assert both("bag(1, 2) union bag(2)") == bag(1, 2, 2)
        assert both("bag(1, 2, 2) except bag(2)") == bag(1, 2)
        assert both("bag(1, 2) intersect bag(2, 3)") == bag(2)
        assert both("2 in bag(1, 2)") is True

    def test_flatten(self):
        assert both("flatten(select p.kids from p in persons where p.age > 35)") == bag(
            rec(name="k1", age=9), rec(name="k2", age=12)
        )

    def test_define_views(self):
        result = both(
            "define adults as select p from p in persons where p.age >= 21; "
            "define names as select a.name from a in adults; "
            "names"
        )
        assert result == bag("ann", "cyd")

    def test_arithmetic_and_boolean(self):
        assert both("1 + 2 * 3") == 7
        assert both("not (1 = 2)") is True
        assert both("(1 < 2) and (2 <= 2)") is True

    def test_variable_shadowing(self):
        # inner p shadows outer p
        result = both(
            "select (select p.age from p in p.kids) from p in persons where p.name = 'ann'"
        )
        assert result == bag(bag(9, 12))


class TestErrors:
    def test_unbound_name(self):
        with pytest.raises(Exception):
            eval_oql(parse_oql("select x.a from x in nowhere"), {})

    def test_translation_unknown_collection_defers_to_runtime(self):
        plan = oql_to_nraenv(parse_oql("select x from x in nowhere"))
        with pytest.raises(Exception):
            eval_nraenv(plan, Record({}), None, {})
