"""Unit tests for operator typing."""

import pytest

from repro.data import operators as ops
from repro.data.types import (
    TBag,
    TBool,
    TBottom,
    TDate,
    TFloat,
    TNat,
    TRecord,
    TString,
)
from repro.typing.op_typing import TypingError, type_binop, type_unop


class TestUnopTyping:
    def test_rec_and_dot(self):
        rec_t = type_unop(ops.OpRec("a"), TNat())
        assert rec_t == TRecord({"a": TNat()})
        assert type_unop(ops.OpDot("a"), rec_t) == TNat()

    def test_dot_missing_field(self):
        with pytest.raises(TypingError):
            type_unop(ops.OpDot("z"), TRecord({"a": TNat()}))

    def test_dot_on_non_record(self):
        with pytest.raises(TypingError):
            type_unop(ops.OpDot("a"), TNat())

    def test_flatten(self):
        assert type_unop(ops.OpFlatten(), TBag(TBag(TNat()))) == TBag(TNat())
        with pytest.raises(TypingError):
            type_unop(ops.OpFlatten(), TBag(TNat()))

    def test_sum_types(self):
        assert type_unop(ops.OpSum(), TBag(TNat())) == TNat()
        assert type_unop(ops.OpSum(), TBag(TFloat())) == TFloat()
        with pytest.raises(TypingError):
            type_unop(ops.OpSum(), TBag(TString()))

    def test_avg_always_float(self):
        assert type_unop(ops.OpAvg(), TBag(TNat())) == TFloat()

    def test_count(self):
        assert type_unop(ops.OpCount(), TBag(TString())) == TNat()

    def test_singleton(self):
        assert type_unop(ops.OpSingleton(), TBag(TDate())) == TDate()

    def test_remove_project(self):
        record = TRecord({"a": TNat(), "b": TBool()})
        assert type_unop(ops.OpRemove("a"), record) == TRecord({"b": TBool()})
        assert type_unop(ops.OpProject(["a"]), record) == TRecord({"a": TNat()})

    def test_bottom_propagates(self):
        assert type_unop(ops.OpDot("a"), TBottom()) == TBottom()

    def test_like_substring(self):
        assert type_unop(ops.OpLike("%a%"), TString()) == TBool()
        assert type_unop(ops.OpSubstring(1, 2), TString()) == TString()

    def test_date_parts(self):
        assert type_unop(ops.OpDateYear(), TDate()) == TNat()
        with pytest.raises(TypingError):
            type_unop(ops.OpDateYear(), TNat())


class TestBinopTyping:
    def test_eq_any(self):
        assert type_binop(ops.OpEq(), TNat(), TString()) == TBool()

    def test_union(self):
        assert type_binop(ops.OpUnion(), TBag(TNat()), TBag(TFloat())) == TBag(TFloat())
        with pytest.raises(TypingError):
            type_binop(ops.OpUnion(), TNat(), TBag(TNat()))

    def test_concat_right_bias(self):
        left = TRecord({"a": TNat()})
        right = TRecord({"a": TString(), "b": TBool()})
        assert type_binop(ops.OpConcat(), left, right) == TRecord(
            {"a": TString(), "b": TBool()}
        )

    def test_merge_concat_returns_bag(self):
        left = TRecord({"a": TNat()})
        right = TRecord({"b": TBool()})
        assert type_binop(ops.OpMergeConcat(), left, right) == TBag(
            TRecord({"a": TNat(), "b": TBool()})
        )

    def test_comparisons(self):
        assert type_binop(ops.OpLt(), TNat(), TFloat()) == TBool()
        assert type_binop(ops.OpLt(), TString(), TString()) == TBool()
        assert type_binop(ops.OpLt(), TDate(), TDate()) == TBool()
        with pytest.raises(TypingError):
            type_binop(ops.OpLt(), TString(), TNat())

    def test_arithmetic(self):
        assert type_binop(ops.OpAdd(), TNat(), TNat()) == TNat()
        assert type_binop(ops.OpAdd(), TNat(), TFloat()) == TFloat()
        assert type_binop(ops.OpDiv(), TNat(), TNat()) == TFloat()

    def test_date_shift(self):
        assert type_binop(ops.OpDatePlusDays(), TDate(), TNat()) == TDate()
        with pytest.raises(TypingError):
            type_binop(ops.OpDatePlusDays(), TDate(), TFloat())
