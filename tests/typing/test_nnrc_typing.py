"""Tests for NNRC type inference."""

import pytest

from repro.data.model import Bag, bag, rec
from repro.data.operators import OpAdd, OpBag, OpCount, OpDot, OpEq
from repro.data.types import TBag, TBool, TBottom, TNat, TRecord, TString
from repro.nnrc import ast
from repro.typing.nnrc_typing import type_nnrc
from repro.typing.op_typing import TypingError


class TestInference:
    def test_var(self):
        assert type_nnrc(ast.Var("x"), {"x": TNat()}) == TNat()

    def test_unbound_var(self):
        with pytest.raises(TypingError):
            type_nnrc(ast.Var("x"))

    def test_const(self):
        assert type_nnrc(ast.Const(bag(1, 2))) == TBag(TNat())

    def test_let(self):
        expr = ast.Let("x", ast.Const(1), ast.Binop(OpAdd(), ast.Var("x"), ast.Var("x")))
        assert type_nnrc(expr) == TNat()

    def test_let_shadowing(self):
        expr = ast.Let("x", ast.Const("s"), ast.Let("x", ast.Const(1), ast.Var("x")))
        assert type_nnrc(expr) == TNat()

    def test_for(self):
        expr = ast.For("x", ast.Var("xs"), ast.Unop(OpDot("a"), ast.Var("x")))
        xs_type = TBag(TRecord({"a": TString()}))
        assert type_nnrc(expr, {"xs": xs_type}) == TBag(TString())

    def test_for_over_non_bag(self):
        with pytest.raises(TypingError):
            type_nnrc(ast.For("x", ast.Const(5), ast.Var("x")))

    def test_for_over_empty_bag(self):
        expr = ast.For("x", ast.Const(Bag([])), ast.Var("x"))
        assert type_nnrc(expr) == TBag(TBottom())

    def test_if(self):
        expr = ast.If(ast.Const(True), ast.Const(1), ast.Const(2.5))
        assert type_nnrc(expr).__class__.__name__ == "TFloat"

    def test_if_non_boolean_cond(self):
        with pytest.raises(TypingError):
            type_nnrc(ast.If(ast.Const(1), ast.Const(1), ast.Const(2)))

    def test_if_incompatible_branches(self):
        with pytest.raises(TypingError):
            type_nnrc(ast.If(ast.Const(True), ast.Const(1), ast.Const("x")))

    def test_get_constant(self):
        expr = ast.Unop(OpCount(), ast.GetConstant("T"))
        assert type_nnrc(expr, {}, {"T": TBag(TNat())}) == TNat()


class TestPipelineTyping:
    def test_translated_plan_types_match(self):
        """NRAe inference and NNRC inference agree across Figure 5."""
        from repro.nraenv import builders as b
        from repro.translate.nraenv_to_nnrc import nraenv_to_nnrc
        from repro.typing.nraenv_typing import type_nraenv

        element = TRecord({"a": TNat(), "b": TNat()})
        consts = {"T": TBag(element)}
        env_t = TRecord({"u": TNat()})
        plan = b.chi(
            b.concat(b.id_(), b.rec_field("s", b.dot(b.env(), "u"))), b.table("T")
        )
        plan_type = type_nraenv(plan, env_t, TNat(), consts)
        expr = nraenv_to_nnrc(plan)
        expr_type = type_nnrc(expr, {"d0": TNat(), "e0": env_t}, consts)
        assert plan_type == expr_type
