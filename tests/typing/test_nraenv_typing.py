"""Tests for NRAe type inference and its soundness.

Soundness: if the plan typechecks at (env_type, input_type) and the
runtime inputs inhabit those types, evaluation succeeds and produces a
value of the inferred type — the type-soundness theorem the Coq
development proves, checked on random plans here.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import bag, rec
from repro.data.types import (
    TBag,
    TBool,
    TNat,
    TRecord,
    TString,
    type_of_value,
    value_has_type,
)
from repro.nraenv import builders as b
from repro.nraenv.eval import EvalError, eval_nraenv
from repro.optim.verify import gen_plan, random_element_bag, random_env_record
from repro.typing.nraenv_typing import type_nraenv
from repro.typing.op_typing import TypingError

ELEMENT = TRecord({"a": TNat(), "b": TNat()})
ENV = TRecord({"a": TNat(), "u": TNat()})
CONSTS = {"T": TBag(ELEMENT)}


class TestInference:
    def test_id_env(self):
        assert type_nraenv(b.id_(), ENV, ELEMENT) == ELEMENT
        assert type_nraenv(b.env(), ENV, ELEMENT) == ENV

    def test_map(self):
        plan = b.chi(b.dot(b.id_(), "a"), b.table("T"))
        assert type_nraenv(plan, ENV, TNat(), CONSTS) == TBag(TNat())

    def test_select_preserves_source_type(self):
        plan = b.sigma(b.gt(b.dot(b.id_(), "a"), b.const(1)), b.table("T"))
        assert type_nraenv(plan, ENV, TNat(), CONSTS) == TBag(ELEMENT)

    def test_select_requires_boolean_pred(self):
        plan = b.sigma(b.dot(b.id_(), "a"), b.table("T"))
        with pytest.raises(TypingError):
            type_nraenv(plan, ENV, TNat(), CONSTS)

    def test_product_concats_fields(self):
        plan = b.product(b.table("T"), b.coll(b.rec_field("z", b.const("s"))))
        result = type_nraenv(plan, ENV, TNat(), CONSTS)
        assert result == TBag(TRecord({"a": TNat(), "b": TNat(), "z": TString()}))

    def test_appenv_changes_env_type(self):
        plan = b.appenv(b.dot(b.env(), "z"), b.const(rec(z=1)))
        assert type_nraenv(plan, ENV, TNat()) == TNat()

    def test_mapenv_requires_bag_env(self):
        with pytest.raises(TypingError):
            type_nraenv(b.chie(b.env()), ENV, TNat())
        assert type_nraenv(b.chie(b.env()), TBag(ENV), TNat()) == TBag(ENV)

    def test_dep_join(self):
        body = b.coll(b.rec_field("c", b.dot(b.id_(), "a")))
        plan = b.djoin(body, b.table("T"))
        result = type_nraenv(plan, ENV, TNat(), CONSTS)
        assert result == TBag(TRecord({"a": TNat(), "b": TNat(), "c": TNat()}))

    def test_default_joins(self):
        plan = b.default(b.table("T"), b.const(bag(rec(a=1, b=2))))
        assert type_nraenv(plan, ENV, TNat(), CONSTS) == TBag(ELEMENT)

    def test_default_incompatible_rejected(self):
        plan = b.default(b.const(1), b.const("x"))
        with pytest.raises(TypingError):
            type_nraenv(plan, ENV, TNat())

    def test_unknown_constant(self):
        with pytest.raises(TypingError):
            type_nraenv(b.table("missing"), ENV, TNat(), {})


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_type_soundness_on_random_plans(seed):
    rng = random.Random(seed)
    plan = gen_plan(rng, "any", depth=2)
    try:
        inferred = type_nraenv(plan, ENV, ELEMENT, CONSTS)
    except TypingError:
        return  # ill-typed plans are out of scope
    env = random_env_record(rng)
    datum = rec(a=rng.randint(0, 5), b=rng.randint(0, 5))
    constants = {"T": random_element_bag(rng)}
    # Well-typed plans do not go wrong:
    value = eval_nraenv(plan, env, datum, constants)
    assert value_has_type(value, inferred), (
        "inferred %r but got %r of type %r for %r"
        % (inferred, value, type_of_value(value), plan)
    )


def test_typed_rewrites_preserve_typing():
    """Definition 4's typing half: on well-typed plans the default rule
    set produces plans that still typecheck, at a subtype."""
    from repro.data.types import is_subtype
    from repro.optim.defaults import optimize_nraenv

    rng = random.Random(5)
    checked = 0
    for _ in range(120):
        plan = gen_plan(rng, "any", depth=3)
        try:
            before = type_nraenv(plan, ENV, ELEMENT, CONSTS)
        except TypingError:
            continue
        optimized = optimize_nraenv(plan).plan
        after = type_nraenv(optimized, ENV, ELEMENT, CONSTS)  # must not raise
        assert is_subtype(after, before) or is_subtype(before, after), (
            plan,
            optimized,
        )
        checked += 1
    assert checked > 20
