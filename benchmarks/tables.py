"""Shared helpers for the benchmark harness: ASCII tables + result files.

Every Figure-reproduction bench prints its table (visible with ``-s``)
and also writes it under ``benchmarks/output/`` so results survive the
run; EXPERIMENTS.md records the reference numbers.

Set ``REPRO_BENCH_TRACE=1`` to additionally capture a Chrome
``trace_event`` profile of each instrumented bench's compile phase,
written next to the tables as ``benchmarks/output/<name>.trace.json``
(see :mod:`repro.obs`).  Off by default so the published timing tables
measure the uninstrumented compiler.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, List, Sequence

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")

#: Trace-artifact opt-in (environment: ``REPRO_BENCH_TRACE=1``).
TRACE_ENABLED = os.environ.get("REPRO_BENCH_TRACE", "") not in ("", "0")


@contextmanager
def maybe_observe(name: str):
    """Observe the block and emit ``output/<name>.trace.json`` if opted in."""
    if not TRACE_ENABLED:
        yield None
        return
    from repro.obs import observe
    from repro.obs.export import write_chrome_trace

    with observe() as session:
        yield session
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, name + ".trace.json")
    write_chrome_trace(path, session.tracer, session.metrics)
    print("trace artifact: %s" % path)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/output/."""
    print()
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, name + ".txt"), "w") as handle:
        handle.write(text)
