"""Rule-set ablation (the §7 analysis, quantified).

The paper's detailed p01 analysis: the NRAe-specific rewrites "allow the
pure NRA rewrites to 'kick in'" — e.g. ``χ⟨In⟩(q) ⇒ q`` never triggers
on direct-NRA plans.  This bench ablates the rule families on the CAMP
suite to quantify that interaction:

- full rule set (Fig 13 + Fig 3 + extensions + Fig 12 + classics);
- without the environment rules (Fig 3 + 13 + extensions removed);
- without the classic NRA rules (Fig 12 + classics removed).

Run with::

    pytest benchmarks/bench_ablation_rules.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.camp_suite.programs import all_programs
from repro.optim.camp_specific_rules import figure13_rules
from repro.optim.defaults import default_nraenv_rules
from repro.optim.engine import optimize
from repro.optim.nra_lifted_rules import classic_relational_rules, figure12_rules
from repro.optim.nraenv_rules import extended_env_rules, figure3_rules
from repro.translate.camp_to_nraenv import camp_to_nraenv

from tables import emit, format_table

PROGRAM_NAMES = ["p%02d" % i for i in range(1, 15)]

RULE_SETS = {
    "full": default_nraenv_rules(),
    "no_env_rules": figure12_rules() + classic_relational_rules(),
    "no_nra_rules": figure13_rules() + figure3_rules() + extended_env_rules(),
}


@pytest.fixture(scope="module")
def ablation_data():
    programs = all_programs()
    rows = []
    for name in PROGRAM_NAMES:
        plan = camp_to_nraenv(programs[name].pattern)
        sizes = {"raw": plan.size()}
        for label, rules in RULE_SETS.items():
            sizes[label] = optimize(plan, rules).plan.size()
        rows.append((name, sizes))
    return rows


def test_ablation_table(benchmark, ablation_data):
    def report():
        table = [
            (name, sizes["raw"], sizes["full"], sizes["no_env_rules"], sizes["no_nra_rules"])
            for name, sizes in ablation_data
        ]
        emit(
            "ablation_rules",
            format_table(
                "Rule-set ablation — optimized NRAe sizes (CAMP suite)",
                ["prog", "raw", "full", "no env rules", "no NRA rules"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    full_total = sum(row[2] for row in table)
    no_env_total = sum(row[3] for row in table)
    no_nra_total = sum(row[4] for row in table)
    # Each family alone is strictly worse than the combination: the env
    # rewrites and the classic rewrites enable each other (§7).
    assert full_total < no_env_total
    assert full_total < no_nra_total


def test_env_rules_unlock_nra_rules(benchmark):
    """map_into_id (χ⟨In⟩(q) ⇒ q) fires with env rules present, not without."""

    def count_fires():
        programs = all_programs()
        with_env = 0
        without_env = 0
        for name in PROGRAM_NAMES:
            plan = camp_to_nraenv(programs[name].pattern)
            with_env += optimize(plan, RULE_SETS["full"]).fired("map_into_id")
            without_env += optimize(plan, RULE_SETS["no_env_rules"]).fired(
                "map_into_id"
            )
        return with_env, without_env

    with_env, without_env = benchmark.pedantic(count_fires, rounds=1, iterations=1)
    assert with_env >= without_env
    assert with_env > 0
