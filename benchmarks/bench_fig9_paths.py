"""Figure 9 reproduction: direct CAMP→NRA vs CAMP→NRAe→NRA.

- Fig 9a: NRA query sizes through both paths (after optimization);
- Fig 9b: NRA query depths through both paths;
- Fig 9c: NNRC expression sizes through both paths.

Run with::

    pytest benchmarks/bench_fig9_paths.py --benchmark-only -s

Shape expectations (asserted): the through-NRAe plans are dramatically
smaller than the direct-NRA ones — the paper reports p01 dropping from
417 (NRA) to 78 (NRAe) *before* optimization, a >4x factor; here the
same multiple-fold gap must appear, on every program, for pre-opt NRAe
vs NRA sizes and for the final NNRC sizes.
"""

from __future__ import annotations

import pytest

from repro.camp_suite.programs import all_programs
from repro.compiler.pipeline import (
    compile_camp,
    compile_camp_to_nra_via_nraenv,
    compile_camp_via_nra,
)
from repro.translate.camp_to_nra import camp_to_nra
from repro.translate.camp_to_nraenv import camp_to_nraenv

from tables import emit, format_table

PROGRAM_NAMES = ["p%02d" % i for i in range(1, 15)]


@pytest.fixture(scope="module")
def fig9_data():
    programs = all_programs()
    rows = {}
    for name in PROGRAM_NAMES:
        pattern = programs[name].pattern
        direct = compile_camp_via_nra(pattern)        # CAMP → NRA → opt → NNRC → opt
        through = compile_camp_to_nra_via_nraenv(pattern)  # CAMP → NRAe → opt → NRA → opt
        through_nnrc = compile_camp(pattern)          # CAMP → NRAe → opt → NNRC → opt
        rows[name] = {
            "nraenv_raw": camp_to_nraenv(pattern),
            "nra_raw": camp_to_nra(pattern),
            "nra_direct": direct.output("nra_opt"),
            "nra_through": through.output("nra_opt"),
            "nnrc_direct": direct.output("nnrc_opt"),
            "nnrc_through": through_nnrc.output("nnrc_opt"),
        }
    return rows


def test_fig9a_nra_sizes(benchmark, fig9_data):
    def report():
        table = []
        for name in PROGRAM_NAMES:
            row = fig9_data[name]
            table.append(
                (
                    name,
                    row["nra_direct"].size(),
                    row["nra_through"].size(),
                    row["nraenv_raw"].size(),
                    row["nra_raw"].size(),
                )
            )
        emit(
            "fig9a_nra_sizes",
            format_table(
                "Figure 9a — NRA query sizes (direct vs through NRAe)",
                ["prog", "direct NRA opt", "through NRAe", "NRAe pre-opt", "NRA pre-opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, direct, through, nraenv_raw, nra_raw in table:
        # the paper's §7: "even before optimization, the NRAe queries
        # are much smaller than the NRA queries" (p01: 78 vs 417).
        assert nra_raw > 2 * nraenv_raw, name
        # and after optimization the through-NRAe NRA plan stays smaller.
        assert through < direct, name


def test_fig9b_nra_depths(benchmark, fig9_data):
    def report():
        table = []
        for name in PROGRAM_NAMES:
            row = fig9_data[name]
            table.append(
                (name, row["nra_direct"].depth(), row["nra_through"].depth())
            )
        emit(
            "fig9b_nra_depths",
            format_table(
                "Figure 9b — NRA query depths (direct vs through NRAe)",
                ["prog", "direct", "through NRAe"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    assert sum(row[2] for row in table) <= sum(row[1] for row in table)


def test_fig9c_nnrc_sizes(benchmark, fig9_data):
    def report():
        table = []
        for name in PROGRAM_NAMES:
            row = fig9_data[name]
            table.append(
                (name, row["nnrc_direct"].size(), row["nnrc_through"].size())
            )
        emit(
            "fig9c_nnrc_sizes",
            format_table(
                "Figure 9c — NNRC sizes (direct vs through NRAe)",
                ["prog", "through NRA", "through NRAe"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    # the paper: "this difference makes the generated NNRC code much
    # smaller" — through-NRAe must win on every program.
    for name, direct, through in table:
        assert through < direct, name


def test_p01_size_factor_matches_paper_shape(benchmark):
    """§7's headline numbers: p01 is 78 (NRAe) vs 417 (NRA) pre-opt —
    a 5.3x factor.  Our macro-generated p01 must show the same
    multiple-fold gap (exact sizes depend on the reconstructed rules)."""

    def measure():
        pattern = all_programs()["p01"].pattern
        return camp_to_nraenv(pattern).size(), camp_to_nra(pattern).size()

    nraenv_size, nra_size = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert nra_size / nraenv_size > 2.0
