"""Type-directed optimization ablation on TPC-H (paper §8).

The paper's compiler type-checks everything and uses types as rewrite
preconditions; the untyped rule set alone barely moves TPC-H plans
(their shapes need schema knowledge).  This bench quantifies the gap:
optimized sizes with and without the typed pass, under the TPC-H schema
types.

Run with::

    pytest benchmarks/bench_typed_opt.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.data.types import TRecord, TUnit
from repro.optim.defaults import optimize_nraenv
from repro.optim.typed_rules import optimize_nraenv_typed
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.queries import QUERIES, QUERY_NAMES
from repro.tpch.schema import table_types

from tables import emit, format_table


@pytest.fixture(scope="module")
def typed_data():
    constant_types = table_types()
    env_t, in_t = TRecord({}), TUnit()
    rows = []
    for name in QUERY_NAMES:
        plan = sql_to_nraenv(parse_sql(QUERIES[name]))
        untyped = optimize_nraenv(plan).plan
        typed = optimize_nraenv_typed(plan, env_t, in_t, constant_types).plan
        rows.append((name, plan.size(), untyped.size(), typed.size()))
    return rows


def test_typed_optimization_table(benchmark, typed_data):
    def report():
        emit(
            "typed_opt_tpch",
            format_table(
                "Typed-rewrite ablation — TPC-H NRAe sizes",
                ["query", "raw", "untyped opt", "typed opt"],
                typed_data,
            ),
        )
        return typed_data

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, raw, untyped, typed in table:
        assert typed <= untyped <= raw, name
    # The typed pass must find reductions the untyped one cannot.
    assert sum(row[3] for row in table) < sum(row[2] for row in table)


@pytest.mark.parametrize("name", ("q6", "q17"))
def test_typed_optimize_time(benchmark, name):
    constant_types = table_types()
    plan = sql_to_nraenv(parse_sql(QUERIES[name]))
    result = benchmark(
        optimize_nraenv_typed, plan, TRecord({}), TUnit(), constant_types
    )
    assert result.plan.size() <= plan.size()
