"""Figure 8 reproduction: the CAMP suite p01–p14 through CAMP → NRAe → NNRC.

- Fig 8a: NRAe / NRAe-opt / NNRC / NNRC-opt query sizes;
- Fig 8b: NRAe / NRAe-opt query depths;
- Fig 8c: per-stage compilation times.

Run with::

    pytest benchmarks/bench_fig8_camp.py --benchmark-only -s

Shape expectations from the paper (asserted): CAMP plans are of similar
size to the TPC-H ones but nest deeper; the optimizer is *more*
effective here than on TPC-H (it was built to remove CAMP translation
artifacts); the NRAe optimizer dominates compile time.
"""

from __future__ import annotations

import pytest

from repro.camp_suite.programs import all_programs
from repro.compiler.pipeline import compile_camp

from tables import emit, format_table, maybe_observe

PROGRAM_NAMES = ["p%02d" % i for i in range(1, 15)]


@pytest.fixture(scope="module")
def fig8_data():
    programs = all_programs()
    rows = {}
    with maybe_observe("fig8_camp"):
        for name in PROGRAM_NAMES:
            result = compile_camp(programs[name].pattern)
            rows[name] = {
                "nraenv": result.output("to_nraenv"),
                "nraenv_opt": result.output("nraenv_opt"),
                "nnrc": result.output("to_nnrc"),
                "nnrc_opt": result.output("nnrc_opt"),
                "timings": result.timings(),
            }
    return rows


def test_fig8a_query_sizes(benchmark, fig8_data):
    def report():
        table = []
        for name in PROGRAM_NAMES:
            row = fig8_data[name]
            table.append(
                (
                    name,
                    row["nraenv"].size(),
                    row["nraenv_opt"].size(),
                    row["nnrc"].size(),
                    row["nnrc_opt"].size(),
                )
            )
        emit(
            "fig8a_camp_sizes",
            format_table(
                "Figure 8a — CAMP suite query sizes",
                ["prog", "NRAe", "NRAe opt", "NNRC", "NNRC opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, nraenv, nraenv_opt, nnrc, nnrc_opt in table:
        assert nraenv_opt < nraenv, name
        assert nnrc_opt <= nnrc, name
    # the paper: the optimizer is much more effective on CAMP than on
    # TPC-H — average reduction well above 2x.
    reduction = sum(row[1] / row[2] for row in table) / len(table)
    assert reduction > 2.0, reduction


def test_fig8b_query_depths(benchmark, fig8_data):
    def report():
        table = []
        for name in PROGRAM_NAMES:
            row = fig8_data[name]
            table.append(
                (name, row["nraenv"].depth(), row["nraenv_opt"].depth())
            )
        emit(
            "fig8b_camp_depths",
            format_table(
                "Figure 8b — CAMP suite query depths",
                ["prog", "NRAe", "NRAe opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    # the paper: CAMP plans nest deeper than TPC-H plans (up to ~14).
    assert max(row[1] for row in table) >= 8
    for name, depth, opt_depth in table:
        assert opt_depth <= depth, name


def test_fig8c_compile_times(benchmark, fig8_data):
    def report():
        table = []
        for name in PROGRAM_NAMES:
            timings = fig8_data[name]["timings"]
            table.append(
                (
                    name,
                    timings["to_nraenv"],
                    timings["nraenv_opt"],
                    timings["to_nnrc"],
                    timings["nnrc_opt"],
                )
            )
        emit(
            "fig8c_camp_times",
            format_table(
                "Figure 8c — CAMP suite compilation time (s)",
                ["prog", "CAMP→NRAe", "NRAe→NRAe opt", "NRAe opt→NNRC", "NNRC→NNRC opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    # the paper: "the proportion spent in the NRAe optimizer is higher
    # than the one spent in the NNRC optimizer".
    nraenv_opt_total = sum(row[2] for row in table)
    nnrc_opt_total = sum(row[4] for row in table)
    assert nraenv_opt_total > nnrc_opt_total
    for row in table:
        assert sum(row[1:]) < 10.0, row[0]


@pytest.mark.parametrize("name", ("p01", "p06", "p12", "p14"))
def test_compile_time_per_program(benchmark, name):
    pattern = all_programs()[name].pattern
    result = benchmark(compile_camp, pattern)
    assert result.final.size() > 0
