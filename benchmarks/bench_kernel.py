"""Keyed-kernel bench: dict-based multiset ops vs the seed's naive loops.

Every evaluator, the join engine, and the generated-code runtime now run
bag operations through :mod:`repro.data.kernel`, which keys each bag
once (a cached tuple of canonical keys plus a ``Counter`` index) and
does ``minus``/``intersection``/``distinct``/``contains``/equality as
dict work — O(n+m) where the seed's per-element ``values_equal`` loops
were O(n·m).  This bench times the kernel against those original loops,
preserved verbatim in :mod:`tests.kernel_oracles`, on bags of records
with realistic key duplication (~20 rows per distinct key) so the
quadratic oracle finishes in CI.

The quick mode is wired into the CI bench-smoke job with a *hard*
threshold: at n = 10,000 the kernel must be at least 10x faster than
the oracle on ``distinct`` and ``minus``, or the job fails.

Run with::

    PYTHONPATH=src python benchmarks/bench_kernel.py
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.data.model import Bag, rec

from tables import emit, format_table
from tests.kernel_oracles import (
    naive_contains,
    naive_distinct,
    naive_equal,
    naive_minus,
)
from repro.data import kernel

#: Hard floor for the CI smoke check (quick mode).
REQUIRED_SPEEDUP = 10.0


def make_bag(n: int, distinct: int, offset: int = 0) -> Bag:
    """``n`` records over ``distinct`` distinct keys (nested payloads)."""
    return Bag(
        rec(k=(i % distinct) + offset, pay=rec(a=i % 7, b="row"))
        for i in range(n)
    )


def timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_case(n: int):
    """One size: (rows, case results).  Caches are rebuilt per run."""
    distinct = max(1, n // 20)
    cases = []

    def run(label, kernel_fn, oracle_fn, make_args):
        # fresh bags per side so neither run sees the other's caches
        k_secs = timed(kernel_fn, *make_args())
        o_secs = timed(oracle_fn, *make_args())
        cases.append((label, o_secs, k_secs, o_secs / k_secs))

    run(
        "distinct",
        kernel.distinct,
        naive_distinct,
        lambda: (make_bag(n, distinct),),
    )
    def minus_right():
        # half the subtrahend misses entirely and the matching half sits
        # at the *end*, so the naive scan walks the whole list per row —
        # the generic case; aligned bags would let it match at index 0.
        misses = make_bag(n // 20, distinct, offset=distinct)
        hits = make_bag(n // 20, distinct)
        return Bag(misses.items + hits.items)

    run(
        "minus",
        kernel.minus,
        naive_minus,
        lambda: (make_bag(n, distinct), minus_right()),
    )
    run(
        "intersection",
        kernel.intersection,
        lambda a, b: naive_minus(a, naive_minus(a, b)),
        lambda: (make_bag(n, distinct), minus_right()),
    )
    run(
        "equality",
        kernel.multiset_equal,
        naive_equal,
        lambda: (make_bag(n, distinct), make_bag(n, distinct)),
    )

    def many_contains(bag_value, probes):
        return [kernel.contains(bag_value, p) for p in probes]

    def many_naive_contains(bag_value, probes):
        return [naive_contains(bag_value, p) for p in probes]

    # probes that miss: the naive scan reads the whole bag every time,
    # the kernel answers each from the (once-built) key index
    probes = [rec(k=i + distinct, pay=rec(a=i % 7, b="row")) for i in range(100)]
    run(
        "member x100",
        many_contains,
        many_naive_contains,
        lambda: (make_bag(n, distinct), probes),
    )
    return cases


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single 10k-row smoke run with a hard ≥%.0fx gate (CI)"
        % REQUIRED_SPEEDUP,
    )
    args = parser.parse_args(argv)
    sizes = [10_000] if args.quick else [1_000, 5_000, 10_000, 20_000]

    failures = []
    for n in sizes:
        cases = bench_case(n)
        emit(
            "kernel_%d" % n,
            format_table(
                "Keyed kernel vs naive loops — %d rows" % n,
                ["operation", "naive s", "kernel s", "speedup"],
                [
                    (label, o_secs, k_secs, "%.1fx" % speedup)
                    for label, o_secs, k_secs, speedup in cases
                ],
            ),
        )
        if n == 10_000:
            for label, _, _, speedup in cases:
                if label in ("distinct", "minus") and speedup < REQUIRED_SPEEDUP:
                    failures.append((label, speedup))

    if failures:
        for label, speedup in failures:
            print(
                "FAIL: kernel %s only %.1fx faster than the naive loop "
                "(need >= %.0fx at 10k rows)" % (label, speedup, REQUIRED_SPEEDUP)
            )
        return 1
    print("OK: kernel beats the naive loops >= %.0fx at 10k rows" % REQUIRED_SPEEDUP)
    return 0


if __name__ == "__main__":
    sys.exit(main())
