"""TPC-DS-remark reproduction (§6, substituted — see DESIGN.md).

The paper: 37/99 TPC-DS queries compile (rollup/window unsupported), the
largest plan is ~2200 operators, compile time grows with plan size but
stays in seconds, and "most of the compilation time is spent on
rewriting".  The generated stress family exercises the same two
properties: compile-time scaling on deeply nested supported queries, and
graceful rejection of unsupported features.

Run with::

    pytest benchmarks/bench_sql_stress.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from repro.compiler.pipeline import compile_sql
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse_sql
from repro.sql.stress import supported_query, unsupported_queries
from repro.sql.to_nraenv import sql_to_nraenv

from tables import emit, format_table

LEVELS = (0, 1, 2, 3, 4)


def test_stress_scaling(benchmark):
    def report():
        table = []
        for level in LEVELS:
            text = supported_query(level)
            start = time.perf_counter()
            result = compile_sql(text)
            elapsed = time.perf_counter() - start
            plan = result.output("to_nraenv")
            table.append(
                (
                    level,
                    plan.size(),
                    plan.depth(),
                    result.seconds("nraenv_opt"),
                    elapsed,
                )
            )
        emit(
            "stress_scaling",
            format_table(
                "TPC-DS substitute — compile-time scaling",
                ["level", "NRAe size", "depth", "optimize (s)", "total (s)"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    sizes = [row[1] for row in table]
    assert sizes == sorted(sizes)
    # the paper's largest TPC-DS plan was ~2200 operators; the family
    # must reach that regime and still compile in seconds.
    assert sizes[-1] > 2000
    assert table[-1][4] < 60.0
    # "most of the compilation time is spent on rewriting"
    deepest = table[-1]
    assert deepest[3] > 0.3 * deepest[4]


def test_unsupported_features_rejected(benchmark):
    def count_rejections():
        rejected = 0
        for name, text in unsupported_queries():
            try:
                sql_to_nraenv(parse_sql(text))
            except (SqlSyntaxError, ValueError):
                rejected += 1
        return rejected

    rejected = benchmark(count_rejections)
    # the paper compiled 37/99 TPC-DS queries and *rejected* the rest
    # gracefully; every unsupported-feature probe must be rejected.
    assert rejected == len(unsupported_queries())


@pytest.mark.parametrize("level", (2, 3))
def test_stress_compile_time(benchmark, level):
    text = supported_query(level)
    result = benchmark(compile_sql, text)
    assert result.final.size() > 0
