"""Backend benchmark: interpreted NRAe vs generated Python (paper §8).

Not a paper figure, but the backend ablation DESIGN.md calls out: the
generated code must beat the tree-walking interpreter on query
execution, which is the reason the paper ships code generation at all.

Run with::

    pytest benchmarks/bench_backend.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.compiler.pipeline import compile_sql
from repro.data.model import Record
from repro.nraenv.eval import eval_nraenv
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.datagen import SMALL, generate
from repro.tpch.queries import QUERIES


@pytest.fixture(scope="module")
def db():
    return generate(SMALL, seed=7)


@pytest.fixture(scope="module")
def q1_artifacts(db):
    plan = sql_to_nraenv(parse_sql(QUERIES["q1"]))
    result = compile_sql(QUERIES["q1"])
    fn = compile_nnrc_to_callable(result.final, name="q1")
    expected = eval_nraenv(plan, Record({}), None, db)
    return plan, fn, expected


def test_q1_interpreted(benchmark, db, q1_artifacts):
    plan, _, expected = q1_artifacts
    result = benchmark(eval_nraenv, plan, Record({}), None, db)
    assert result == expected


def test_q1_generated_python(benchmark, db, q1_artifacts):
    _, fn, expected = q1_artifacts
    result = benchmark(fn, db)
    assert result == expected


def test_q6_generated_vs_interpreted_agree(db):
    plan = sql_to_nraenv(parse_sql(QUERIES["q6"]))
    result = compile_sql(QUERIES["q6"])
    fn = compile_nnrc_to_callable(result.final, name="q6")
    assert fn(db) == eval_nraenv(plan, Record({}), None, db)


def test_q6_interpreted(benchmark, db):
    plan = sql_to_nraenv(parse_sql(QUERIES["q6"]))
    benchmark(eval_nraenv, plan, Record({}), None, db)


def test_q6_generated(benchmark, db):
    result = compile_sql(QUERIES["q6"])
    fn = compile_nnrc_to_callable(result.final, name="q6")
    benchmark(fn, db)
