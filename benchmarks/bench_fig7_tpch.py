"""Figure 7 reproduction: TPC-H through the SQL → NRAe → NNRC pipeline.

- Fig 7a: SQL / NRAe / NRAe-opt / NNRC / NNRC-opt query sizes, q1–q22;
- Fig 7b: SQL / NRAe / NRAe-opt query depths;
- Fig 7c: per-stage compilation times.

Run with::

    pytest benchmarks/bench_fig7_tpch.py --benchmark-only -s

Shape expectations from the paper (asserted): plans land in the
hundreds of operators with no unexpected blow-up, optimization never
grows a plan, depths stay small (≤ 5), translation time is negligible
next to optimization, and every query compiles in seconds.
"""

from __future__ import annotations

import pytest

from repro.compiler.pipeline import compile_sql
from repro.sql.parser import parse_sql
from repro.tpch.queries import QUERIES, QUERY_NAMES

from tables import emit, format_table, maybe_observe


@pytest.fixture(scope="module")
def fig7_data():
    """Compile every supported TPC-H query once; collect the metrics."""
    rows = {}
    with maybe_observe("fig7_tpch"):
        for name in QUERY_NAMES:
            script = parse_sql(QUERIES[name])
            result = compile_sql(QUERIES[name])
            rows[name] = {
                "sql_size": script.size(),
                "sql_depth": script.depth(),
                "nraenv": result.output("to_nraenv"),
                "nraenv_opt": result.output("nraenv_opt"),
                "nnrc": result.output("to_nnrc"),
                "nnrc_opt": result.output("nnrc_opt"),
                "timings": result.timings(),
            }
    return rows


def test_fig7a_query_sizes(benchmark, fig7_data):
    def report():
        table = []
        for name in QUERY_NAMES:
            row = fig7_data[name]
            table.append(
                (
                    name,
                    row["sql_size"],
                    row["nraenv"].size(),
                    row["nraenv_opt"].size(),
                    row["nnrc"].size(),
                    row["nnrc_opt"].size(),
                )
            )
        emit(
            "fig7a_tpch_sizes",
            format_table(
                "Figure 7a — TPC-H query sizes",
                ["query", "SQL", "NRAe", "NRAe opt", "NNRC", "NNRC opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, sql, nraenv, nraenv_opt, nnrc, nnrc_opt in table:
        # the paper: "relatively large (in the hundreds of operators)"
        # but "no unexpected blow up".
        assert nraenv < 60 * sql, name
        assert nraenv_opt <= nraenv, name
        assert nnrc_opt <= nnrc, name
    assert max(row[2] for row in table) < 1000  # hundreds, not thousands


def test_fig7b_query_depths(benchmark, fig7_data):
    def report():
        table = []
        for name in QUERY_NAMES:
            row = fig7_data[name]
            table.append(
                (
                    name,
                    row["sql_depth"],
                    row["nraenv"].depth(),
                    row["nraenv_opt"].depth(),
                )
            )
        emit(
            "fig7b_tpch_depths",
            format_table(
                "Figure 7b — TPC-H query depths",
                ["query", "SQL", "NRAe", "NRAe opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    for name, sql_depth, nraenv_depth, opt_depth in table:
        # the paper's Figure 7b tops out around 4.
        assert sql_depth <= 4, name
        assert nraenv_depth <= 6, name
        assert opt_depth <= nraenv_depth + 1, name


def test_fig7c_compile_times(benchmark, fig7_data):
    def report():
        table = []
        for name in QUERY_NAMES:
            timings = fig7_data[name]["timings"]
            table.append(
                (
                    name,
                    timings["parse"] + timings["to_nraenv"],
                    timings["nraenv_opt"],
                    timings["to_nnrc"],
                    timings["nnrc_opt"],
                )
            )
        emit(
            "fig7c_tpch_times",
            format_table(
                "Figure 7c — TPC-H compilation time (s)",
                ["query", "SQL→NRAe", "NRAe→NRAe opt", "NRAe opt→NNRC", "NNRC→NNRC opt"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    total_translate = sum(row[1] + row[3] for row in table)
    total_optimize = sum(row[2] + row[4] for row in table)
    # the paper: "most of the time spent on optimization (translation
    # time is negligible)".
    assert total_optimize > total_translate
    # and every query compiles in seconds (paper: < 2 s on their stack).
    for row in table:
        assert sum(row[1:]) < 10.0, row[0]


@pytest.mark.parametrize("name", ("q1", "q5", "q22"))
def test_compile_time_per_query(benchmark, name):
    """Wall-clock benchmark of the full pipeline on representative queries."""
    result = benchmark(compile_sql, QUERIES[name])
    assert result.final.size() > 0
