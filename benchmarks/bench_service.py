"""Query-service bench: cold compiles vs cached plans.

Not a paper figure; this bench records the serving layer added on top of
the compiler.  A ``QueryService`` holds the TPC-H micro database and a
structural plan cache; we measure how many ``prepare`` calls per second
the service answers when every call misses the cache (cold: full
pipeline + codegen) versus when every call hits it (cached: parse +
structural hash only).  The cache-hit path must be at least 10x faster,
and the hit/miss/eviction counters the service keeps through
``repro.obs`` are printed alongside the table.

Run with::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.service import QueryService
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import QUERIES

from tables import emit, format_table

#: The served query: TPC-H Q6 with the discount band as parameters.
PARAMETRIC_Q6 = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1995-01-01'
  and l_discount >= $lo and l_discount <= $hi
  and l_quantity < 24
"""


def reformat(text: str, round_index: int) -> str:
    """A textually distinct but structurally identical variant of ``text``.

    Uppercasing keywords and reflowing whitespace changes every byte the
    lexer skips while leaving the parsed AST — and hence the structural
    plan key — unchanged, so each variant exercises the cache-hit path
    with a genuinely different source string.
    """
    flattened = " ".join(text.split())
    if round_index % 2:
        flattened = flattened.upper().replace("'1994-01-01'".upper(), "'1994-01-01'")
        flattened = flattened.replace("'1995-01-01'".upper(), "'1995-01-01'")
    return ("  " * (round_index % 5)) + flattened + ("\n" * (round_index % 3))


def bench_prepare(service: QueryService, rounds: int, cold: bool) -> float:
    """Seconds per ``prepare`` over ``rounds`` calls (cold or cached)."""
    service.prepare("sql", PARAMETRIC_Q6)  # warm the cache once
    start = time.perf_counter()
    for index in range(rounds):
        if cold:
            service.cache.clear()
        prepared = service.prepare("sql", reformat(PARAMETRIC_Q6, index))
        assert prepared.cached is not cold, "cache behaved unexpectedly"
        service.close_prepared(prepared.handle)
    return (time.perf_counter() - start) / rounds


def bench_execute(service: QueryService, rounds: int) -> float:
    """Seconds per execution of the cached parametric plan."""
    prepared = service.prepare("sql", PARAMETRIC_Q6)
    outcome = service.execute(prepared.handle, params={"lo": 0.05, "hi": 0.07})
    assert outcome.ok, outcome.error
    start = time.perf_counter()
    for _ in range(rounds):
        service.execute(prepared.handle, params={"lo": 0.05, "hi": 0.07})
    return (time.perf_counter() - start) / rounds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test rounds (CI); full rounds otherwise",
    )
    args = parser.parse_args(argv)
    rounds = 5 if args.quick else 40

    service = QueryService(cache_capacity=64, workers=2)
    try:
        for name, rows in generate(MICRO, seed=7).items():
            service.register_table(name, rows)

        # A one-shot sanity run of the real Q6 text from the suite.
        outcome = service.query("sql", QUERIES["q6"])
        assert outcome.ok, outcome.error

        cold = bench_prepare(service, rounds, cold=True)
        cached = bench_prepare(service, rounds, cold=False)
        execute = bench_execute(service, rounds)
        speedup = cold / cached

        emit(
            "service",
            format_table(
                "Query service — TPC-H Q6 (parametric), %d rounds" % rounds,
                ["path", "seconds/op", "ops/second"],
                [
                    ("cold compile", cold, 1.0 / cold),
                    ("cached plan", cached, 1.0 / cached),
                    ("execute (bound params)", execute, 1.0 / execute),
                    ("speedup (cold/cached)", speedup, ""),
                ],
            ),
        )

        stats = service.stats()
        print("plan cache: %(hits)d hits, %(misses)d misses, %(evictions)d evictions"
              % stats["plan_cache"])
        counters = stats["metrics"]["counters"]
        for metric in sorted(counters):
            if metric.startswith("service."):
                print("  %s = %d" % (metric, counters[metric]))

        if speedup < 10.0:
            print("FAIL: cached plans only %.1fx faster than cold compiles" % speedup)
            return 1
        print("OK: cached plans %.0fx faster than cold compiles" % speedup)
        return 0
    finally:
        service.close(wait=False)


if __name__ == "__main__":
    sys.exit(main())
