"""Concurrent serving bench: multi-worker scale-out under HTTP load.

Not a paper figure; this bench measures the network front end
(``repro serve --http --workers N``, see ``repro.service.net``).  A
load generator opens many persistent HTTP connections, ramps the
concurrency level, and reports client-side p50/p99 latency and the
saturation throughput (the best ok-QPS any level reached), alongside
the server's own view read off ``GET /stats``.  Every response must be
one of the structured taxonomy kinds — a shed request is an
``overloaded`` error with a valid ``query_id``, never a connection
reset — and the results a worker returns must equal (as a multiset)
what a local single-process ``QueryService`` produces for the same
query.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve_concurrent.py            # full ramp, 4 vs 1 workers
    PYTHONPATH=src python benchmarks/bench_serve_concurrent.py --smoke    # small load, strict protocol checks
    PYTHONPATH=src python benchmarks/bench_serve_concurrent.py --gate     # CI: 2 workers must beat 1 by >= 1.5x
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from tables import emit, format_table

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Error kinds a client may legitimately see (plus "ok").
TAXONOMY = ("ok", "overloaded", "timeout", "runtime_error", "bad_request")

#: The served workload: an aggregate over a few thousand rows, so one
#: execution costs real worker CPU (~ms) and IPC overhead stays small.
TABLE = "sales"
N_ROWS = 3000
QUERY = "select sum(price) as revenue from sales where qty > $min"
PARAMS = {"min": 10}

_QUERY_ID = re.compile(r"^[0-9a-f]{16}$")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_rows(n: int = N_ROWS) -> List[Dict[str, Any]]:
    return [
        {"id": i, "qty": i % 50, "price": float((i * 7) % 100) / 4.0}
        for i in range(n)
    ]


# -- server under test -----------------------------------------------------


class Server:
    """A ``repro serve --http`` subprocess plus its parsed endpoint."""

    def __init__(self, workers: int, queue_depth: int = 16):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC_DIR] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--http",
                "0",
                "--workers",
                str(workers),
                "--queue-depth",
                str(queue_depth),
                "--trace-sample",
                "-1",
            ],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            cwd=REPO_ROOT,
            env=env,
            text=True,
        )
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        deadline = time.time() + 120.0
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            match = re.search(r"http endpoint on http://([\d.]+):(\d+)", line)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                break
            if time.time() > deadline:  # pragma: no cover - hang guard
                break
        if self.port is None:
            self.proc.kill()
            raise RuntimeError("server did not announce an http endpoint")
        # Keep draining stderr so the server can never block on the pipe.
        threading.Thread(
            target=lambda: [None for _ in self.proc.stderr], daemon=True
        ).start()

    def request(self, payload: Dict[str, Any], timeout: float = 60.0) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request("POST", "/", body=json.dumps(payload))
            return json.loads(conn.getresponse().read().decode("utf-8"))
        finally:
            conn.close()

    def get_json(self, path: str) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30.0)
        try:
            conn.request("GET", path)
            return json.loads(conn.getresponse().read().decode("utf-8"))
        finally:
            conn.close()

    def prepare_workload(self, rows: List[Dict[str, Any]]) -> str:
        response = self.request({"op": "register", "table": TABLE, "rows": rows})
        assert response.get("ok"), response
        response = self.request({"op": "prepare", "query": QUERY})
        assert response.get("ok"), response
        return response["handle"]

    def stop(self) -> None:
        try:
            self.request({"op": "shutdown"}, timeout=10.0)
        except (OSError, http.client.HTTPException, ValueError):
            pass
        try:
            self.proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - wedged server
            self.proc.kill()
            self.proc.wait(timeout=10.0)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- load generation -------------------------------------------------------


class LevelResult:
    """One concurrency level's outcome: latencies and response kinds."""

    def __init__(self, concurrency: int, seconds: float):
        self.concurrency = concurrency
        self.seconds = seconds
        self.latencies: List[float] = []  # ok responses only
        self.kinds: Dict[str, int] = {}
        self.bad_responses: List[Any] = []  # taxonomy/protocol violations

    @property
    def ok(self) -> int:
        return self.kinds.get("ok", 0)

    @property
    def ok_qps(self) -> float:
        return self.ok / self.seconds if self.seconds > 0 else 0.0

    def p(self, fraction: float) -> float:
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(round((len(ordered) - 1) * fraction)))
        return ordered[index]


def _client_loop(
    server: Server, handle: str, stop_at: float, result: LevelResult, lock: threading.Lock
) -> None:
    """One persistent keep-alive connection issuing executes until the bell."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=60.0)
    payload = json.dumps({"op": "execute", "handle": handle, "params": PARAMS})
    try:
        while time.perf_counter() < stop_at:
            started = time.perf_counter()
            try:
                conn.request("POST", "/", body=payload)
                body = conn.getresponse().read()
                response = json.loads(body.decode("utf-8"))
            except (OSError, http.client.HTTPException, ValueError) as exc:
                with lock:
                    result.kinds["protocol_error"] = (
                        result.kinds.get("protocol_error", 0) + 1
                    )
                    result.bad_responses.append("%s: %s" % (type(exc).__name__, exc))
                conn.close()
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=60.0
                )
                continue
            elapsed = time.perf_counter() - started
            kind = (
                "ok"
                if response.get("ok")
                else (response.get("error") or {}).get("kind", "missing_kind")
            )
            with lock:
                result.kinds[kind] = result.kinds.get(kind, 0) + 1
                if kind == "ok":
                    result.latencies.append(elapsed)
                if kind not in TAXONOMY or not _QUERY_ID.match(
                    str(response.get("query_id", ""))
                ):
                    result.bad_responses.append(response)
    finally:
        conn.close()


def run_level(server: Server, handle: str, concurrency: int, seconds: float) -> LevelResult:
    result = LevelResult(concurrency, seconds)
    lock = threading.Lock()
    stop_at = time.perf_counter() + seconds
    threads = [
        threading.Thread(
            target=_client_loop, args=(server, handle, stop_at, result, lock)
        )
        for _ in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return result


def ramp(
    server: Server, handle: str, levels: List[int], seconds: float
) -> List[LevelResult]:
    results = []
    for level in levels:
        results.append(run_level(server, handle, level, seconds))
    return results


def saturation_qps(results: List[LevelResult]) -> float:
    return max((r.ok_qps for r in results), default=0.0)


# -- checks ----------------------------------------------------------------


def reference_result(rows: List[Dict[str, Any]]) -> List[str]:
    """The same workload on a local single-process service, canonicalized."""
    from repro.data import json_io
    from repro.service import QueryService

    with QueryService(trace_sample_rate=None) as service:
        service.register_table(TABLE, rows)
        outcome = service.query("sql", QUERY, params=PARAMS)
        assert outcome.ok, outcome.error
        value = json_io.to_jsonable(outcome.value)
    return sorted(json.dumps(row, sort_keys=True) for row in value)


def check_results_match(server: Server, handle: str, rows: List[Dict[str, Any]]) -> None:
    """Worker answers must be multiset-equal to single-process execution."""
    expected = reference_result(rows)
    response = server.request({"op": "execute", "handle": handle, "params": PARAMS})
    assert response.get("ok"), response
    got = sorted(json.dumps(row, sort_keys=True) for row in response["result"])
    assert got == expected, "worker result diverged from single-process execution"


def check_taxonomy(results: List[LevelResult]) -> List[Any]:
    violations: List[Any] = []
    for result in results:
        violations.extend(result.bad_responses)
    return violations


def force_sheds(server: Server, handle: str) -> Tuple[int, List[Any]]:
    """Hammer far past the admission bound; return (sheds seen, violations)."""
    result = run_level(server, handle, concurrency=32, seconds=1.5)
    sheds = result.kinds.get("overloaded", 0)
    return sheds, result.bad_responses


# -- reporting -------------------------------------------------------------


def report(title: str, results: List[LevelResult], server_qps: float) -> None:
    rows = []
    for r in results:
        rows.append(
            (
                r.concurrency,
                r.ok,
                "%.1f" % r.ok_qps,
                "%.1f" % (r.p(0.50) * 1e3),
                "%.1f" % (r.p(0.99) * 1e3),
                r.kinds.get("overloaded", 0),
                r.kinds.get("protocol_error", 0),
            )
        )
    emit(
        "serve_concurrent",
        format_table(
            title,
            ["clients", "ok", "ok QPS", "p50 ms", "p99 ms", "shed", "proto err"],
            rows,
        ),
    )
    print("server-side last-10s QPS (/stats): %.1f" % server_qps)


def measure(workers: int, levels: List[int], seconds: float, queue_depth: int = 16):
    """Start a server, run the ramp, pull /stats, return everything."""
    rows = make_rows()
    with Server(workers, queue_depth=queue_depth) as server:
        handle = server.prepare_workload(rows)
        check_results_match(server, handle, rows)
        results = ramp(server, handle, levels, seconds)
        stats = server.get_json("/stats")
        server_qps = stats.get("rates", {}).get("last_10s", {}).get("qps", 0.0)
        counters = stats.get("metrics", {}).get("counters", {})
    return results, server_qps, counters


# -- modes -----------------------------------------------------------------


def run_smoke(seconds: float) -> int:
    """CI smoke: modest load, strict protocol checks, generous p99 bound."""
    results, server_qps, _ = measure(workers=2, levels=[2, 4], seconds=seconds)
    report("serve --http smoke (2 workers)", results, server_qps)
    violations = check_taxonomy(results)
    if violations:
        print("FAIL: %d protocol/taxonomy violations, e.g. %r" % (len(violations), violations[0]))
        return 1
    protocol_errors = sum(r.kinds.get("protocol_error", 0) for r in results)
    if protocol_errors:
        print("FAIL: %d protocol errors (connection drops / non-JSON)" % protocol_errors)
        return 1
    worst_p99 = max(r.p(0.99) for r in results)
    if not worst_p99 < 2.0:
        print("FAIL: p99 %.3fs exceeds the 2s smoke bound" % worst_p99)
        return 1
    print("OK: %d ok responses, p99 %.1f ms, zero protocol errors"
          % (sum(r.ok for r in results), worst_p99 * 1e3))
    return 0


def run_gate(seconds: float) -> int:
    """CI gate: 2-worker saturation QPS must be >= 1.5x single-worker."""
    results_1, qps_s1, _ = measure(workers=1, levels=[2, 4], seconds=seconds)
    report("1 worker", results_1, qps_s1)
    results_2, qps_s2, _ = measure(workers=2, levels=[4, 8], seconds=seconds)
    report("2 workers", results_2, qps_s2)

    violations = check_taxonomy(results_1) + check_taxonomy(results_2)
    if violations:
        print("FAIL: %d protocol/taxonomy violations, e.g. %r" % (len(violations), violations[0]))
        return 1

    # Overload a tightly-bounded server: sheds must happen and every one
    # must be a structured `overloaded` response with a valid query_id.
    rows = make_rows()
    with Server(workers=1, queue_depth=1) as server:
        handle = server.prepare_workload(rows)
        sheds, shed_violations = force_sheds(server, handle)
        stats = server.get_json("/stats")
        counted = stats.get("metrics", {}).get("counters", {}).get("service.shed", 0)
    if shed_violations:
        print("FAIL: shed produced %d malformed responses, e.g. %r"
              % (len(shed_violations), shed_violations[0]))
        return 1
    if sheds == 0:
        print("FAIL: hammering a queue-depth-1 server produced no sheds")
        return 1
    if counted < sheds:
        print("FAIL: clients saw %d sheds but service.shed counted %d" % (sheds, counted))
        return 1
    print("shed check: %d overloaded responses, all structured; service.shed=%d"
          % (sheds, counted))

    qps1, qps2 = saturation_qps(results_1), saturation_qps(results_2)
    ratio = qps2 / qps1 if qps1 > 0 else float("inf")
    print("saturation: 1 worker %.1f QPS, 2 workers %.1f QPS (%.2fx)"
          % (qps1, qps2, ratio))
    cpus = available_cpus()
    if cpus < 2:
        # Two worker processes cannot run in parallel on one core; the
        # protocol, shed, and result-equality checks above still gate.
        print("SKIP: scale-out ratio needs >= 2 CPUs (have %d); "
              "protocol and shed checks passed" % cpus)
        return 0
    if ratio < 1.5:
        print("FAIL: 2-worker saturation only %.2fx the single-worker QPS" % ratio)
        return 1
    print("OK: scale-out gate passed (%.2fx >= 1.5x)" % ratio)
    return 0


def run_full(workers: int, levels: List[int], seconds: float) -> int:
    results_1, qps_s1, _ = measure(workers=1, levels=levels, seconds=seconds)
    report("1 worker", results_1, qps_s1)
    results_n, qps_sn, counters = measure(workers=workers, levels=levels, seconds=seconds)
    report("%d workers" % workers, results_n, qps_sn)

    per_worker = sorted(
        (name, count)
        for name, count in counters.items()
        if re.match(r"service\.worker\.w\d+\.ok$", name)
    )
    if per_worker:
        print("per-worker ok counts: "
              + ", ".join("%s=%d" % (name.split(".")[2], count) for name, count in per_worker))

    violations = check_taxonomy(results_1) + check_taxonomy(results_n)
    if violations:
        print("FAIL: %d protocol/taxonomy violations, e.g. %r" % (len(violations), violations[0]))
        return 1
    qps1, qpsn = saturation_qps(results_1), saturation_qps(results_n)
    ratio = qpsn / qps1 if qps1 > 0 else float("inf")
    print("saturation: 1 worker %.1f QPS, %d workers %.1f QPS (%.2fx)"
          % (qps1, workers, qpsn, ratio))
    cpus = available_cpus()
    if cpus < 2:
        print("SKIP: scale-out ratio needs >= 2 CPUs (have %d); "
              "protocol checks passed" % cpus)
        return 0
    if ratio < 1.5:
        print("FAIL: %d-worker saturation only %.2fx the single-worker QPS"
              % (workers, ratio))
        return 1
    print("OK: %d workers scale %.2fx over one" % (workers, ratio))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small-scale CI smoke: strict protocol checks")
    parser.add_argument("--gate", action="store_true",
                        help="CI gate: 2-worker saturation >= 1.5x single-worker")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the full run (compared to 1)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per concurrency level")
    parser.add_argument("--levels", default=None,
                        help="comma-separated concurrency levels for the full run")
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args.duration or 2.0)
    if args.gate:
        return run_gate(args.duration or 3.0)
    levels = (
        [int(part) for part in args.levels.split(",")]
        if args.levels
        else [1, 2, 4, 8, 16]
    )
    return run_full(args.workers, levels, args.duration or 3.0)


if __name__ == "__main__":
    sys.exit(main())
