"""TPC-H execution bench: the join engine vs the Figure-2 interpreter.

Not a paper figure (the paper measures its compiler, executing via
generated JS); this bench records the execution side of this repository:
all 20 engine-executable TPC-H queries run end to end at micro scale,
and the hash-join engine beats the nested-loop interpreter by orders of
magnitude on the join-heavy queries.

Run with::

    pytest benchmarks/bench_tpch_exec.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from repro.data.model import Record
from repro.nraenv.eval import eval_nraenv
from repro.nraenv.exec import eval_fast
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import ENGINE_EXECUTABLE, QUERIES
from repro.tpch.reference import REFERENCES

from tables import emit, format_table


@pytest.fixture(scope="module")
def db():
    return generate(MICRO, seed=7)


def test_engine_executes_all_queries(benchmark, db):
    def sweep():
        table = []
        for name in ENGINE_EXECUTABLE:
            plan = sql_to_nraenv(parse_sql(QUERIES[name]))
            start = time.perf_counter()
            rows = eval_fast(plan, Record({}), None, db)
            elapsed = time.perf_counter() - start
            table.append((name, len(rows), elapsed))
        emit(
            "tpch_exec",
            format_table(
                "TPC-H execution — join engine, micro database",
                ["query", "rows", "seconds"],
                table,
            ),
        )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(table) == 20
    for name, rows, elapsed in table:
        assert rows > 0, name
        assert elapsed < 60, name


@pytest.mark.parametrize("name", ("q3", "q10"))
def test_join_engine_vs_interpreter(benchmark, db, name):
    """The engine must beat the nested-loop interpreter on joins."""
    plan = sql_to_nraenv(parse_sql(QUERIES[name]))
    expected = eval_fast(plan, Record({}), None, db)

    engine_start = time.perf_counter()
    eval_fast(plan, Record({}), None, db)
    engine_time = time.perf_counter() - engine_start

    interp_start = time.perf_counter()
    interp_result = eval_nraenv(plan, Record({}), None, db)
    interp_time = time.perf_counter() - interp_start

    assert interp_result == expected
    assert engine_time < interp_time, (name, engine_time, interp_time)

    result = benchmark(eval_fast, plan, Record({}), None, db)
    assert result == expected
