"""TPC-H execution bench: the join engine vs the Figure-2 interpreter.

Not a paper figure (the paper measures its compiler, executing via
generated JS); this bench records the execution side of this repository:
all 20 engine-executable TPC-H queries run end to end at micro scale,
and the hash-join engine beats the nested-loop interpreter by orders of
magnitude on the join-heavy queries.

The ``--gate`` mode is wired into the CI bench-smoke job with *hard*
thresholds pinned against the recorded seed numbers (the sweep before
the physical group-by and batch operators landed): q18 — once a 6.6s
outlier, the derived group-by re-evaluating its source per distinct
key — must finish under 0.5s, the full sweep must be at least 2x
faster than the seed total, and every query must still match its
independent reference implementation.  Since the fused columnar chains
landed the gate also pins q19 and q20 (the two queries the columnar
pass speeds up most) at 5x their pre-columnar times and re-runs the
sweep with the columnar path disabled to prove the fused chains beat
row-at-a-time execution by a real margin.

Run with::

    pytest benchmarks/bench_tpch_exec.py --benchmark-only -s
    PYTHONPATH=src python benchmarks/bench_tpch_exec.py --gate
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.data.foreign import DateValue
from repro.data.model import Record, to_python
from repro.nraenv.eval import eval_nraenv
from repro.nraenv.exec import eval_fast, set_columnar_enabled
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import ENGINE_EXECUTABLE, QUERIES
from repro.tpch.reference import REFERENCES

from tables import emit, format_table

#: The recorded seed sweep (benchmarks/output/tpch_exec.txt before the
#: physical group-by): q18 alone took 6.6277s of a 7.3841s total.
SEED_TOTAL_SECONDS = 7.3841
SEED_Q18_SECONDS = 6.6277

#: The recorded sweep before the fused columnar chains landed: q19's
#: disjunctive predicate stack and q20's correlated membership filters
#: were the two slowest row-at-a-time queries left.
SEED_Q19_SECONDS = 0.1238
SEED_Q20_SECONDS = 0.0796

#: Hard gates for CI (``--gate``).
Q18_BUDGET_SECONDS = 0.5
REQUIRED_SWEEP_SPEEDUP = 2.0
REQUIRED_Q19_SPEEDUP = 5.0
REQUIRED_Q20_SPEEDUP = 5.0
#: The columnar path must actually pay for itself: the same sweep with
#: the fused chains disabled must be at least this much slower.
REQUIRED_COLUMNAR_RATIO = 1.5


def _normalise(rows):
    def convert(value):
        if isinstance(value, DateValue):
            return value.isoformat()
        if isinstance(value, float):
            return round(value, 4)
        return value

    return sorted(
        tuple(sorted((key, convert(value)) for key, value in row.items()))
        for row in rows
    )


def run_sweep(db, check=False):
    """Time all 20 queries; with ``check``, compare each to its reference."""
    table = []
    for name in ENGINE_EXECUTABLE:
        plan = sql_to_nraenv(parse_sql(QUERIES[name]))
        start = time.perf_counter()
        rows = eval_fast(plan, Record({}), None, db)
        elapsed = time.perf_counter() - start
        if check:
            expected = _normalise(REFERENCES[name](db))
            assert _normalise(to_python(rows)) == expected, (
                "%s diverged from its reference" % name
            )
        table.append((name, len(rows), elapsed))
    return table


def emit_table(table):
    emit(
        "tpch_exec",
        format_table(
            "TPC-H execution — join engine, micro database",
            ["query", "rows", "seconds"],
            table,
        ),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="TPC-H execution sweep")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="enforce the CI thresholds (q18 < %.1fs, sweep >= %.0fx vs seed, "
        "q19/q20 >= %.0fx vs the pre-columnar sweep, columnar >= %.1fx row)"
        % (
            Q18_BUDGET_SECONDS,
            REQUIRED_SWEEP_SPEEDUP,
            REQUIRED_Q19_SPEEDUP,
            REQUIRED_COLUMNAR_RATIO,
        ),
    )
    args = parser.parse_args(argv)

    db = generate(MICRO, seed=7)
    table = run_sweep(db, check=True)
    emit_table(table)
    total = sum(elapsed for _, _, elapsed in table)
    per_query = dict((name, elapsed) for name, _, elapsed in table)
    q18 = per_query["q18"]
    speedup = SEED_TOTAL_SECONDS / total
    q19_speedup = SEED_Q19_SECONDS / per_query["q19"]
    q20_speedup = SEED_Q20_SECONDS / per_query["q20"]
    print(
        "sweep: %.4fs over %d queries (seed %.4fs, %.1fx); q18 %.4fs (seed %.4fs)"
        % (total, len(table), SEED_TOTAL_SECONDS, speedup, q18, SEED_Q18_SECONDS)
    )
    print(
        "q19 %.4fs (%.1fx vs row-at-a-time %.4fs); q20 %.4fs (%.1fx vs %.4fs)"
        % (
            per_query["q19"],
            q19_speedup,
            SEED_Q19_SECONDS,
            per_query["q20"],
            q20_speedup,
            SEED_Q20_SECONDS,
        )
    )
    print("all 20 queries match their reference implementations")
    if args.gate:
        failures = []
        if q18 >= Q18_BUDGET_SECONDS:
            failures.append(
                "q18 took %.4fs, budget is %.4fs" % (q18, Q18_BUDGET_SECONDS)
            )
        if speedup < REQUIRED_SWEEP_SPEEDUP:
            failures.append(
                "sweep speedup %.2fx vs seed, need >= %.1fx"
                % (speedup, REQUIRED_SWEEP_SPEEDUP)
            )
        if q19_speedup < REQUIRED_Q19_SPEEDUP:
            failures.append(
                "q19 speedup %.2fx vs pre-columnar seed, need >= %.1fx"
                % (q19_speedup, REQUIRED_Q19_SPEEDUP)
            )
        if q20_speedup < REQUIRED_Q20_SPEEDUP:
            failures.append(
                "q20 speedup %.2fx vs pre-columnar seed, need >= %.1fx"
                % (q20_speedup, REQUIRED_Q20_SPEEDUP)
            )
        # Columnar-vs-row ratio: re-run the sweep with fused chains
        # disabled, then warm-re-run the columnar sweep so both sides
        # see the same cache state.  Answers were already checked above.
        set_columnar_enabled(False)
        try:
            row_total = sum(t for _, _, t in run_sweep(db, check=False))
        finally:
            set_columnar_enabled(True)
        columnar_total = sum(t for _, _, t in run_sweep(db, check=False))
        ratio = row_total / columnar_total
        print(
            "columnar sweep %.4fs vs row sweep %.4fs (%.2fx)"
            % (columnar_total, row_total, ratio)
        )
        if ratio < REQUIRED_COLUMNAR_RATIO:
            failures.append(
                "columnar sweep only %.2fx faster than row sweep, need >= %.1fx"
                % (ratio, REQUIRED_COLUMNAR_RATIO)
            )
        if failures:
            for failure in failures:
                print("GATE FAILED: %s" % failure)
            return 1
        print(
            "gate passed: q18 < %.1fs, sweep %.1fx >= %.1fx, "
            "q19 %.1fx / q20 %.1fx >= %.1fx, columnar ratio %.2fx >= %.1fx"
            % (
                Q18_BUDGET_SECONDS,
                speedup,
                REQUIRED_SWEEP_SPEEDUP,
                q19_speedup,
                q20_speedup,
                REQUIRED_Q19_SPEEDUP,
                ratio,
                REQUIRED_COLUMNAR_RATIO,
            )
        )
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover — standalone --gate runs
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def db():
        return generate(MICRO, seed=7)

    def test_engine_executes_all_queries(benchmark, db):
        def sweep():
            table = run_sweep(db)
            emit_table(table)
            return table

        table = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert len(table) == 20
        for name, rows, elapsed in table:
            assert rows > 0, name
            assert elapsed < 60, name

    @pytest.mark.parametrize("name", ("q3", "q10"))
    def test_join_engine_vs_interpreter(benchmark, db, name):
        """The engine must beat the nested-loop interpreter on joins."""
        plan = sql_to_nraenv(parse_sql(QUERIES[name]))
        expected = eval_fast(plan, Record({}), None, db)

        engine_start = time.perf_counter()
        eval_fast(plan, Record({}), None, db)
        engine_time = time.perf_counter() - engine_start

        interp_start = time.perf_counter()
        interp_result = eval_nraenv(plan, Record({}), None, db)
        interp_time = time.perf_counter() - interp_start

        assert interp_result == expected
        assert engine_time < interp_time, (name, engine_time, interp_time)

        result = benchmark(eval_fast, plan, Record({}), None, db)
        assert result == expected


if __name__ == "__main__":
    sys.exit(main())
