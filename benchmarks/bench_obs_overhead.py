"""Service observability overhead bench: the obs layer must stay cheap.

PR 7 put an always-on observability spine under every service execute —
a per-request ``QueryContext`` (contextvars), tail-sampled per-query
tracing, the rate ring, and the JSON-lines query log.  Unlike the
analyze layer (opt-in per query, allowed to be slow), these run on
*every* request of a production service, so the acceptance criterion is
a hard gate: the fully-instrumented configuration must stay within
``MAX_OVERHEAD`` (5%) of a service with tracing and logging disabled.

Two ``QueryService`` instances hold the same TPC-H micro database and
the same prepared handles:

- **off** — ``trace_sample_rate=None`` (no per-query tracer at all) and
  no query log: the correlation context alone;
- **on**  — the serve defaults: 5% head sampling with slow/error keep,
  plus a rotating query log on disk.

Paired ABBA sampling (see ``bench_analyze_overhead.py``): each round
times off-on-on-off, contributes one ratio, and the *median* ratio over
rounds is gated — linear drift cancels within a round, and a noisy
neighbour spoils one ratio instead of a side's minimum.

Run with::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from tables import emit, format_table

from repro.service import QueryService
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import QUERIES

#: The CI gate from ISSUE.md: instrumented execute within 5% of plain.
MAX_OVERHEAD = 0.05

#: Full remeasurements allowed before declaring the gap real.
MAX_ATTEMPTS = 3

# Queries whose *compiled* (NNRC → Python) form runs sub-second on the
# micro database — the service's execute path, unlike the join-engine
# sweep in bench_analyze_overhead.py, does not get the hash-join fast
# paths, so the nested-loop-heavy queries are excluded here.
QUICK_QUERIES = ("q1", "q6", "q14", "q15")
FULL_QUERIES = ("q1", "q4", "q6", "q12", "q14", "q15", "q19", "q22")


def build_service(constants, observed: bool, log_path=None) -> QueryService:
    service = QueryService(
        workers=2,
        slow_query_seconds=30.0 if observed else None,
        trace_sample_rate=0.05 if observed else None,
        query_log=log_path if observed else None,
    )
    for name, rows in constants.items():
        service.register_table(name, rows)
    return service


def prepare_handles(service: QueryService, names):
    handles = []
    for name in names:
        prepared = service.prepare("sql", QUERIES[name])
        outcome = service.execute(prepared.handle)
        assert outcome.ok, "%s failed: %s" % (name, outcome.error)
        handles.append(prepared.handle)
    return handles


def sweep(service: QueryService, handles, passes: int = 2) -> float:
    """Time ``passes`` back-to-back service executes of every handle."""
    start = time.perf_counter()
    for _ in range(passes):
        for handle in handles:
            service.execute(handle)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI mode: subset + fewer repeats")
    parser.add_argument("--repeats", type=int, default=None, help="paired rounds")
    args = parser.parse_args(argv)

    names = QUICK_QUERIES if args.quick else FULL_QUERIES
    repeats = args.repeats or (5 if args.quick else 7)
    constants = generate(MICRO, seed=7)

    log_dir = tempfile.mkdtemp(prefix="repro-obs-bench-")
    log_path = os.path.join(log_dir, "query-log.jsonl")
    off = build_service(constants, observed=False)
    on = build_service(constants, observed=True, log_path=log_path)
    try:
        off_handles = prepare_handles(off, names)
        on_handles = prepare_handles(on, names)

        # warm both paths (plan caches, record-key caches) before timing
        sweep(off, off_handles)
        sweep(on, on_handles)

        def measure():
            off_samples, on_samples, ratios = [], [], []
            gc.disable()
            try:
                for _ in range(repeats):
                    gc.collect()
                    off1 = sweep(off, off_handles)
                    on1 = sweep(on, on_handles)
                    on2 = sweep(on, on_handles)
                    off2 = sweep(off, off_handles)
                    off_samples.extend((off1, off2))
                    on_samples.extend((on1, on2))
                    ratios.append((on1 + on2) / (off1 + off2))
            finally:
                gc.enable()
            return (
                min(off_samples),
                min(on_samples),
                sorted(ratios)[len(ratios) // 2],
            )

        # A real regression fails every attempt; noise has to strike
        # MAX_ATTEMPTS times in a row to produce a false failure.
        for attempt in range(MAX_ATTEMPTS):
            baseline, observed, median_ratio = measure()
            if median_ratio - 1.0 < MAX_OVERHEAD:
                break
            print(
                "attempt %d/%d: median ratio %+.2f%% over the gate, remeasuring"
                % (attempt + 1, MAX_ATTEMPTS, (median_ratio - 1.0) * 100)
            )

        overhead = median_ratio - 1.0
        kept = on.traces.describe()
        logged = on.query_log.describe() if on.query_log is not None else {}
        rows = [
            ("obs off (best sweep)", "%.4f s" % baseline, "-"),
            ("obs on (best sweep)", "%.4f s" % observed,
             "%+.2f%%" % (observed / baseline * 100 - 100)),
            ("median paired ratio (gated)", "-", "%+.2f%%" % (overhead * 100)),
            ("traces kept / dropped", "%d / %d" % (kept["kept"], kept["dropped"]), "-"),
            ("query-log events", "%d" % logged.get("emitted", 0), "-"),
        ]
        table = format_table(
            "Service observability overhead — TPC-H micro (%d queries, %d rounds)"
            % (len(names), repeats),
            ("configuration", "value", "vs obs off"),
            rows,
        )
        emit("bench_obs_overhead", table)

        if overhead >= MAX_OVERHEAD:
            print(
                "FAIL: observability overhead %.2f%% exceeds the %.0f%% gate"
                % (overhead * 100, MAX_OVERHEAD * 100)
            )
            return 1
        print(
            "OK: observability overhead %.2f%% is within the %.0f%% gate"
            % (overhead * 100, MAX_OVERHEAD * 100)
        )
        return 0
    finally:
        off.close(wait=False)
        on.close(wait=False)


if __name__ == "__main__":
    sys.exit(main())
