"""EXPLAIN ANALYZE overhead bench: analysis *off* must cost nothing.

The analyze layer (:mod:`repro.obs.analyze`) promises a zero-overhead
disabled path: enabling swaps the evaluators' ``_eval`` dispatcher, so
with analysis off the hot path is the original uninstrumented function
— not a wrapped or guarded one.  This bench enforces that promise on
the TPC-H execution sweep:

1. structurally: before and after an analyzed run, the engine's
   ``_eval`` must *be* its plain function (``_eval is _eval_plain``) —
   identity, not equivalence, so the disabled path cannot regress;
2. empirically: after an enable/disable round-trip, two interleaved
   best-of-N samplings of the disabled sweep must agree within
   ``MAX_OVERHEAD`` (<3%) — bounding residual overhead and timing
   noise together, the CI gate for the acceptance criterion.

An analyzed sweep is also timed, informationally — it is *expected* to
be slower (per-node timing on an interpreter), which is why analysis is
opt-in per query.

Run with::

    PYTHONPATH=src python benchmarks/bench_analyze_overhead.py
    PYTHONPATH=src python benchmarks/bench_analyze_overhead.py --quick
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from tables import emit, format_table

from repro.compiler.pipeline import compile_sql
from repro.data.model import Record
from repro.nraenv import exec as engine
from repro.obs.analyze import analyze_execution
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import ENGINE_EXECUTABLE, QUERIES

#: The CI gate: off-path overhead must stay within noise.
MAX_OVERHEAD = 0.03

#: Full remeasurements allowed before declaring the gap real.
MAX_ATTEMPTS = 3

QUICK_QUERIES = ("q1", "q3", "q6", "q10")


def compile_plans(names):
    plans = []
    for name in names:
        result = compile_sql(QUERIES[name])
        plans.append((name, result.output("nraenv_opt")))
    return plans


def sweep(plans, constants, passes: int = 2) -> float:
    """Time ``passes`` back-to-back executions of every plan.

    Two passes per sample lengthen the timed region past the scheduler's
    quantum-level jitter — a 50 ms region on a shared CI box can swing
    several percent on its own.
    """
    start = time.perf_counter()
    for _ in range(passes):
        for _, plan in plans:
            engine.eval_fast(plan, Record({}), None, constants)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI mode: subset + fewer repeats")
    parser.add_argument("--repeats", type=int, default=None, help="best-of-N repeats")
    args = parser.parse_args(argv)

    names = QUICK_QUERIES if args.quick else ENGINE_EXECUTABLE
    repeats = args.repeats or (5 if args.quick else 7)
    constants = generate(MICRO, seed=7)
    plans = compile_plans(names)

    assert engine._eval is engine._eval_plain, "analysis must start disabled"

    # warm caches (record key caches, code paths) before timing anything
    sweep(plans, constants)

    # exercise the enable/disable round-trip, and time the analyzed sweep
    analyzed_start = time.perf_counter()
    with analyze_execution():
        assert engine._eval is engine._eval_analyzed, "enable must swap the dispatcher"
        for _ in range(2):  # same pass count as sweep(), so the ratio is honest
            for _, plan in plans:
                engine.eval_fast(plan, Record({}), None, constants)
    analyzed = time.perf_counter() - analyzed_start
    assert engine._eval is engine._eval_plain, "disable must restore the plain dispatcher"

    # Paired ABBA sampling: each round times A B B A (A = side "base",
    # B = side "post"), so linear drift within a round and the
    # consistently-slower-later-position effect cancel exactly; each
    # round contributes one ratio and the *median* over rounds is the
    # gated statistic — a round hit by a noisy-neighbour spike becomes
    # one outlier ratio instead of poisoning a side's minimum.
    def measure():
        baseline_samples, after_samples, ratios = [], [], []
        gc.disable()
        try:
            for _ in range(repeats):
                gc.collect()
                base1 = sweep(plans, constants)
                post1 = sweep(plans, constants)
                post2 = sweep(plans, constants)
                base2 = sweep(plans, constants)
                baseline_samples.extend((base1, base2))
                after_samples.extend((post1, post2))
                ratios.append((post1 + post2) / (base1 + base2))
        finally:
            gc.enable()
        return (
            min(baseline_samples),
            min(after_samples),
            sorted(ratios)[len(ratios) // 2],
        )

    # The two sides run *identical code* (the structural asserts above
    # prove it), so a measured gap is either a real regression — which
    # persists — or a contention burst — which doesn't.  Retry up to
    # MAX_ATTEMPTS and gate on the best attempt: a true regression
    # fails every attempt, noise has to strike three times in a row.
    for attempt in range(MAX_ATTEMPTS):
        baseline, after, median_ratio = measure()
        if median_ratio - 1.0 < MAX_OVERHEAD:
            break
        print(
            "attempt %d/%d: median ratio %+.2f%% over the gate, remeasuring"
            % (attempt + 1, MAX_ATTEMPTS, (median_ratio - 1.0) * 100)
        )

    overhead = median_ratio - 1.0
    rows = [
        ("analysis off, side A (best)", "%.4f s" % baseline, "-"),
        ("analysis off, side B (best)", "%.4f s" % after, "%+.2f%%" % (after / baseline * 100 - 100)),
        ("median paired ratio (gated)", "-", "%+.2f%%" % (overhead * 100)),
        ("analyzed (informational)", "%.4f s" % analyzed, "%.1fx" % (analyzed / baseline)),
    ]
    table = format_table(
        "EXPLAIN ANALYZE overhead — TPC-H exec sweep (%d queries, best of %d)"
        % (len(plans), repeats),
        ("configuration", "sweep time", "vs baseline"),
        rows,
    )
    emit("bench_analyze_overhead", table)

    if overhead >= MAX_OVERHEAD:
        print(
            "FAIL: disabled-path overhead %.2f%% exceeds the %.0f%% gate"
            % (overhead * 100, MAX_OVERHEAD * 100)
        )
        return 1
    print(
        "OK: disabled-path overhead %.2f%% is within the %.0f%% gate"
        % (overhead * 100, MAX_OVERHEAD * 100)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
