"""NRAe up close: the paper's §3.3 semantics examples and Theorem 2.

Builds algebra terms by hand, evaluates them, shows the unification
behaviour of ``⊗`` + ``χe``, applies the optimizer's rewrites to a
plan, and round-trips a plan through the Figure 4 translation to NRA.

Run:  python examples/algebra_playground.py
"""

from repro.data.model import Record, bag, rec
from repro.data.operators import OpAdd
from repro.nra import eval_nra
from repro.nraenv import builders as b
from repro.nraenv.eval import eval_nraenv
from repro.optim.defaults import optimize_nraenv
from repro.translate.nraenv_to_nra import encode_input, nraenv_to_nra


def main() -> None:
    # ---- the §3.3 merge examples --------------------------------------
    env = rec(A=1, B=3)
    body = b.binop(OpAdd(), b.dot(b.env(), "A"), b.dot(b.env(), "C"))
    ok = b.appenv(b.chie(body), b.merge(b.env(), b.const(rec(B=3, C=4))))
    fail = b.appenv(b.chie(body), b.merge(b.env(), b.const(rec(B=2, C=4))))
    print("environment:", env)
    print("χe⟨Env.A+Env.C⟩ ∘e (Env ⊗ [B:3, C:4]) =", eval_nraenv(ok, env, None))
    print("χe⟨Env.A+Env.C⟩ ∘e (Env ⊗ [B:2, C:4]) =", eval_nraenv(fail, env, None))

    # ---- T1e from Figure 1 --------------------------------------------
    people = bag(
        rec(addr=rec(city="NY")),
        rec(addr=rec(city="SF")),
    )
    unfused = b.chi(
        b.appenv(b.dots(b.env(), "a", "city"), b.concat(b.env(), b.rec_field("a", b.id_()))),
        b.chi(
            b.appenv(b.dots(b.env(), "p", "addr"), b.concat(b.env(), b.rec_field("p", b.id_()))),
            b.table("P"),
        ),
    )
    fused = b.chi(
        b.appenv(b.dots(b.env(), "p", "addr", "city"), b.concat(b.env(), b.rec_field("p", b.id_()))),
        b.table("P"),
    )
    constants = {"P": people}
    print("\nT1 (unfused):", unfused)
    print("T1 (fused):  ", fused)
    print(
        "equal on data:",
        eval_nraenv(unfused, rec(), None, constants)
        == eval_nraenv(fused, rec(), None, constants),
    )

    # ---- the optimizer at work ----------------------------------------
    result = optimize_nraenv(unfused)
    print("\noptimizing the unfused plan: size %d → %d in %d passes" % (
        result.initial_cost, result.final_cost, result.passes))
    fired = sorted(result.fire_counts.items(), key=lambda kv: -kv[1])[:5]
    print("top rewrites fired:", ", ".join("%s×%d" % (n, c) for n, c in fired))
    print("optimized:", result.plan)

    # ---- Theorem 2: NRAe → NRA round trip -----------------------------
    gamma, datum = rec(x=10), bag(rec(a=1), rec(a=2))
    plan = b.chi(b.add(b.dot(b.id_(), "a"), b.dot(b.env(), "x")), b.id_())
    translated = nraenv_to_nra(plan)
    lhs = eval_nraenv(plan, gamma, datum)
    rhs = eval_nra(translated, encode_input(gamma, datum))
    print("\nTheorem 2 round trip:")
    print("    γ ⊢ q @ d ⇓a", lhs)
    print("    ⊢ JqK @ [E:γ]⊕[D:d] ⇓n", rhs)
    print("    sizes: NRAe %d vs NRA %d (the encoding cost NRAe avoids)" % (
        plan.size(), translated.size()))


if __name__ == "__main__":
    main()
