"""Quickstart: compile a LINQ-style query through the full pipeline.

The paper's §6 example::

    Persons.Where(p => p.age < 30).Select(p => p.name)

is an NRAλ expression; the compiler eliminates the lambdas into NRAe
environments (Figure 6), optimizes, lowers to NNRC, and generates a
plain Python function.

Run:  python examples/quickstart.py
"""

from repro import bag, rec
from repro.compiler.pipeline import compile_lnra, compile_to_python
from repro.data.operators import OpDot, OpLt
from repro.lambda_nra import Lambda, LBinop, LConst, LFilter, LMap, LTable, LUnop, LVar


def main() -> None:
    # Persons.Where(p => p.age < 30).Select(p => p.name)
    query = LMap(
        Lambda("p", LUnop(OpDot("name"), LVar("p"))),
        LFilter(
            Lambda("p", LBinop(OpLt(), LUnop(OpDot("age"), LVar("p")), LConst(30))),
            LTable("Persons"),
        ),
    )
    print("NRAλ query:")
    print("   ", query)

    result = compile_lnra(query)
    print("\nNRAe (Figure 6 translation — note Env and ∘e):")
    print("   ", result.output("to_nraenv"))
    print("\nNRAe after optimization:")
    print("   ", result.output("nraenv_opt"))
    print("\nNNRC (optimized):")
    print("   ", result.final)

    run = compile_to_python(result.final, name="young_names")
    print("\nGenerated Python:")
    for line in run.__source__.splitlines():
        print("   ", line)

    persons = bag(
        rec(name="ann", age=40),
        rec(name="bob", age=22),
        rec(name="cyd", age=19),
    )
    print("\nResult on sample data:", run({"Persons": persons}))


if __name__ == "__main__":
    main()
