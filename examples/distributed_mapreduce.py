"""NNRCMR-lite: run a compiled query on a simulated cluster (paper §8).

Q*cert lowers NNRC to NNRCMR (map/reduce) for Spark and Cloudant; this
example compiles a TPC-H-q6-style aggregation into a map/reduce chain
and executes it with different shard counts — the result is invariant,
which is the distributed-semantics property that matters.

Run:  python examples/distributed_mapreduce.py
"""

from repro.backend.mapreduce import distribute, is_distributable, run_chain
from repro.data.foreign import DateValue
from repro.data.model import Bag
from repro.data.operators import (
    OpAnd,
    OpBag,
    OpFlatten,
    OpGe,
    OpLt,
    OpMult,
    OpSum,
)
from repro.nnrc import ast
from repro.nnrc.eval import eval_nnrc
from repro.tpch.datagen import SMALL, generate


def dot(expr, field):
    return ast.Unop(
        __import__("repro.data.operators", fromlist=["OpDot"]).OpDot(field), expr
    )


def build_q6_like():
    """sum of extendedprice*discount over 1994 shipments (q6's core)."""
    x = ast.Var("l")
    start = ast.Const(DateValue(1994, 1, 1))
    end = ast.Const(DateValue(1995, 1, 1))
    in_window = ast.Binop(
        OpAnd(),
        ast.Binop(OpGe(), dot(x, "l_shipdate"), start),
        ast.Binop(OpLt(), dot(x, "l_shipdate"), end),
    )
    revenue = ast.Binop(OpMult(), dot(x, "l_extendedprice"), dot(x, "l_discount"))
    keep = ast.If(in_window, ast.Unop(OpBag(), revenue), ast.Const(Bag([])))
    return ast.Unop(
        OpSum(),
        ast.Unop(OpFlatten(), ast.For("l", ast.GetConstant("lineitem"), keep)),
    )


def main() -> None:
    db = generate(SMALL, seed=7)
    expr = build_q6_like()
    print("NNRC:", expr)
    print("distributable:", is_distributable(expr))

    chain = distribute(expr)
    print("\nmap/reduce chain:")
    print("   ", chain)

    sequential = eval_nnrc(expr, {}, db)
    print("\nsequential NNRC result: %.2f" % sequential)
    for shards in (1, 2, 4, 8, 16):
        result = run_chain(chain, db, shards=shards)
        marker = "✓" if abs(result - sequential) < 1e-6 else "✗"
        print("  %2d shards → %.2f %s" % (shards, result, marker))

    # something the subset cannot ship: a driver-side variable
    leaky = ast.Let(
        "threshold",
        ast.Const(100),
        ast.For(
            "l",
            ast.GetConstant("lineitem"),
            ast.Binop(OpGe(), dot(ast.Var("l"), "l_quantity"), ast.Var("threshold")),
        ),
    )
    print("\nexpression with a driver-side variable distributable?",
          is_distributable(leaky))


if __name__ == "__main__":
    main()
