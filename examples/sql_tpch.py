"""Run TPC-H queries end to end on the bundled mini database (paper §6).

Compiles a few TPC-H queries through SQL → NRAe → optimize → NNRC →
Python, executes them against the deterministic micro TPC-H generator,
and prints the per-stage metrics that Figure 7 reports.

Run:  python examples/sql_tpch.py
"""

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.compiler.pipeline import compile_sql
from repro.data.model import Record, to_python
from repro.nraenv.exec import eval_fast
from repro.sql.parser import parse_sql
from repro.sql.to_nraenv import sql_to_nraenv
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import ENGINE_EXECUTABLE, QUERIES

SHOWCASE = ("q1", "q3", "q6")


def main() -> None:
    db = generate(MICRO, seed=7)
    print(
        "mini TPC-H database:",
        ", ".join("%s=%d" % (name, len(rows)) for name, rows in sorted(db.items())),
    )

    for name in SHOWCASE:
        text = QUERIES[name]
        script = parse_sql(text)
        result = compile_sql(text)
        plan = result.output("to_nraenv")
        optimized = result.output("nraenv_opt")
        print("\n=== %s ===" % name)
        print(
            "sizes: SQL %d → NRAe %d → NRAe-opt %d → NNRC-opt %d   (depth %d)"
            % (
                script.size(),
                plan.size(),
                optimized.size(),
                result.final.size(),
                plan.depth(),
            )
        )
        print(
            "times: "
            + "  ".join("%s %.3fs" % (k, v) for k, v in result.timings().items())
        )
        query = compile_nnrc_to_callable(result.final, name=name)
        rows = to_python(query(db))
        print("rows (%d):" % len(rows))
        for row in rows[:5]:
            print("   ", row)
        if len(rows) > 5:
            print("    ... and %d more" % (len(rows) - 5))

    # The join engine runs every supported query (q2 excepted) quickly —
    # even the 6-to-8-table joins the nested-loop semantics cannot touch.
    import time

    print("\n=== join-engine sweep over all %d queries ===" % len(ENGINE_EXECUTABLE))
    start = time.perf_counter()
    for name in ENGINE_EXECUTABLE:
        plan = sql_to_nraenv(parse_sql(QUERIES[name]))
        rows = eval_fast(plan, Record({}), None, db)
        print("    %-4s %2d rows" % (name, len(rows)))
    print("total: %.1fs" % (time.perf_counter() - start))


if __name__ == "__main__":
    main()
