"""Compile a production rule through CAMP — the paper's motivating use (§7).

Defines a JRules-style rule with the macro layer ("for each gold client
and each of their orders over 100, emit client and amount"), compiles it
through both paths of Figure 9, and shows the plan-size gap that
motivated NRAe.

Run:  python examples/business_rules.py
"""

from repro.camp.eval import eval_camp
from repro.compiler.pipeline import (
    compile_camp,
    compile_camp_to_nra_via_nraenv,
    compile_camp_via_nra,
    compile_to_python,
)
from repro.data.model import Record, bag, rec
from repro.rules import macros as m

WORLD = bag(
    rec(klass="Client", id=1, name="ada", status="gold"),
    rec(klass="Client", id=2, name="bob", status="silver"),
    rec(klass="Client", id=3, name="cyd", status="gold"),
    rec(klass="Order", id=100, client=1, amount=250),
    rec(klass="Order", id=101, client=1, amount=40),
    rec(klass="Order", id=102, client=3, amount=500),
)


def build_rule():
    return m.when(
        m.bind_class("c", "Client"),
        m.guard(
            m.eq(m.dot(m.var("c"), "status"), m.const("gold")),
            m.when(
                m.bind_class("o", "Order"),
                m.guard(
                    m.eq(m.dot(m.var("o"), "client"), m.dot(m.var("c"), "id")),
                    m.guard(
                        m.gt(m.dot(m.var("o"), "amount"), m.const(100)),
                        m.return_(
                            m.record(
                                {
                                    "client": m.dot(m.var("c"), "name"),
                                    "amount": m.dot(m.var("o"), "amount"),
                                }
                            )
                        ),
                    ),
                ),
            ),
        ),
    )


def main() -> None:
    rule = build_rule()
    print("CAMP pattern (abridged):", repr(rule)[:100], "...")

    direct = eval_camp(rule, WORLD, Record({}), {"WORLD": WORLD})
    print("\nCAMP interpreter result:", direct)

    # The Figure 9 comparison: compile through NRAe vs directly to NRA.
    through = compile_camp(rule)
    via_nra = compile_camp_via_nra(rule)
    to_nra = compile_camp_to_nra_via_nraenv(rule)
    print("\nplan sizes (the Figure 9 story):")
    print("    CAMP → NRAe           :", through.output("to_nraenv").size())
    print("    CAMP → NRAe optimized :", through.output("nraenv_opt").size())
    print("    CAMP → NRA  (direct)  :", via_nra.output("to_nra").size())
    print("    CAMP → NRA  (via NRAe):", to_nra.output("nra_opt").size())
    print("    NNRC via NRAe         :", through.final.size())
    print("    NNRC via direct NRA   :", via_nra.final.size())

    run = compile_to_python(through.final, name="gold_big_orders")
    result = run({"WORLD": WORLD}, WORLD, Record({}))
    print("\ncompiled result:", result)
    assert result == bag(direct)


if __name__ == "__main__":
    main()
