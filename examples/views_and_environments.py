"""Views live in the environment (paper §6's revenue0 example).

A SQL view compiles to ``q_stmt ∘e (Env ⊕ [revenue0: q_view])``: the
view is bound into the NRAe environment and referenced as an environment
access — no plan duplication, and dropping the view is just scoping.
The same mechanism handles OQL ``define`` and SQL WITH clauses.

Run:  python examples/views_and_environments.py
"""

from repro.backend.python_gen import compile_nnrc_to_callable
from repro.compiler.pipeline import compile_oql, compile_sql
from repro.data.model import to_python
from repro.nraenv import ast
from repro.tpch.datagen import MICRO, generate
from repro.tpch.queries import QUERIES


def main() -> None:
    db = generate(MICRO, seed=7)

    # --- SQL: the paper's §6 example is TPC-H q15 ---------------------
    result = compile_sql(QUERIES["q15"])
    plan = result.output("to_nraenv")

    appenvs = sum(1 for node in plan.walk() if isinstance(node, ast.AppEnv))
    env_reads = sum(1 for node in plan.walk() if isinstance(node, ast.Env))
    print("q15 (create view revenue0 ... ; select ... from revenue0)")
    print("    NRAe plan size %d, ∘e nodes %d, Env reads %d" % (plan.size(), appenvs, env_reads))
    print("    outermost operator: %s  (the view binding)" % type(plan).__name__)

    query = compile_nnrc_to_callable(result.final, name="q15")
    rows = to_python(query(db))
    print("    top supplier(s):")
    for row in rows:
        print("       ", {k: row[k] for k in ("s_suppkey", "s_name", "total_revenue")})

    # --- same query with WITH instead of a view ------------------------
    with_query = """
    with revenue0 (supplier_no, total_revenue) as (
      select l_suppkey, sum(l_extendedprice * (1 - l_discount))
      from lineitem
      where l_shipdate >= date '1996-01-01'
        and l_shipdate < date '1996-01-01' + interval '3' month
      group by l_suppkey
    )
    select s_suppkey, s_name, total_revenue
    from supplier, revenue0
    where s_suppkey = supplier_no
      and total_revenue = (select max(total_revenue) from revenue0)
    order by s_suppkey
    """
    # WITH syntax: column list via a wrapping subquery is also fine; here
    # we use the view-style column list directly.
    try:
        with_result = compile_sql(with_query)
        with_rows = to_python(
            compile_nnrc_to_callable(with_result.final, name="with_q15")(db)
        )
        shared = ("s_suppkey", "s_name", "total_revenue")
        agree = [{k: r[k] for k in shared} for r in with_rows] == [
            {k: r[k] for k in shared} for r in rows
        ]
        print("\nWITH-clause variant agrees:", agree)
    except Exception as exc:  # pragma: no cover - informational
        print("\nWITH-clause variant:", exc)

    # --- OQL: define uses the same environment binding ----------------
    oql = """
    define heavy as select l from l in lineitem where l.l_quantity >= 45;
    select distinct h.l_orderkey from h in heavy
    """
    oql_result = compile_oql(oql)
    query = compile_nnrc_to_callable(oql_result.final, name="heavy_orders")
    print("\nOQL define → orders with a 45+ quantity line:", sorted(to_python(query(db))))


if __name__ == "__main__":
    main()
