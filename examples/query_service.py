"""The query service: catalog, prepared queries, plan cache, errors.

`repro.service` wraps the one-shot compiler in a long-lived serving
layer: datasets register once, queries compile once, and parameters
bind at execute time.  This walkthrough registers a small dataset,
prepares a parametric query, shows a structural cache hit (a textually
different but structurally identical query reuses the compiled plan),
and demonstrates the structured error taxonomy — a compile error, a
runtime error, and a timeout each come back as an outcome, and the
service keeps serving afterwards.

Run:  PYTHONPATH=src python examples/query_service.py
"""

from repro.service import QueryService


def main() -> None:
    service = QueryService(cache_capacity=32, workers=2, default_timeout=10.0)

    # -- the catalog: named datasets with inferred schemas ---------------
    info = service.register_table(
        "people",
        [
            {"name": "ann", "age": 40, "city": "paris"},
            {"name": "bob", "age": 20, "city": "oslo"},
            {"name": "cyd", "age": 31, "city": "paris"},
        ],
    )
    print("registered:", info.describe())

    # -- prepared queries: compile once, bind $params per execution -----
    prepared = service.prepare(
        "sql", "select name from people where age > $min and city = $city"
    )
    print("\nprepared %s with params %s (compiled in %.1f ms)" % (
        prepared.handle, prepared.params, prepared.plan.compile_seconds * 1e3,
    ))
    for params in ({"min": 25, "city": "paris"}, {"min": 0, "city": "oslo"}):
        outcome = service.execute(prepared.handle, params=params)
        print("  %s -> %s" % (params, outcome.value))

    # -- the plan cache: structural, not textual -------------------------
    variant = service.prepare(
        "sql",
        "SELECT name  FROM people\n  WHERE age > $min AND city = $city  -- same plan",
    )
    print("\ntextual variant cached: %s (same plan object: %s)" % (
        variant.cached, variant.plan is prepared.plan,
    ))
    print("plan cache:", service.stats()["plan_cache"])

    # -- the error taxonomy: structured outcomes, never exceptions ------
    print("\nerror taxonomy:")
    bad_syntax = service.query("sql", "selec oops from people")
    print("  compile_error:", bad_syntax.error)
    missing = service.query("sql", "select a from no_such_table")
    print("  runtime_error:", missing.error)
    service.register_table("n", [{"i": i} for i in range(15)])
    slow = service.query(
        "sql", "select a.i from n a, n b, n c, n d where a.i = 1", timeout=0.02
    )
    print("  timeout:      ", slow.error)

    # ...and the service is still healthy:
    alive = service.query("sql", "select name from people where age > 25")
    print("\nstill serving:", alive.value)

    service.close(wait=False)


if __name__ == "__main__":
    main()
