"""Setuptools entry point (legacy path, so editable installs work offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "qcert-py: NRAe (nested relational algebra with environments) and a "
        "query compiler with a property-verified core, reproducing "
        "Auerbach et al., SIGMOD 2017"
    ),
    license="Apache-2.0",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "hypothesis", "pytest-benchmark"]},
)
