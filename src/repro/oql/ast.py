"""AST for the OQL subset (paper §6).

"That fragment includes select-from-where statements, aggregation,
object access, casting and object creation, and arbitrary nesting" —
this AST covers the same fragment over the brand-less data model
(object creation is ``struct``; class casts need the branded model the
paper's full implementation has and are out of scope, see DESIGN.md),
plus ``define`` declarations (OQL's views).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.sql.ast import SqlNode as _Node


class OqlNode(_Node):
    """Base class for OQL AST nodes (reuses the generic node kit)."""

    def depth(self) -> int:
        child_depths = [child.depth() for child in self.children()]
        deepest = max(child_depths) if child_depths else 0
        return deepest + (1 if isinstance(self, SelectFromWhere) else 0)


class OLiteral(OqlNode):
    _fields = ("value",)

    def __init__(self, value: Any):
        self.value = value


class OVar(OqlNode):
    """A variable or named collection reference."""

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name


class ODot(OqlNode):
    """``e.field`` (object access)."""

    _fields = ("expr", "field")

    def __init__(self, expr: OqlNode, field: str):
        self.expr = expr
        self.field = field


class OStruct(OqlNode):
    """``struct(a: e1, b: e2)`` (object creation)."""

    _fields = ("fields",)

    def __init__(self, fields: Sequence[Tuple[str, OqlNode]]):
        self.fields = [tuple(f) for f in fields]

    def children(self) -> List[OqlNode]:
        return [expr for _, expr in self.fields]


class OBagLiteral(OqlNode):
    """``bag(e1, ..., en)``."""

    _fields = ("items",)

    def __init__(self, items: Sequence[OqlNode]):
        self.items = list(items)


class OUnary(OqlNode):
    """``-e`` or ``not e``."""

    _fields = ("op", "operand")

    def __init__(self, op: str, operand: OqlNode):
        self.op = op
        self.operand = operand


class OBinary(OqlNode):
    """Arithmetic / comparison / boolean / membership binary expression."""

    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: OqlNode, right: OqlNode):
        self.op = op  # + - * / = != < <= > >= and or in union except intersect
        self.left = left
        self.right = right


class OAggregate(OqlNode):
    """``count(q) | sum(q) | avg(q) | min(q) | max(q)`` over a collection."""

    _fields = ("func", "arg")

    def __init__(self, func: str, arg: OqlNode):
        self.func = func
        self.arg = arg


class OFlatten(OqlNode):
    """``flatten(q)``."""

    _fields = ("arg",)

    def __init__(self, arg: OqlNode):
        self.arg = arg


class OExists(OqlNode):
    """``exists x in coll : pred``."""

    _fields = ("var", "coll", "pred")

    def __init__(self, var: str, coll: OqlNode, pred: OqlNode):
        self.var = var
        self.coll = coll
        self.pred = pred


class FromBinding(OqlNode):
    """One ``x in coll`` binding of a FROM clause."""

    _fields = ("var", "coll")

    def __init__(self, var: str, coll: OqlNode):
        self.var = var
        self.coll = coll


class SelectFromWhere(OqlNode):
    """``select [distinct] e from x1 in c1, ... [where p]``."""

    _fields = ("projection", "bindings", "where", "distinct")

    def __init__(
        self,
        projection: OqlNode,
        bindings: Sequence[FromBinding],
        where: Optional[OqlNode] = None,
        distinct: bool = False,
    ):
        self.projection = projection
        self.bindings = list(bindings)
        self.where = where
        self.distinct = distinct


class Define(OqlNode):
    """``define x as query`` — OQL's view declaration."""

    _fields = ("name", "query")

    def __init__(self, name: str, query: OqlNode):
        self.name = name
        self.query = query


class OqlProgram(OqlNode):
    """A sequence of defines followed by one main query."""

    _fields = ("defines", "query")

    def __init__(self, defines: Sequence[Define], query: OqlNode):
        self.defines = list(defines)
        self.query = query
