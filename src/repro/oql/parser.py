"""Parser for the OQL subset (reuses the SQL tokenizer)."""

from __future__ import annotations

from typing import List, Tuple

from repro.oql import ast
from repro.sql.lexer import SqlSyntaxError, TokenStream, tokenize

_AGGREGATES = ("count", "sum", "avg", "min", "max")
_TERMINATORS = ("from", "where", "in", "and", "or", "as", "define", "select")


def parse_oql(text: str) -> ast.OqlProgram:
    """Parse an OQL program: ``define``s followed by one query."""
    stream = TokenStream(tokenize(text))
    defines: List[ast.Define] = []
    while stream.at_keyword("define"):
        stream.expect_keyword("define")
        name = stream.expect_ident()
        stream.expect_keyword("as")
        defines.append(ast.Define(name, _parse_expr(stream)))
        stream.accept_symbol(";")
    query = _parse_expr(stream)
    stream.accept_symbol(";")
    if not stream.exhausted:
        token = stream.peek()
        raise SqlSyntaxError(
            "trailing OQL input at position %d: %r" % (token.position, token.value)
        )
    return ast.OqlProgram(defines, query)


def _parse_expr(stream: TokenStream) -> ast.OqlNode:
    if stream.at_keyword("select"):
        return _parse_select(stream)
    return _parse_or(stream)


def _parse_select(stream: TokenStream) -> ast.SelectFromWhere:
    stream.expect_keyword("select")
    distinct = bool(stream.accept_keyword("distinct"))
    projection = _parse_expr(stream)
    stream.expect_keyword("from")
    bindings = [_parse_binding(stream)]
    while stream.accept_symbol(","):
        bindings.append(_parse_binding(stream))
    where = None
    if stream.accept_keyword("where"):
        where = _parse_expr(stream)
    return ast.SelectFromWhere(projection, bindings, where, distinct)


def _parse_binding(stream: TokenStream) -> ast.FromBinding:
    var = stream.expect_ident()
    stream.expect_keyword("in")
    return ast.FromBinding(var, _parse_unary(stream))


def _parse_or(stream: TokenStream) -> ast.OqlNode:
    left = _parse_and(stream)
    while stream.accept_keyword("or"):
        left = ast.OBinary("or", left, _parse_and(stream))
    return left


def _parse_and(stream: TokenStream) -> ast.OqlNode:
    left = _parse_not(stream)
    while stream.accept_keyword("and"):
        left = ast.OBinary("and", left, _parse_not(stream))
    return left


def _parse_not(stream: TokenStream) -> ast.OqlNode:
    if stream.accept_keyword("not"):
        return ast.OUnary("not", _parse_not(stream))
    return _parse_comparison(stream)


def _parse_comparison(stream: TokenStream) -> ast.OqlNode:
    left = _parse_additive(stream)
    for symbol, op in (
        ("<=", "<="),
        (">=", ">="),
        ("!=", "!="),
        ("<>", "!="),
        ("=", "="),
        ("<", "<"),
        (">", ">"),
    ):
        if stream.at_symbol(symbol):
            stream.next()
            return ast.OBinary(op, left, _parse_additive(stream))
    if stream.accept_keyword("in"):
        return ast.OBinary("in", left, _parse_additive(stream))
    for keyword in ("union", "except", "intersect"):
        if stream.accept_keyword(keyword):
            return ast.OBinary(keyword, left, _parse_additive(stream))
    return left


def _parse_additive(stream: TokenStream) -> ast.OqlNode:
    left = _parse_multiplicative(stream)
    while stream.at_symbol("+", "-"):
        op = stream.next().value
        left = ast.OBinary(op, left, _parse_multiplicative(stream))
    return left


def _parse_multiplicative(stream: TokenStream) -> ast.OqlNode:
    left = _parse_unary(stream)
    while stream.at_symbol("*", "/"):
        op = stream.next().value
        left = ast.OBinary(op, left, _parse_unary(stream))
    return left


def _parse_unary(stream: TokenStream) -> ast.OqlNode:
    if stream.accept_symbol("-"):
        return ast.OUnary("-", _parse_unary(stream))
    return _parse_postfix(stream)


def _parse_postfix(stream: TokenStream) -> ast.OqlNode:
    expr = _parse_primary(stream)
    while stream.accept_symbol("."):
        expr = ast.ODot(expr, stream.expect_ident())
    return expr


def _parse_primary(stream: TokenStream) -> ast.OqlNode:
    token = stream.peek()
    if token.kind == "number":
        stream.next()
        return ast.OLiteral(float(token.value) if "." in token.value else int(token.value))
    if token.kind == "string":
        stream.next()
        return ast.OLiteral(token.value)
    if stream.accept_symbol("("):
        expr = _parse_expr(stream)
        stream.expect_symbol(")")
        return expr
    if token.kind != "ident":
        raise SqlSyntaxError(
            "unexpected OQL token %r at position %d" % (token.value, token.position)
        )
    word = token.value
    if word == "true":
        stream.next()
        return ast.OLiteral(True)
    if word == "false":
        stream.next()
        return ast.OLiteral(False)
    if word == "struct":
        stream.next()
        stream.expect_symbol("(")
        fields: List[Tuple[str, ast.OqlNode]] = []
        if not stream.at_symbol(")"):
            while True:
                name = stream.expect_ident()
                stream.expect_symbol(":")
                fields.append((name, _parse_expr(stream)))
                if not stream.accept_symbol(","):
                    break
        stream.expect_symbol(")")
        return ast.OStruct(fields)
    if word == "bag":
        stream.next()
        stream.expect_symbol("(")
        items: List[ast.OqlNode] = []
        if not stream.at_symbol(")"):
            items.append(_parse_expr(stream))
            while stream.accept_symbol(","):
                items.append(_parse_expr(stream))
        stream.expect_symbol(")")
        return ast.OBagLiteral(items)
    if word == "flatten":
        stream.next()
        stream.expect_symbol("(")
        arg = _parse_expr(stream)
        stream.expect_symbol(")")
        return ast.OFlatten(arg)
    if word == "exists":
        stream.next()
        var = stream.expect_ident()
        stream.expect_keyword("in")
        coll = _parse_unary(stream)
        stream.expect_symbol(":")
        pred = _parse_expr(stream)
        return ast.OExists(var, coll, pred)
    if word in _AGGREGATES and stream.peek(1).kind == "symbol" and stream.peek(1).value == "(":
        stream.next()
        stream.expect_symbol("(")
        arg = _parse_expr(stream)
        stream.expect_symbol(")")
        return ast.OAggregate(word, arg)
    stream.next()
    return ast.OVar(word)
