"""Direct interpreter for the OQL subset.

The paper wrote a formal semantics for its OQL fragment "in order to
prove the translation to NRAe correct"; this interpreter plays that
role here — an independent oracle the translation's property tests
compare against.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.data.model import Bag, DataError, Record
from repro.data.operators import OpAvg, OpMax, OpMin, OpSum, _like_match  # noqa: F401
from repro.nraenv.eval import EvalError
from repro.oql import ast


def eval_oql(
    program: ast.OqlNode,
    constants: Optional[Mapping[str, Any]] = None,
    env: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate an OQL program or expression.

    ``constants`` maps named collections (class extents) to bags.
    """
    constants = constants or {}
    scope: Dict[str, Any] = dict(env or {})
    defines: Dict[str, Any] = {}
    if isinstance(program, ast.OqlProgram):
        for define in program.defines:
            defines[define.name] = _eval(define.query, scope, defines, constants)
        return _eval(program.query, scope, defines, constants)
    return _eval(program, scope, defines, constants)


def _eval(
    expr: ast.OqlNode,
    scope: Dict[str, Any],
    defines: Dict[str, Any],
    constants: Mapping[str, Any],
) -> Any:
    if isinstance(expr, ast.OLiteral):
        return expr.value
    if isinstance(expr, ast.OVar):
        if expr.name in scope:
            return scope[expr.name]
        if expr.name in defines:
            return defines[expr.name]
        if expr.name in constants:
            return constants[expr.name]
        raise EvalError("unbound OQL name %r" % expr.name)
    if isinstance(expr, ast.ODot):
        value = _eval(expr.expr, scope, defines, constants)
        if not isinstance(value, Record):
            raise EvalError("object access on non-record %r" % (value,))
        return value[expr.field]
    if isinstance(expr, ast.OStruct):
        return Record(
            {name: _eval(sub, scope, defines, constants) for name, sub in expr.fields}
        )
    if isinstance(expr, ast.OBagLiteral):
        return Bag(_eval(item, scope, defines, constants) for item in expr.items)
    if isinstance(expr, ast.OFlatten):
        value = _eval(expr.arg, scope, defines, constants)
        from repro.data.model import flatten

        try:
            return flatten(value)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(expr, ast.OUnary):
        value = _eval(expr.operand, scope, defines, constants)
        if expr.op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EvalError("- expects a number, got %r" % (value,))
            return -value
        if expr.op == "not":
            if not isinstance(value, bool):
                raise EvalError("not expects a boolean, got %r" % (value,))
            return not value
        raise EvalError("unknown unary op %r" % expr.op)
    if isinstance(expr, ast.OBinary):
        return _eval_binary(expr, scope, defines, constants)
    if isinstance(expr, ast.OAggregate):
        value = _eval(expr.arg, scope, defines, constants)
        if not isinstance(value, Bag):
            raise EvalError("%s expects a collection, got %r" % (expr.func, value))
        try:
            if expr.func == "count":
                return len(value)
            if expr.func == "sum":
                return OpSum().apply(value)
            if expr.func == "avg":
                return OpAvg().apply(value)
            if expr.func == "min":
                return OpMin().apply(value)
            if expr.func == "max":
                return OpMax().apply(value)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
        raise EvalError("unknown aggregate %r" % expr.func)
    if isinstance(expr, ast.OExists):
        coll = _eval(expr.coll, scope, defines, constants)
        if not isinstance(coll, Bag):
            raise EvalError("exists expects a collection, got %r" % (coll,))
        for item in coll:
            inner = dict(scope)
            inner[expr.var] = item
            verdict = _eval(expr.pred, inner, defines, constants)
            if not isinstance(verdict, bool):
                raise EvalError("exists predicate returned %r" % (verdict,))
            if verdict:
                return True
        return False
    if isinstance(expr, ast.SelectFromWhere):
        results = list(
            _iterate(expr, 0, scope, defines, constants)
        )
        bag = Bag(results)
        return bag.distinct() if expr.distinct else bag
    raise EvalError("unknown OQL node %r" % (expr,))


def _iterate(
    sfw: ast.SelectFromWhere,
    index: int,
    scope: Dict[str, Any],
    defines: Dict[str, Any],
    constants: Mapping[str, Any],
):
    if index == len(sfw.bindings):
        if sfw.where is not None:
            verdict = _eval(sfw.where, scope, defines, constants)
            if not isinstance(verdict, bool):
                raise EvalError("where returned non-boolean %r" % (verdict,))
            if not verdict:
                return
        yield _eval(sfw.projection, scope, defines, constants)
        return
    binding = sfw.bindings[index]
    coll = _eval(binding.coll, scope, defines, constants)
    if not isinstance(coll, Bag):
        raise EvalError("from-binding expects a collection, got %r" % (coll,))
    for item in coll:
        inner = dict(scope)
        inner[binding.var] = item
        for result in _iterate(sfw, index + 1, inner, defines, constants):
            yield result


def _eval_binary(
    expr: ast.OBinary,
    scope: Dict[str, Any],
    defines: Dict[str, Any],
    constants: Mapping[str, Any],
) -> Any:
    from repro.data import operators as ops

    table = {
        "+": ops.OpAdd(),
        "-": ops.OpSub(),
        "*": ops.OpMult(),
        "/": ops.OpDiv(),
        "=": ops.OpEq(),
        "<": ops.OpLt(),
        "<=": ops.OpLe(),
        ">": ops.OpGt(),
        ">=": ops.OpGe(),
        "and": ops.OpAnd(),
        "or": ops.OpOr(),
        "in": ops.OpIn(),
        "union": ops.OpUnion(),
        "except": ops.OpBagDiff(),
        "intersect": ops.OpBagInter(),
    }
    left = _eval(expr.left, scope, defines, constants)
    right = _eval(expr.right, scope, defines, constants)
    try:
        if expr.op == "!=":
            return not ops.OpEq().apply(left, right)
        if expr.op in table:
            return table[expr.op].apply(left, right)
    except DataError as exc:
        raise EvalError(str(exc)) from exc
    raise EvalError("unknown binary op %r" % expr.op)
