"""OQL → NRAe translation (paper §6, the "classic" translation of [14]).

Select-from-where becomes nested maps over the FROM collections, with
each binding pushed into the environment (``∘e (Env ⊕ [x: In])``), and
``define`` declarations use the same view mechanism as SQL: the main
query is composed over an extended environment.  The paper notes "most
of the translation for OQL does not use environment operators... at the
discretion of the compiler developer" — here we do use them for
variables, which keeps the translation one page (the NRAλ story of
Figure 6 applied to OQL).
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.data import operators as ops
from repro.data.model import Bag, Record
from repro.nraenv import ast as nra
from repro.nraenv import builders as b
from repro.oql import ast

#: Environment-field prefix for ``define`` bindings (see the SQL
#: translator for the rationale).
REL_PREFIX = "__rel_"


class OqlTranslationError(ValueError):
    """Raised on constructs outside the supported subset."""


def oql_to_nraenv(program: ast.OqlNode) -> nra.NraeNode:
    """Translate an OQL program (or bare expression) to an NRAe plan."""
    if isinstance(program, ast.OqlProgram):
        defines = [d.name for d in program.defines]
        plan = _compile(program.query, frozenset(), frozenset(defines))
        seen: List[str] = []
        for define in reversed(program.defines):
            visible = frozenset(defines[: defines.index(define.name)])
            define_plan = _compile(define.query, frozenset(), visible)
            plan = b.appenv(
                plan, b.concat(b.env(), b.rec_field(REL_PREFIX + define.name, define_plan))
            )
            seen.append(define.name)
        return plan
    return _compile(program, frozenset(), frozenset())


def _compile(
    expr: ast.OqlNode, variables: FrozenSet[str], defines: FrozenSet[str]
) -> nra.NraeNode:
    if isinstance(expr, ast.OLiteral):
        return b.const(expr.value)
    if isinstance(expr, ast.OVar):
        if expr.name in variables:
            return b.dot(b.env(), expr.name)
        if expr.name in defines:
            return b.dot(b.env(), REL_PREFIX + expr.name)
        return b.table(expr.name)
    if isinstance(expr, ast.ODot):
        return b.dot(_compile(expr.expr, variables, defines), expr.field)
    if isinstance(expr, ast.OStruct):
        return b.record(
            {name: _compile(sub, variables, defines) for name, sub in expr.fields}
        )
    if isinstance(expr, ast.OBagLiteral):
        if not expr.items:
            return b.const(Bag([]))
        plan = b.coll(_compile(expr.items[0], variables, defines))
        for item in expr.items[1:]:
            plan = b.union(plan, b.coll(_compile(item, variables, defines)))
        return plan
    if isinstance(expr, ast.OFlatten):
        return b.flatten_(_compile(expr.arg, variables, defines))
    if isinstance(expr, ast.OUnary):
        operand = _compile(expr.operand, variables, defines)
        if expr.op == "-":
            return b.unop(ops.OpNumNeg(), operand)
        if expr.op == "not":
            return b.neg(operand)
        raise OqlTranslationError("unknown unary op %r" % expr.op)
    if isinstance(expr, ast.OBinary):
        table = {
            "+": ops.OpAdd(),
            "-": ops.OpSub(),
            "*": ops.OpMult(),
            "/": ops.OpDiv(),
            "=": ops.OpEq(),
            "<": ops.OpLt(),
            "<=": ops.OpLe(),
            ">": ops.OpGt(),
            ">=": ops.OpGe(),
            "and": ops.OpAnd(),
            "or": ops.OpOr(),
            "in": ops.OpIn(),
            "union": ops.OpUnion(),
            "except": ops.OpBagDiff(),
            "intersect": ops.OpBagInter(),
        }
        left = _compile(expr.left, variables, defines)
        right = _compile(expr.right, variables, defines)
        if expr.op == "!=":
            return b.neg(b.eq(left, right))
        if expr.op in table:
            return b.binop(table[expr.op], left, right)
        raise OqlTranslationError("unknown binary op %r" % expr.op)
    if isinstance(expr, ast.OAggregate):
        arg = _compile(expr.arg, variables, defines)
        table = {
            "count": ops.OpCount(),
            "sum": ops.OpSum(),
            "avg": ops.OpAvg(),
            "min": ops.OpMin(),
            "max": ops.OpMax(),
        }
        return b.unop(table[expr.func], arg)
    if isinstance(expr, ast.OExists):
        coll = _compile(expr.coll, variables, defines)
        pred = _compile(expr.pred, variables | {expr.var}, defines)
        bound_pred = b.appenv(pred, b.concat(b.env(), b.rec_field(expr.var, b.id_())))
        count = b.count(b.sigma(bound_pred, coll))
        return b.neg(b.eq(count, b.const(0)))
    if isinstance(expr, ast.SelectFromWhere):
        return _compile_sfw(expr, variables, defines)
    raise OqlTranslationError("unknown OQL node %r" % (expr,))


def _compile_sfw(
    sfw: ast.SelectFromWhere, variables: FrozenSet[str], defines: FrozenSet[str]
) -> nra.NraeNode:
    """``select e from x1 in c1, ..., xn in cn where p``::

        flattenⁿ⁻¹( χ⟨ … χ⟨ base ∘e (Env ⊕ [xn: In]) ⟩(cn) … ⟩(c1) )

    where ``base`` is ``{e}`` filtered by the predicate (evaluated over a
    unit singleton so the result is ∅ or ``{e}``), and each level's
    collection may reference the variables bound by outer levels.
    """
    scope = set(variables)
    levels: List[nra.NraeNode] = []  # compiled collections, outermost first
    for binding in sfw.bindings:
        levels.append(_compile(binding.coll, frozenset(scope), defines))
        scope.add(binding.var)
    projection = _compile(sfw.projection, frozenset(scope), defines)
    if sfw.where is not None:
        predicate = _compile(sfw.where, frozenset(scope), defines)
        unit = b.coll(b.const(Record({})))
        base = b.chi(projection, b.sigma(predicate, unit))
    else:
        base = b.coll(projection)
    plan = base
    for binding, coll in zip(reversed(sfw.bindings), reversed(levels)):
        body = b.appenv(plan, b.concat(b.env(), b.rec_field(binding.var, b.id_())))
        plan = b.flatten_(b.chi(body, coll))
    if sfw.distinct:
        plan = b.distinct(plan)
    return plan
