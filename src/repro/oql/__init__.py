"""The OQL frontend: parser, interpreter, and translation to NRAe (paper §6)."""

from repro.oql.eval import eval_oql
from repro.oql.parser import parse_oql
from repro.oql.to_nraenv import OqlTranslationError, oql_to_nraenv

__all__ = ["OqlTranslationError", "eval_oql", "oql_to_nraenv", "parse_oql"]
