"""The HTTP observability sidecar for a running ``QueryService``.

``repro serve`` speaks its JSON-lines protocol on stdin/stdout; that
channel belongs to the one client driving it.  Operators need a second,
read-only window onto the same service — for Prometheus scrapes, health
probes, and ad-hoc ``curl`` debugging — so ``--obs-port N`` starts this
sidecar: a stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon
thread serving

- ``/healthz``    — liveness: ``ok`` and 200 while the service is up;
- ``/metrics``    — Prometheus text exposition (version 0.0.4) of the
  service's metrics registry, including cumulative ``le`` histograms;
- ``/stats``      — the full ``stats`` document as JSON: catalog, plan
  cache, telemetry ring, trace ring, QPS/latency over the rate ring;
- ``/telemetry``  — recent per-query records; query parameters ``n``
  (count), ``slow`` (slow ring), ``outcome=ok|error`` and ``handle``
  (filters);
- ``/slow``       — shorthand for ``/telemetry?slow=1``;
- ``/workers``    — fleet health: one entry per worker process with
  liveness, pending depth, heartbeat age, and resource gauges (RSS,
  columnar-cache bytes, catalog snapshot bytes, plan-cache hit rate);
- ``/trace/<query_id>`` — the kept merged trace for one query: the
  per-process span trees plus ready-to-load chrome ``events`` (404
  when sampling dropped it, the ring evicted it, or the id is unknown).

Everything is read-only GETs over data structures that are already
thread-safe, so the sidecar needs no coordination with the serving
loop.  Port 0 binds an ephemeral port (the bound port is on
:attr:`ObsHttpServer.port`), which the tests use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.export import prometheus_text

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: The read-only observability surface, shared by the sidecar and the
#: network front end (``repro serve --http`` serves these same GET
#: routes on the query port; see :mod:`repro.service.net`).
OBS_ROUTES = (
    "/healthz",
    "/metrics",
    "/stats",
    "/telemetry",
    "/slow",
    "/workers",
    "/trace/<query_id>",
)


def obs_route(service: Any, path: str, query: str = "") -> Optional[Tuple[int, str, str]]:
    """Answer one GET against the obs surface.

    Returns ``(status, content_type, body)`` for a known route, ``None``
    for an unknown one.  Raises nothing route-specific: parameter
    problems come back as a 400 tuple, unexpected failures as a 500 —
    the caller just writes the tuple out.  Both the threaded sidecar
    (:class:`ObsHttpServer`) and the asyncio front end
    (:class:`repro.service.net.ServeNetServer`) route through here, so
    operators see one identical surface on either port.
    """
    route = path.rstrip("/") or "/"
    params = parse_qs(query)
    try:
        if route == "/healthz":
            return 200, "text/plain; charset=utf-8", "ok\n"
        if route == "/metrics":
            return (
                200,
                _PROM_CONTENT_TYPE,
                prometheus_text(service.metrics, fleet=getattr(service, "fleet", None)),
            )
        if route == "/stats":
            return 200, _JSON_CONTENT_TYPE, json.dumps(service.stats()) + "\n"
        if route == "/telemetry":
            return _telemetry_route(service, params, slow=_flag(params, "slow"))
        if route == "/slow":
            return _telemetry_route(service, params, slow=True)
        if route == "/workers":
            fleet = getattr(service, "fleet", None)
            if fleet is None:
                return 200, _JSON_CONTENT_TYPE, json.dumps({"count": 0, "workers": []}) + "\n"
            return 200, _JSON_CONTENT_TYPE, json.dumps(fleet.describe()) + "\n"
        if route.startswith("/trace/"):
            wanted = route[len("/trace/") :]
            fragment = service.traces.get(wanted) if wanted else None
            if fragment is None:
                return (
                    404,
                    _JSON_CONTENT_TYPE,
                    json.dumps(
                        {
                            "error": "no kept trace for query id %r "
                            "(sampled out, evicted, or never seen)" % wanted
                        }
                    )
                    + "\n",
                )
            return 200, _JSON_CONTENT_TYPE, json.dumps(fragment) + "\n"
        return None
    except ValueError as exc:
        return 400, _JSON_CONTENT_TYPE, json.dumps({"error": str(exc)}) + "\n"
    except Exception as exc:  # noqa: BLE001 - a probe must not kill the server
        return (
            500,
            _JSON_CONTENT_TYPE,
            json.dumps({"error": "%s: %s" % (type(exc).__name__, exc)}) + "\n",
        )


def _telemetry_route(
    service: Any, params: Dict[str, Any], slow: bool
) -> Tuple[int, str, str]:
    n = params.get("n", [None])[0]
    records = service.telemetry.select(
        n=int(n) if n is not None else None,
        slow=slow,
        outcome=params.get("outcome", [None])[0],
        handle=params.get("handle", [None])[0],
        worker=params.get("worker", [None])[0],
    )
    payload = {
        "telemetry": service.telemetry.describe(),
        "queries": [record.describe() for record in records],
    }
    return 200, _JSON_CONTENT_TYPE, json.dumps(payload) + "\n"


def _make_handler(service: Any):
    """Build a request-handler class closed over ``service``."""

    class ObsHandler(BaseHTTPRequestHandler):
        # The sidecar must not spray access logs onto the service's stderr.
        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            parsed = urlparse(self.path)
            answer = obs_route(service, parsed.path, parsed.query)
            if answer is None:
                answer = (
                    404,
                    _JSON_CONTENT_TYPE,
                    json.dumps({"error": "unknown path %r" % parsed.path}) + "\n",
                )
            self._send(*answer)

        def _send(self, status: int, content_type: str, body: str) -> None:
            data = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

    return ObsHandler


def _flag(params: Dict[str, Any], name: str) -> bool:
    value = params.get(name, ["0"])[0]
    return value not in ("", "0", "false", "no")


class ObsHttpServer:
    """The sidecar: a threading HTTP server on a daemon thread.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`port` after construction.  :meth:`close` shuts the listener
    down and joins the serving thread.
    """

    def __init__(self, service: Any, port: int = 0, host: str = "127.0.0.1"):
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(service))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )

    def start(self) -> "ObsHttpServer":
        self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def url(self, path: str = "/") -> str:
        return "http://%s:%d%s" % (self.host, self.port, path)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObsHttpServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["OBS_ROUTES", "ObsHttpServer", "obs_route"]
