"""The service error taxonomy.

Every failure a request can hit maps to exactly one of these classes,
and the service reports them as *structured* errors — a ``{"kind",
"message"}`` payload — rather than letting exceptions escape the serving
loop.  The taxonomy:

- ``compile_error`` — the query text failed to parse, translate, or
  optimize; the request never produced a plan.
- ``runtime_error`` — the compiled plan raised while executing (missing
  table, type error in the data, division by zero, ...).
- ``timeout`` — the query exceeded its execution deadline.  The worker
  thread is abandoned (Python cannot interrupt it) but the slot is
  reclaimed once it finishes; the caller gets the error immediately.
- ``overloaded`` — the bounded admission queue was full; the request was
  rejected before consuming any execution resources.
- ``catalog_error`` — dataset registration/lookup failed (unknown table,
  malformed JSON payload, schema mismatch).
- ``bad_request`` — the request itself was malformed (unknown op,
  unknown handle, missing fields, unbound parameter).
"""

from __future__ import annotations

from typing import Any, Dict


class ServiceError(Exception):
    """Base class: a structured, reportable service failure."""

    kind = "error"

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "message": str(self)}


class CompileError(ServiceError):
    kind = "compile_error"


class RuntimeQueryError(ServiceError):
    kind = "runtime_error"


class QueryTimeout(ServiceError):
    kind = "timeout"


class Overloaded(ServiceError):
    kind = "overloaded"


class CatalogError(ServiceError):
    kind = "catalog_error"


class BadRequest(ServiceError):
    kind = "bad_request"


#: kind string → error class, for rehydrating wire payloads.
ERROR_KINDS = {
    cls.kind: cls
    for cls in (
        CompileError,
        RuntimeQueryError,
        QueryTimeout,
        Overloaded,
        CatalogError,
        BadRequest,
    )
}


def error_from_payload(payload: Dict[str, Any]) -> ServiceError:
    """Rebuild a :class:`ServiceError` from a ``{"kind", "message"}`` dict.

    The leader process uses this to turn a worker's wire error back into
    the taxonomy so telemetry and the query log record the same kind the
    worker reported.  Unknown kinds degrade to the base class (kind
    ``error``) rather than raising.
    """
    kind = payload.get("kind") if isinstance(payload, dict) else None
    message = payload.get("message", "") if isinstance(payload, dict) else str(payload)
    cls = ERROR_KINDS.get(kind, ServiceError)
    error = cls(message)
    if cls is ServiceError and isinstance(kind, str):
        error.kind = kind  # preserve e.g. internal_error verbatim
    return error
