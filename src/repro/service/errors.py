"""The service error taxonomy.

Every failure a request can hit maps to exactly one of these classes,
and the service reports them as *structured* errors — a ``{"kind",
"message"}`` payload — rather than letting exceptions escape the serving
loop.  The taxonomy:

- ``compile_error`` — the query text failed to parse, translate, or
  optimize; the request never produced a plan.
- ``runtime_error`` — the compiled plan raised while executing (missing
  table, type error in the data, division by zero, ...).
- ``timeout`` — the query exceeded its execution deadline.  The worker
  thread is abandoned (Python cannot interrupt it) but the slot is
  reclaimed once it finishes; the caller gets the error immediately.
- ``overloaded`` — the bounded admission queue was full; the request was
  rejected before consuming any execution resources.
- ``catalog_error`` — dataset registration/lookup failed (unknown table,
  malformed JSON payload, schema mismatch).
- ``bad_request`` — the request itself was malformed (unknown op,
  unknown handle, missing fields, unbound parameter).
"""

from __future__ import annotations

from typing import Any, Dict


class ServiceError(Exception):
    """Base class: a structured, reportable service failure."""

    kind = "error"

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "message": str(self)}


class CompileError(ServiceError):
    kind = "compile_error"


class RuntimeQueryError(ServiceError):
    kind = "runtime_error"


class QueryTimeout(ServiceError):
    kind = "timeout"


class Overloaded(ServiceError):
    kind = "overloaded"


class CatalogError(ServiceError):
    kind = "catalog_error"


class BadRequest(ServiceError):
    kind = "bad_request"
