"""Structural plan-cache keys.

The plan cache must hit whenever two query texts *parse to the same
AST*: formatting, keyword case, comments, and redundant parentheses all
vanish at the parse boundary, so ``SELECT a FROM t`` and ``select  a
from t -- hi`` share one compiled plan.  The key is a SHA-256 over a
canonical serialisation of the frontend AST, prefixed with the source
language (the same tree means different things to different frontends).

Soundness is the property that matters (and is property-tested): equal
keys ⇒ equal ASTs ⇒ the compiled plan computes the same function.  The
serialisation therefore writes, for every node, its concrete type name
plus every child in a fixed field order, with type-tagged atoms (so
``1`` ≠ ``1.0`` ≠ ``"1"``) and explicit begin/end framing (so sibling
lists of different shape cannot collide).

The walker understands every AST family in the repo: the SQL/OQL node
kit (``_fields``), NRAλ nodes and operator payloads (``__slots__``),
and data-model values appearing as literals (bags, records, dates).
"""

from __future__ import annotations

import hashlib
from typing import Any, List

from repro.data.foreign import DateValue
from repro.data.model import Bag, Record


def _walk(obj: Any, out: List[str]) -> None:
    if obj is None:
        out.append("N;")
    elif obj is True or obj is False:
        out.append("B%d;" % obj)
    elif isinstance(obj, int):
        out.append("I%d;" % obj)
    elif isinstance(obj, float):
        out.append("F%r;" % obj)
    elif isinstance(obj, str):
        out.append("S%d:%s;" % (len(obj), obj))
    elif isinstance(obj, DateValue):
        out.append("D%s;" % obj.isoformat())
    elif isinstance(obj, Bag):
        out.append("b(")
        for item in obj.items:
            _walk(item, out)
        out.append(")")
    elif isinstance(obj, Record):
        out.append("r(")
        for field, value in obj.fields:
            _walk(field, out)
            _walk(value, out)
        out.append(")")
    elif isinstance(obj, (list, tuple)):
        out.append("l(")
        for item in obj:
            _walk(item, out)
        out.append(")")
    elif isinstance(obj, dict):
        out.append("d(")
        for key in sorted(obj):
            _walk(key, out)
            _walk(obj[key], out)
        out.append(")")
    elif hasattr(obj, "_fields"):  # the SQL/OQL node kit
        out.append("n%s(" % type(obj).__name__)
        for field in obj._fields:
            _walk(getattr(obj, field), out)
        out.append(")")
    elif hasattr(obj, "_params"):  # operator payloads (UnaryOp/BinaryOp)
        out.append("p%s(" % type(obj).__name__)
        _walk(obj._params(), out)
        out.append(")")
    elif hasattr(obj, "__slots__"):  # NRAλ nodes, Lambda
        out.append("o%s(" % type(obj).__name__)
        for slot in _all_slots(type(obj)):
            _walk(getattr(obj, slot), out)
        out.append(")")
    else:
        # Last resort: the type plus its repr.  Deterministic for the
        # payload types the frontends produce today.
        out.append("x%s:%r;" % (type(obj).__name__, obj))


def _all_slots(cls: type) -> List[str]:
    slots: List[str] = []
    for base in reversed(cls.__mro__):
        declared = base.__dict__.get("__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        slots.extend(s for s in declared if s not in slots)
    return slots


def ast_fingerprint(node: Any) -> str:
    """A canonical serialisation of a frontend AST (human-inspectable)."""
    out: List[str] = []
    _walk(node, out)
    return "".join(out)


def plan_key(language: str, node: Any) -> str:
    """The cache key: SHA-256 of language + canonical AST serialisation."""
    digest = hashlib.sha256()
    digest.update(language.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(ast_fingerprint(node).encode("utf-8"))
    return digest.hexdigest()
