"""``QueryService``: the long-lived serving layer over the compiler.

Owns the three persistent pieces a one-shot ``compile_sql`` call cannot
amortize — a :class:`~repro.service.catalog.Catalog` of registered
datasets, a :class:`~repro.service.cache.PlanCache` of compiled plans
keyed on structural AST hashes, and a
:class:`~repro.service.executor.SessionExecutor` that runs prepared
queries with deadlines and admission control.

Programmatic use::

    from repro.service import QueryService

    svc = QueryService()
    svc.register_table("people", [{"name": "ann", "age": 40}])
    q = svc.prepare("sql", "select name from people where age > $min")
    outcome = svc.execute(q.handle, params={"min": 30})
    assert outcome.ok

Wire use: :meth:`handle_request` maps one JSON-decodable request dict to
one response dict, and :meth:`serve` runs the stdin/stdout JSON-lines
loop behind ``repro serve`` (see DESIGN.md for the protocol).  Neither
ever raises on bad input — every failure becomes a structured error
response so one poisoned request cannot kill the loop.
"""

from __future__ import annotations

import itertools
import json
import threading
import time as _time
from typing import Any, Dict, IO, Iterable, List, Optional

from contextlib import contextmanager

from repro.data import json_io
from repro.data.model import DataError
from repro.obs.context import QueryContext, current_query, query_context
from repro.obs.export import merged_chrome_events
from repro.obs.log import QueryLog
from repro.obs.metrics import MetricsRegistry, RateRing
from repro.obs.trace import SamplingPolicy, TraceRing, Tracer, get_tracer, spans_to_wire
from repro.service.cache import PlanCache
from repro.service.catalog import Catalog
from repro.service.errors import BadRequest, ServiceError
from repro.service.executor import Outcome, SessionExecutor
from repro.service.fleet import Fleet
from repro.service.plan_key import plan_key
from repro.service.prepared import PreparedQuery, compile_plan, parse_query
from repro.service.telemetry import QueryTelemetry, TelemetryLog


class QueryService:
    """The serving facade: catalog + plan cache + session executor."""

    def __init__(
        self,
        cache_capacity: int = 128,
        workers: int = 4,
        queue_depth: int = 16,
        default_timeout: Optional[float] = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_capacity: int = 256,
        slow_query_seconds: Optional[float] = None,
        trace_sample_rate: Optional[float] = 0.05,
        trace_capacity: int = 64,
        query_log: Optional[Any] = None,
        handle_prefix: str = "q",
    ) -> None:
        """``trace_sample_rate`` is the tail-sampling head rate (``None``
        disables per-query tracing entirely; ``0.0`` still keeps slow and
        errored queries).  ``query_log`` is a
        :class:`~repro.obs.log.QueryLog` or a path for one (``None``
        disables the durable log)."""
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.catalog = Catalog()
        self.cache = PlanCache(cache_capacity, metrics=self.metrics)
        self.executor = SessionExecutor(
            workers=workers,
            queue_depth=queue_depth,
            default_timeout=default_timeout,
            metrics=self.metrics,
        )
        self.telemetry = TelemetryLog(
            capacity=telemetry_capacity,
            slow_query_seconds=slow_query_seconds,
            metrics=self.metrics,
        )
        self.sampling = (
            None if trace_sample_rate is None else SamplingPolicy(rate=trace_sample_rate)
        )
        self.traces = TraceRing(trace_capacity)
        # Per-worker registries/resources when this service fronts a
        # worker pool; empty (but present, so /metrics and /workers can
        # always consult it) when serving single-process.
        self.fleet = Fleet(metrics=self.metrics)
        self.query_log = QueryLog(query_log) if isinstance(query_log, str) else query_log
        self.rates = RateRing(window=60)
        self._started_at = _time.time()
        self._prepared: Dict[str, PreparedQuery] = {}
        self._handles = itertools.count(1)
        # Worker processes use a distinct prefix ("w3t") so their
        # transient one-shot handles can never collide with the handles
        # the leader broadcasts (see repro.service.worker).
        self._handle_prefix = handle_prefix
        self._lock = threading.Lock()
        self._drain_guard = threading.Lock()
        self._drained = False
        self._compile_seconds = self.metrics.histogram("service.compile_ms")

    # -- catalog ----------------------------------------------------------

    def register_table(self, name: str, rows: Any, schema: Optional[Iterable[str]] = None):
        return self.catalog.register_table(name, rows, schema)

    def load_json(self, path: str):
        return self.catalog.load_json(path)

    # -- prepare / execute ------------------------------------------------

    def prepare(
        self, language: str, text: str, handle: Optional[str] = None
    ) -> PreparedQuery:
        """Compile ``text`` once (or reuse a cached plan) and hand out a handle.

        Raises :class:`~repro.service.errors.CompileError` on bad queries;
        the wire layer turns that into a structured response.  ``handle``
        forces a specific handle name instead of drawing from the
        counter — the warm-up-replay hook worker processes use to mirror
        the leader's handle space exactly (a forced handle replaces any
        existing entry under that name).
        """
        tracer = get_tracer()
        with tracer.span("service.prepare", category="service", language=language):
            ast = parse_query(language, text)
            key = plan_key(language, ast)
            plan = self.cache.get(key)
            cached = plan is not None
            if plan is None:
                plan = compile_plan(language, ast, key=key)
                self._compile_seconds.record(plan.compile_seconds * 1e3)
                self.cache.put(key, plan)
            if handle is None:
                handle = "%s%d" % (self._handle_prefix, next(self._handles))
            prepared = PreparedQuery(handle, language, text, plan, cached)
            with self._lock:
                self._prepared[handle] = prepared
            return prepared

    def prepared(self, handle: str) -> PreparedQuery:
        try:
            return self._prepared[handle]
        except KeyError:
            raise BadRequest("unknown prepared-query handle %r" % (handle,))

    def prepared_queries(self) -> List[PreparedQuery]:
        """All live prepared queries, in creation order (dict order)."""
        with self._lock:
            return list(self._prepared.values())

    def close_prepared(self, handle: str) -> None:
        with self._lock:
            if self._prepared.pop(handle, None) is None:
                raise BadRequest("unknown prepared-query handle %r" % (handle,))

    @contextmanager
    def _query_scope(self):
        """Ensure a :class:`~repro.obs.context.QueryContext` is active.

        This is the ingress point of the correlation layer: a request
        arriving without a context (the wire loop, or a direct API call)
        gets a fresh ``query_id``, its wall-clock start time, the head
        sampling coin, and — when tail sampling is enabled — a private
        tracer that every span downstream (service, pipeline, executor,
        join engine) lands in via the context-aware ``get_tracer``.
        Nested scopes reuse the enclosing request's context, so one wire
        request is one ``query_id`` end to end.
        """
        existing = current_query()
        if existing is not None:
            yield existing
            return
        with query_context(self.ingress_context()) as context:
            yield context

    def ingress_context(self) -> QueryContext:
        """A fresh request context configured like :meth:`_query_scope`.

        The network front end calls this at its own ingress point so the
        ``query_id`` (and the tail-sampling coin) exists *before*
        admission control — a shed response carries a real id even
        though it never reaches the executor.
        """
        tracer = Tracer() if self.sampling is not None else None
        return QueryContext(
            tracer=tracer,
            head_sampled=self.sampling.head() if self.sampling is not None else False,
        )

    def execute(
        self,
        handle: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> Outcome:
        """Run a prepared query on the executor; never raises.

        ``analyze=True`` runs the slower EXPLAIN ANALYZE path (the
        optimized NRAe plan through the join engine with per-node
        statistics) and attaches the summary to ``outcome.analysis``.
        Every execution — either path — lands one
        :class:`~repro.service.telemetry.QueryTelemetry` record in
        :attr:`telemetry`, one audit event in the query log (when
        configured), and its trace in :attr:`traces` when sampling
        keeps it — all under the request's ``query_id``.
        """
        with self._query_scope() as context:
            return self._execute(context, handle, params, timeout, analyze)

    def _execute(
        self,
        context: QueryContext,
        handle: str,
        params: Optional[Dict[str, Any]],
        timeout: Optional[float],
        analyze: bool,
    ) -> Outcome:
        try:
            prepared = self.prepared(handle)
        except ServiceError as exc:
            if self.query_log is not None:
                self.query_log.emit(
                    {
                        "event": "error",
                        "query_id": context.query_id,
                        "handle": handle,
                        "error_kind": exc.kind,
                        "message": str(exc),
                    }
                )
            return Outcome(error=exc)
        constants = self.catalog.constants()
        plan = prepared.plan
        tracer = get_tracer()
        with tracer.span(
            "service.execute",
            category="service",
            handle=handle,
            query_id=context.query_id,
            analyze=analyze,
        ):
            if analyze:
                outcome = self.executor.submit(
                    lambda: plan.execute_analyzed(constants, params), timeout=timeout
                )
                if outcome.ok:
                    outcome.value, outcome.analysis = outcome.value
            else:
                outcome = self.executor.submit(
                    lambda: plan.execute(constants, params), timeout=timeout
                )
        if outcome.ok:
            prepared.executions += 1
        telemetry = self._record_telemetry(context, prepared, outcome, analyzed=analyze)
        self._finish_query(context, telemetry, outcome)
        return outcome

    def query(
        self,
        language: str,
        text: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> Outcome:
        """One-shot prepare + execute (still plan-cached); never raises."""
        with self._query_scope():
            try:
                prepared = self.prepare(language, text)
            except ServiceError as exc:
                return Outcome(error=exc)
            try:
                return self.execute(
                    prepared.handle, params=params, timeout=timeout, analyze=analyze
                )
            finally:
                # One-shot handles must not accumulate for the service's lifetime.
                self._prepared.pop(prepared.handle, None)

    def _record_telemetry(
        self,
        context: QueryContext,
        prepared: PreparedQuery,
        outcome: Outcome,
        analyzed: bool,
    ) -> QueryTelemetry:
        rows = None
        if outcome.ok:
            try:
                rows = len(outcome.value)
            except TypeError:
                rows = None
        analysis = outcome.analysis if isinstance(outcome.analysis, dict) else {}
        telemetry = QueryTelemetry(
            handle=prepared.handle,
            language=prepared.language,
            cache_hit=prepared.cached,
            compile_seconds=0.0 if prepared.cached else prepared.plan.compile_seconds,
            execute_seconds=outcome.seconds,
            ok=outcome.ok,
            error_kind=None if outcome.ok else outcome.error.kind,
            rows=rows,
            peak_rows=analysis.get("peak_rows"),
            hot_operators=analysis.get("hot"),
            join_engine=analysis.get("join_engine"),
            analyzed=analyzed,
            query_id=context.query_id,
            started_at=context.started_at,
        )
        self.telemetry.record(telemetry)
        return telemetry

    def record_remote(
        self,
        context: QueryContext,
        response: Dict[str, Any],
        handle: Optional[str] = None,
        language: Optional[str] = None,
        cache_hit: bool = False,
        worker: Optional[str] = None,
        obs: Optional[Dict[str, Any]] = None,
    ) -> QueryTelemetry:
        """Record an execution that ran in a *worker process*.

        The leader never sees the worker's ``Outcome`` object — only the
        wire response — so this rebuilds the telemetry record (and the
        rates/query-log/trace bookkeeping of :meth:`_finish_query`) from
        the response dict, labelled with the worker id.  Per-worker
        counters (``service.worker.<id>.ok`` / ``.error``) and a
        latency histogram land in the metrics registry so ``/metrics``
        exposes each worker's share of the load.

        ``obs`` is the worker's piggybacked observability payload (the
        ``_obs`` reply field): its ``spans`` join the leader's own spans
        in the merged trace :meth:`_finish_query` builds, its
        ``metrics`` delta folds into the :attr:`fleet` under the
        worker's label, and its ``resources`` snapshot (when present)
        refreshes the worker's gauges.
        """
        from repro.service.errors import error_from_payload

        obs = obs if isinstance(obs, dict) else {}
        ok = bool(response.get("ok"))
        seconds = float(response.get("seconds") or 0.0)
        error_payload = response.get("error") or {}
        result = response.get("result")
        analysis = response.get("analysis")
        analysis = analysis if isinstance(analysis, dict) else {}
        telemetry = QueryTelemetry(
            handle=handle,
            language=language,
            cache_hit=cache_hit,
            compile_seconds=0.0,
            execute_seconds=seconds,
            ok=ok,
            error_kind=None if ok else error_payload.get("kind", "internal_error"),
            rows=len(result) if isinstance(result, list) else None,
            peak_rows=analysis.get("peak_rows"),
            hot_operators=analysis.get("hot"),
            join_engine=analysis.get("join_engine"),
            analyzed=response.get("analysis") is not None,
            query_id=context.query_id,
            started_at=context.started_at,
            worker=worker,
        )
        self.telemetry.record(telemetry)
        outcome = Outcome(seconds=seconds)
        if not ok:
            outcome.error = error_from_payload(error_payload)
        remote = None
        if worker is not None and obs.get("spans"):
            remote = [{"process": worker, "spans": obs["spans"]}]
        self._finish_query(context, telemetry, outcome, remote=remote)
        if worker is not None:
            self.fleet.apply_delta(worker, obs.get("metrics"))
            if obs.get("resources") is not None:
                self.fleet.set_resources(worker, obs.get("resources"))
        if worker is not None:
            self.metrics.counter(
                "service.worker.%s.%s" % (worker, "ok" if ok else "error")
            ).inc()
            self.metrics.histogram("service.worker.%s.latency_ms" % worker).record(
                seconds * 1e3
            )
        return telemetry

    def _finish_query(
        self,
        context: QueryContext,
        telemetry: QueryTelemetry,
        outcome: Outcome,
        remote: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Completion-time observability: rates, tail sampling, query log.

        Runs once per execute, after the telemetry record exists (so the
        slow-query mark is already decided).  The trace keep/drop
        decision happens here — this is the "tail" of tail-based
        sampling — over the *merged* trace: the leader's own spans plus
        any ``remote`` process fragments (``[{"process": "w0", "spans":
        [...]}, ...]``) a worker shipped back.  A kept fragment carries
        per-process span trees *and* ready-to-load chrome events with
        one ``pid`` lane per process; it is attached to the telemetry
        record and retained in the bounded :attr:`traces` ring, keyed by
        ``query_id`` (what ``GET /trace/<query_id>`` serves).
        """
        self.rates.observe(telemetry.execute_seconds)
        if self.sampling is not None and context.tracer is not None:
            if self.sampling.keep(context.head_sampled, telemetry.slow, telemetry.ok):
                processes = [
                    {"process": "leader", "spans": spans_to_wire(context.tracer)}
                ]
                if remote:
                    processes.extend(remote)
                fragment = {
                    "query_id": context.query_id,
                    "processes": processes,
                    "events": merged_chrome_events(processes),
                }
                self.traces.add(context.query_id, fragment)
                telemetry.trace = fragment
                self.metrics.counter("obs.trace.kept").inc()
            else:
                self.traces.drop()
                self.metrics.counter("obs.trace.dropped").inc()
        if self.query_log is not None:
            audit: Dict[str, Any] = {
                "event": "query",
                "query_id": context.query_id,
                "handle": telemetry.handle,
                "language": telemetry.language,
                "cache_hit": telemetry.cache_hit,
                "compile_seconds": telemetry.compile_seconds,
                "execute_seconds": telemetry.execute_seconds,
                "rows": telemetry.rows,
                "outcome": "ok" if telemetry.ok else "error",
            }
            if telemetry.worker is not None:
                audit["worker"] = telemetry.worker
            if telemetry.error_kind is not None:
                audit["error_kind"] = telemetry.error_kind
            if telemetry.slow:
                audit["slow"] = True
            if telemetry.join_engine is not None:
                audit["join_engine"] = telemetry.join_engine
            if telemetry.trace is not None:
                audit["trace_kept"] = True
            self.query_log.emit(audit)
            self.metrics.counter("obs.log.events").inc()
            if not telemetry.ok:
                self.query_log.emit(
                    {
                        "event": "error",
                        "query_id": context.query_id,
                        "handle": telemetry.handle,
                        "error_kind": telemetry.error_kind,
                        "message": str(outcome.error),
                    }
                )
                self.metrics.counter("obs.log.events").inc()
            elif telemetry.slow:
                self.query_log.emit(
                    {
                        "event": "slow_query",
                        "query_id": context.query_id,
                        "handle": telemetry.handle,
                        "execute_seconds": telemetry.execute_seconds,
                        "threshold_seconds": self.telemetry.slow_query_seconds,
                    }
                )
                self.metrics.counter("obs.log.events").inc()

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "tables": self.catalog.describe(),
            "prepared": len(self._prepared),
            "plan_cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
            "telemetry": self.telemetry.describe(),
            "uptime_seconds": _time.time() - self._started_at,
            "traces": self.traces.describe(),
            "rates": {
                "last_10s": self.rates.snapshot(window=10),
                "last_60s": self.rates.snapshot(window=60),
            },
        }
        if self.sampling is not None:
            stats["sampling"] = self.sampling.describe()
        if self.query_log is not None:
            stats["query_log"] = self.query_log.describe()
        return stats

    def drain(
        self, reason: str = "shutdown", wait: bool = True, obs_server: Any = None
    ) -> None:
        """The one graceful-shutdown path every serve mode goes through.

        Sequence: stop the executor (``wait=True`` lets in-flight queries
        finish; abandoned/timed-out workers are waited out too), emit a
        final ``shutdown`` audit event, close the query log, and stop the
        obs sidecar when one is passed.  Idempotent — the stdin loop, the
        network front end, and the CLI's signal handlers can all call it;
        only the first call drains (later calls still close ``obs_server``
        so no caller leaks the sidecar thread).
        """
        with self._drain_guard:
            already = self._drained
            self._drained = True
        if not already:
            self.executor.shutdown(wait=wait)
            if self.query_log is not None:
                try:
                    self.query_log.emit(
                        {
                            "event": "shutdown",
                            "reason": reason,
                            "served": self.telemetry.describe()["recorded"],
                            "shed": self.metrics.counter("service.shed").value,
                            "uptime_seconds": _time.time() - self._started_at,
                        }
                    )
                except ValueError:
                    pass  # the log was closed by an earlier caller
                self.query_log.close()
        if obs_server is not None:
            obs_server.close()

    def close(self, wait: bool = True) -> None:
        self.drain(reason="close", wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the JSON-lines wire protocol ------------------------------------

    def handle_request(self, request: Any) -> Dict[str, Any]:
        """Map one decoded request to one response dict (never raises).

        Every response carries the request's ``query_id`` — the same id
        the telemetry record, the query-log audit event, and any kept
        trace fragment use — so a wire client can correlate its call
        with everything the service recorded about it.
        """
        with self._query_scope() as context:
            try:
                response = self._dispatch(request)
            except ServiceError as exc:
                response = {"ok": False, "error": exc.to_payload()}
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                response = {
                    "ok": False,
                    "error": {
                        "kind": "internal_error",
                        "message": "%s: %s" % (type(exc).__name__, exc),
                    },
                }
            response["query_id"] = context.query_id
            return response

    def _dispatch(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            raise BadRequest("request must be a JSON object")
        op = request.get("op")
        if op == "register":
            info = self.register_table(
                self._field(request, "table"),
                request.get("rows", []),
                request.get("schema"),
            )
            return {"ok": True, "table": info.describe()}
        if op == "load":
            tables = self.load_json(self._field(request, "path"))
            return {"ok": True, "tables": [t.describe() for t in tables]}
        if op == "prepare":
            prepared = self.prepare(
                request.get("language", "sql"), self._field(request, "query")
            )
            return {"ok": True, **prepared.describe()}
        if op == "execute":
            outcome = self.execute(
                self._field(request, "handle"),
                params=request.get("params"),
                timeout=request.get("timeout"),
                analyze=bool(request.get("analyze", False)),
            )
            return self._outcome_response(outcome)
        if op == "query":
            outcome = self.query(
                request.get("language", "sql"),
                self._field(request, "query"),
                params=request.get("params"),
                timeout=request.get("timeout"),
                analyze=bool(request.get("analyze", False)),
            )
            return self._outcome_response(outcome)
        if op == "close":
            self.close_prepared(self._field(request, "handle"))
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            from repro.obs.export import prometheus_text

            return {
                "ok": True,
                "prometheus": prometheus_text(self.metrics, fleet=self.fleet),
                "metrics": self.metrics.snapshot(),
            }
        if op == "telemetry":
            try:
                records = self.telemetry.select(
                    n=request.get("n"),
                    slow=bool(request.get("slow")),
                    outcome=request.get("outcome"),
                    handle=request.get("filter_handle"),
                    worker=request.get("filter_worker"),
                )
            except ValueError as exc:
                raise BadRequest(str(exc))
            return {
                "ok": True,
                "telemetry": self.telemetry.describe(),
                "queries": [t.describe() for t in records],
            }
        if op == "traces":
            return {"ok": True, **self.traces.describe(), "traces": self.traces.recent(request.get("n"))}
        if op == "trace":
            wanted = self._field(request, "query_id")
            fragment = self.traces.get(wanted)
            if fragment is None:
                raise BadRequest(
                    "no kept trace for query id %r (sampled out, evicted, or never seen)"
                    % (wanted,)
                )
            return {"ok": True, "trace": fragment}
        if op == "workers":
            return {"ok": True, **self.fleet.describe()}
        raise BadRequest("unknown op %r" % (op,))

    @staticmethod
    def _field(request: Dict[str, Any], name: str) -> Any:
        try:
            return request[name]
        except KeyError:
            raise BadRequest("request is missing field %r" % (name,))

    @staticmethod
    def _outcome_response(outcome: Outcome) -> Dict[str, Any]:
        if not outcome.ok:
            return {
                "ok": False,
                "error": outcome.error.to_payload(),
                "seconds": outcome.seconds,
            }
        try:
            result = json_io.to_jsonable(outcome.value)
        except DataError as exc:
            return {
                "ok": False,
                "error": {"kind": "internal_error", "message": str(exc)},
                "seconds": outcome.seconds,
            }
        response = {"ok": True, "result": result, "seconds": outcome.seconds}
        if outcome.analysis is not None:
            response["analysis"] = outcome.analysis
        return response

    def serve(self, input_stream: IO[str], output_stream: IO[str]) -> int:
        """The ``repro serve`` loop: one JSON request per line, one JSON
        response per line.  EOF or ``{"op": "shutdown"}`` ends the loop;
        malformed lines produce structured errors and the loop continues.

        Ends through :meth:`drain` — the same graceful-shutdown path the
        network front end uses — so the executor is drained and the query
        log gets its final ``shutdown`` audit event no matter how the
        loop terminated (EOF, wire shutdown op, or a signal the CLI
        translated; see ``repro serve``'s SIGTERM handling).
        """
        served = 0
        reason = "eof"
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                response: Dict[str, Any] = {
                    "ok": False,
                    "error": {"kind": "bad_request", "message": "malformed JSON: %s" % exc},
                }
            else:
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    print(json.dumps({"ok": True, "served": served}), file=output_stream)
                    output_stream.flush()
                    reason = "shutdown_op"
                    break
                response = self.handle_request(request)
                served += 1
            print(json.dumps(response), file=output_stream)
            output_stream.flush()
        self.drain(reason=reason, wait=False)
        return 0


__all__ = ["QueryService"]
