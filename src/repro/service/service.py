"""``QueryService``: the long-lived serving layer over the compiler.

Owns the three persistent pieces a one-shot ``compile_sql`` call cannot
amortize — a :class:`~repro.service.catalog.Catalog` of registered
datasets, a :class:`~repro.service.cache.PlanCache` of compiled plans
keyed on structural AST hashes, and a
:class:`~repro.service.executor.SessionExecutor` that runs prepared
queries with deadlines and admission control.

Programmatic use::

    from repro.service import QueryService

    svc = QueryService()
    svc.register_table("people", [{"name": "ann", "age": 40}])
    q = svc.prepare("sql", "select name from people where age > $min")
    outcome = svc.execute(q.handle, params={"min": 30})
    assert outcome.ok

Wire use: :meth:`handle_request` maps one JSON-decodable request dict to
one response dict, and :meth:`serve` runs the stdin/stdout JSON-lines
loop behind ``repro serve`` (see DESIGN.md for the protocol).  Neither
ever raises on bad input — every failure becomes a structured error
response so one poisoned request cannot kill the loop.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Dict, IO, Iterable, List, Optional

from repro.data import json_io
from repro.data.model import DataError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.service.cache import PlanCache
from repro.service.catalog import Catalog
from repro.service.errors import BadRequest, ServiceError
from repro.service.executor import Outcome, SessionExecutor
from repro.service.plan_key import plan_key
from repro.service.prepared import PreparedQuery, compile_plan, parse_query
from repro.service.telemetry import QueryTelemetry, TelemetryLog


class QueryService:
    """The serving facade: catalog + plan cache + session executor."""

    def __init__(
        self,
        cache_capacity: int = 128,
        workers: int = 4,
        queue_depth: int = 16,
        default_timeout: Optional[float] = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_capacity: int = 256,
        slow_query_seconds: Optional[float] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.catalog = Catalog()
        self.cache = PlanCache(cache_capacity, metrics=self.metrics)
        self.executor = SessionExecutor(
            workers=workers,
            queue_depth=queue_depth,
            default_timeout=default_timeout,
            metrics=self.metrics,
        )
        self.telemetry = TelemetryLog(
            capacity=telemetry_capacity,
            slow_query_seconds=slow_query_seconds,
            metrics=self.metrics,
        )
        self._prepared: Dict[str, PreparedQuery] = {}
        self._handles = itertools.count(1)
        self._lock = threading.Lock()
        self._compile_seconds = self.metrics.histogram("service.compile_ms")

    # -- catalog ----------------------------------------------------------

    def register_table(self, name: str, rows: Any, schema: Optional[Iterable[str]] = None):
        return self.catalog.register_table(name, rows, schema)

    def load_json(self, path: str):
        return self.catalog.load_json(path)

    # -- prepare / execute ------------------------------------------------

    def prepare(self, language: str, text: str) -> PreparedQuery:
        """Compile ``text`` once (or reuse a cached plan) and hand out a handle.

        Raises :class:`~repro.service.errors.CompileError` on bad queries;
        the wire layer turns that into a structured response.
        """
        tracer = get_tracer()
        with tracer.span("service.prepare", category="service", language=language):
            ast = parse_query(language, text)
            key = plan_key(language, ast)
            plan = self.cache.get(key)
            cached = plan is not None
            if plan is None:
                plan = compile_plan(language, ast, key=key)
                self._compile_seconds.record(plan.compile_seconds * 1e3)
                self.cache.put(key, plan)
            handle = "q%d" % next(self._handles)
            prepared = PreparedQuery(handle, language, text, plan, cached)
            with self._lock:
                self._prepared[handle] = prepared
            return prepared

    def prepared(self, handle: str) -> PreparedQuery:
        try:
            return self._prepared[handle]
        except KeyError:
            raise BadRequest("unknown prepared-query handle %r" % (handle,))

    def close_prepared(self, handle: str) -> None:
        with self._lock:
            if self._prepared.pop(handle, None) is None:
                raise BadRequest("unknown prepared-query handle %r" % (handle,))

    def execute(
        self,
        handle: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> Outcome:
        """Run a prepared query on the executor; never raises.

        ``analyze=True`` runs the slower EXPLAIN ANALYZE path (the
        optimized NRAe plan through the join engine with per-node
        statistics) and attaches the summary to ``outcome.analysis``.
        Every execution — either path — lands one
        :class:`~repro.service.telemetry.QueryTelemetry` record in
        :attr:`telemetry`.
        """
        try:
            prepared = self.prepared(handle)
        except ServiceError as exc:
            return Outcome(error=exc)
        constants = self.catalog.constants()
        plan = prepared.plan
        if analyze:
            outcome = self.executor.submit(
                lambda: plan.execute_analyzed(constants, params), timeout=timeout
            )
            if outcome.ok:
                outcome.value, outcome.analysis = outcome.value
        else:
            outcome = self.executor.submit(
                lambda: plan.execute(constants, params), timeout=timeout
            )
        if outcome.ok:
            prepared.executions += 1
        self._record_telemetry(prepared, outcome, analyzed=analyze)
        return outcome

    def query(
        self,
        language: str,
        text: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        analyze: bool = False,
    ) -> Outcome:
        """One-shot prepare + execute (still plan-cached); never raises."""
        try:
            prepared = self.prepare(language, text)
        except ServiceError as exc:
            return Outcome(error=exc)
        try:
            return self.execute(
                prepared.handle, params=params, timeout=timeout, analyze=analyze
            )
        finally:
            # One-shot handles must not accumulate for the service's lifetime.
            self._prepared.pop(prepared.handle, None)

    def _record_telemetry(
        self, prepared: PreparedQuery, outcome: Outcome, analyzed: bool
    ) -> None:
        rows = None
        if outcome.ok:
            try:
                rows = len(outcome.value)
            except TypeError:
                rows = None
        analysis = outcome.analysis if isinstance(outcome.analysis, dict) else {}
        self.telemetry.record(
            QueryTelemetry(
                handle=prepared.handle,
                language=prepared.language,
                cache_hit=prepared.cached,
                compile_seconds=0.0 if prepared.cached else prepared.plan.compile_seconds,
                execute_seconds=outcome.seconds,
                ok=outcome.ok,
                error_kind=None if outcome.ok else outcome.error.kind,
                rows=rows,
                peak_rows=analysis.get("peak_rows"),
                hot_operators=analysis.get("hot"),
                join_engine=analysis.get("join_engine"),
                analyzed=analyzed,
            )
        )

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "tables": self.catalog.describe(),
            "prepared": len(self._prepared),
            "plan_cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
            "telemetry": self.telemetry.describe(),
        }

    def close(self, wait: bool = True) -> None:
        self.executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the JSON-lines wire protocol ------------------------------------

    def handle_request(self, request: Any) -> Dict[str, Any]:
        """Map one decoded request to one response dict (never raises)."""
        try:
            return self._dispatch(request)
        except ServiceError as exc:
            return {"ok": False, "error": exc.to_payload()}
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            return {
                "ok": False,
                "error": {
                    "kind": "internal_error",
                    "message": "%s: %s" % (type(exc).__name__, exc),
                },
            }

    def _dispatch(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            raise BadRequest("request must be a JSON object")
        op = request.get("op")
        if op == "register":
            info = self.register_table(
                self._field(request, "table"),
                request.get("rows", []),
                request.get("schema"),
            )
            return {"ok": True, "table": info.describe()}
        if op == "load":
            tables = self.load_json(self._field(request, "path"))
            return {"ok": True, "tables": [t.describe() for t in tables]}
        if op == "prepare":
            prepared = self.prepare(
                request.get("language", "sql"), self._field(request, "query")
            )
            return {"ok": True, **prepared.describe()}
        if op == "execute":
            outcome = self.execute(
                self._field(request, "handle"),
                params=request.get("params"),
                timeout=request.get("timeout"),
                analyze=bool(request.get("analyze", False)),
            )
            return self._outcome_response(outcome)
        if op == "query":
            outcome = self.query(
                request.get("language", "sql"),
                self._field(request, "query"),
                params=request.get("params"),
                timeout=request.get("timeout"),
                analyze=bool(request.get("analyze", False)),
            )
            return self._outcome_response(outcome)
        if op == "close":
            self.close_prepared(self._field(request, "handle"))
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            from repro.obs.export import prometheus_text

            return {
                "ok": True,
                "prometheus": prometheus_text(self.metrics),
                "metrics": self.metrics.snapshot(),
            }
        if op == "telemetry":
            count = request.get("n")
            ring = self.telemetry.slow if request.get("slow") else self.telemetry.recent
            return {
                "ok": True,
                "telemetry": self.telemetry.describe(),
                "queries": [t.describe() for t in ring(count)],
            }
        raise BadRequest("unknown op %r" % (op,))

    @staticmethod
    def _field(request: Dict[str, Any], name: str) -> Any:
        try:
            return request[name]
        except KeyError:
            raise BadRequest("request is missing field %r" % (name,))

    @staticmethod
    def _outcome_response(outcome: Outcome) -> Dict[str, Any]:
        if not outcome.ok:
            return {
                "ok": False,
                "error": outcome.error.to_payload(),
                "seconds": outcome.seconds,
            }
        try:
            result = json_io.to_jsonable(outcome.value)
        except DataError as exc:
            return {
                "ok": False,
                "error": {"kind": "internal_error", "message": str(exc)},
                "seconds": outcome.seconds,
            }
        response = {"ok": True, "result": result, "seconds": outcome.seconds}
        if outcome.analysis is not None:
            response["analysis"] = outcome.analysis
        return response

    def serve(self, input_stream: IO[str], output_stream: IO[str]) -> int:
        """The ``repro serve`` loop: one JSON request per line, one JSON
        response per line.  EOF or ``{"op": "shutdown"}`` ends the loop;
        malformed lines produce structured errors and the loop continues.
        """
        served = 0
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                response: Dict[str, Any] = {
                    "ok": False,
                    "error": {"kind": "bad_request", "message": "malformed JSON: %s" % exc},
                }
            else:
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    print(json.dumps({"ok": True, "served": served}), file=output_stream)
                    output_stream.flush()
                    break
                response = self.handle_request(request)
                served += 1
            print(json.dumps(response), file=output_stream)
            output_stream.flush()
        self.close(wait=False)
        return 0


__all__ = ["QueryService"]
