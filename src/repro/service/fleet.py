"""Fleet-wide worker observability for the multi-process front end.

PR 8 gave the leader N worker processes; their metrics registries,
resource footprints, and health lived and died inside each process.
This module is the leader-side aggregation point that makes the fleet
observable as one system:

- **per-worker metric series** — each worker piggybacks a
  :func:`repro.obs.metrics.snapshot_delta` of its own registry on every
  wire reply; :meth:`Fleet.apply_delta` folds it into a leader-side
  per-worker :class:`~repro.obs.metrics.MetricsRegistry` (counters sum,
  gauges last-write-wins, histograms merge bucket-wise and stay
  sample-equivalent to the worker's own).  ``/metrics`` exposes these as
  ``repro_worker_*`` families with a ``worker`` label (see
  :func:`repro.obs.export.prometheus_text`).
- **resource gauges** — collected in the worker on the leader's
  heartbeat (``_heartbeat`` pipe op): RSS via ``resource.getrusage``,
  columnar-cache bytes, catalog-snapshot bytes, plan-cache size and
  hit rate, executor inflight.  :meth:`set_resources` stores the raw
  document for ``GET /workers`` and mirrors the numeric values into the
  worker's registry as gauges so they ride the same labeled exposition.
- **health** — :meth:`describe` joins the pool's liveness view
  (``pool.describe()``) with per-worker pending counts, heartbeat ages,
  and respawn totals into the ``GET /workers`` document.

A worker's series survive its death (a respawned replacement gets a new
``wN`` name); the totals therefore never go backwards, which is what
Prometheus counters require.  Thread-safe: deltas arrive from the
asyncio loop, heartbeats from the loop's executor, scrapes from the
sidecar's threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, delta_is_empty

#: Resource-document keys mirrored into per-worker gauges for /metrics.
RESOURCE_GAUGES = (
    "rss_bytes",
    "columnar_cache_bytes",
    "catalog_bytes",
    "plan_cache_entries",
    "plan_cache_hit_rate",
    "inflight",
    "uptime_seconds",
)


class Fleet:
    """Leader-side per-worker registries, resources, and health."""

    def __init__(self, metrics: Any = None):
        self._registries: Dict[str, MetricsRegistry] = {}
        self._resources: Dict[str, Dict[str, Any]] = {}
        self._heartbeats: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._pool_describe: Optional[Callable[[], Dict[str, Any]]] = None
        self._pending: Optional[Callable[[], Dict[str, int]]] = None
        if metrics is not None:
            self._deltas = metrics.counter("service.fleet.deltas")
            self._heartbeat_counter = metrics.counter("service.fleet.heartbeats")
        else:
            self._deltas = self._heartbeat_counter = None

    def attach_pool(
        self,
        describe: Callable[[], Dict[str, Any]],
        pending: Optional[Callable[[], Dict[str, int]]] = None,
    ) -> None:
        """Wire the pool's health view in (the net server calls this)."""
        self._pool_describe = describe
        self._pending = pending

    # -- metric deltas ------------------------------------------------------

    def registry(self, worker: str) -> MetricsRegistry:
        """The leader-side registry mirroring ``worker``'s instruments."""
        with self._lock:
            registry = self._registries.get(worker)
            if registry is None:
                registry = self._registries[worker] = MetricsRegistry()
            return registry

    def apply_delta(self, worker: str, delta: Optional[Dict[str, Any]]) -> None:
        """Fold one shipped metrics delta into ``worker``'s registry."""
        if not delta or delta_is_empty(delta):
            return
        self.registry(worker).apply_delta(delta)
        if self._deltas is not None:
            self._deltas.inc()

    def worker_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Every worker's registry snapshot — the /metrics fleet source."""
        with self._lock:
            registries = dict(self._registries)
        return {worker: registry.snapshot() for worker, registry in registries.items()}

    # -- resources ----------------------------------------------------------

    def set_resources(
        self, worker: str, resources: Optional[Dict[str, Any]], now: Optional[float] = None
    ) -> None:
        """Store a heartbeat's resource document and mirror it to gauges."""
        if not isinstance(resources, dict):
            return
        stamp = time.time() if now is None else now
        with self._lock:
            self._resources[worker] = resources
            self._heartbeats[worker] = stamp
        registry = self.registry(worker)
        for key in RESOURCE_GAUGES:
            value = resources.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                registry.gauge("resource.%s" % key).set(value)
        if self._heartbeat_counter is not None:
            self._heartbeat_counter.inc()

    def resources(self, worker: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._resources.get(worker)

    # -- the /workers document ---------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Per-worker health, inflight, respawns, and resources.

        Workers currently in the pool come from the attached pool's
        ``describe()``; workers that only ever shipped deltas (e.g. dead
        predecessors after a respawn) still appear, flagged
        ``alive: False``, so their counted work remains attributable.
        """
        pool_view = self._pool_describe() if self._pool_describe is not None else {}
        pending = self._pending() if self._pending is not None else {}
        now = time.time()
        with self._lock:
            resources = dict(self._resources)
            heartbeats = dict(self._heartbeats)
            known = set(self._registries)
        entries: List[Dict[str, Any]] = []
        listed = set()
        for info in pool_view.get("workers", []):
            name = info.get("name")
            listed.add(name)
            entry: Dict[str, Any] = {
                "name": name,
                "alive": bool(info.get("alive")),
                "pending": pending.get(name, 0),
            }
            if name in heartbeats:
                entry["heartbeat_age_seconds"] = max(0.0, now - heartbeats[name])
            if name in resources:
                entry["resources"] = resources[name]
            entries.append(entry)
        for name in sorted(known - listed):
            entry = {"name": name, "alive": False, "pending": 0, "retired": True}
            if name in resources:
                entry["resources"] = resources[name]
            entries.append(entry)
        return {
            "count": pool_view.get("count", len(entries)),
            "workers": entries,
        }


__all__ = ["Fleet", "RESOURCE_GAUGES"]
