"""The plan cache: structural key → compiled plan, with LRU eviction.

Sits between ``prepare`` and the compiler: a hit skips optimization and
codegen entirely (the dominant cost — see ``benchmarks/bench_service.py``).
Keys come from :mod:`repro.service.plan_key`, so textually different but
structurally identical queries share an entry.

Counters are exported through the :mod:`repro.obs` metrics registry
(``service.plan_cache.hits`` / ``.misses`` / ``.evictions`` and a
``service.plan_cache.size`` gauge); pass the service's registry to make
them visible in ``stats`` / ``--profile`` output.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional

from repro.obs.metrics import get_metrics


class PlanCache:
    """A thread-safe LRU mapping of plan keys to compiled artifacts."""

    def __init__(self, capacity: int = 128, metrics: Any = None) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        metrics = metrics if metrics is not None else get_metrics()
        self._hits = metrics.counter("service.plan_cache.hits")
        self._misses = metrics.counter("service.plan_cache.misses")
        self._evictions = metrics.counter("service.plan_cache.evictions")
        self._size = metrics.gauge("service.plan_cache.size")

    def get(self, key: str) -> Optional[Any]:
        """The cached plan for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return value

    def put(self, key: str, value: Any) -> None:
        """Insert ``key``; evicts the least-recently-used entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
            else:
                if len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions.inc()
                self._entries[key] = value
            self._size.set(len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._size.set(0)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self._hits.value,
            "misses": self._misses.value,
            "evictions": self._evictions.value,
        }
