"""The session executor: bounded, timed execution of compiled plans.

Runs query callables on a thread pool with

- a **bounded admission queue**: at most ``workers + queue_depth``
  requests are in flight; beyond that, requests are rejected immediately
  with a structured ``overloaded`` error instead of queueing without
  bound (the overload behavior a serving layer needs);
- **per-query timeouts**: the caller gets a structured ``timeout`` error
  as soon as the deadline passes.  Python cannot interrupt a running
  thread, so the worker is *abandoned* — it keeps its admission slot
  until it actually finishes, which is exactly the back-pressure you
  want: a service drowning in runaway queries starts refusing work
  rather than piling it up;
- **structured outcomes**: :class:`Outcome` carries either a value or a
  :class:`~repro.service.errors.ServiceError`; worker exceptions never
  escape to the caller.

Counters (``service.execute.ok`` / ``.runtime_error`` / ``.timeout`` /
``.rejected``) land in the :mod:`repro.obs` metrics registry.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Callable, Optional

from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.service.errors import Overloaded, QueryTimeout, RuntimeQueryError, ServiceError


class Outcome:
    """The structured result of one execution attempt.

    ``analysis`` is filled only for EXPLAIN ANALYZE executions: the
    JSON-safe summary from :func:`repro.obs.analyze.analysis_summary`.
    """

    __slots__ = ("value", "error", "seconds", "analysis")

    def __init__(self, value: Any = None, error: Optional[ServiceError] = None, seconds: float = 0.0):
        self.value = value
        self.error = error
        self.seconds = seconds
        self.analysis: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.ok:
            return "Outcome(ok, %.4fs)" % self.seconds
        return "Outcome(%s, %.4fs)" % (self.error.kind, self.seconds)


class SessionExecutor:
    """A thread pool with bounded admission and per-query deadlines."""

    def __init__(
        self,
        workers: int = 4,
        queue_depth: int = 16,
        default_timeout: Optional[float] = 30.0,
        metrics: Any = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker, got %d" % workers)
        if queue_depth < 0:
            raise ValueError("queue depth cannot be negative, got %d" % queue_depth)
        self.workers = workers
        self.queue_depth = queue_depth
        self.default_timeout = default_timeout
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._slots = threading.Semaphore(workers + queue_depth)
        metrics = metrics if metrics is not None else get_metrics()
        self._ok = metrics.counter("service.execute.ok")
        self._runtime_errors = metrics.counter("service.execute.runtime_error")
        self._timeouts = metrics.counter("service.execute.timeout")
        self._rejected = metrics.counter("service.execute.rejected")
        # service.shed is the cross-layer load-shedding count: the same
        # name the network front end's AdmissionController increments, so
        # /metrics shows one total no matter which layer refused the work.
        self._shed = metrics.counter("service.shed")
        self._latency = metrics.histogram("service.execute.latency_ms")
        self._closed = False

    def submit(self, fn: Callable[[], Any], timeout: Optional[float] = None) -> Outcome:
        """Run ``fn()`` on the pool; block until a result or the deadline.

        Never raises: all failure modes come back as :class:`Outcome`
        errors (``overloaded``, ``timeout``, ``runtime_error`` — or any
        :class:`ServiceError` the callable itself raises, passed through
        with its own kind, e.g. ``bad_request`` for an unbound parameter).
        """
        if timeout is None:
            timeout = self.default_timeout
        if self._closed:
            self._shed.inc()
            return Outcome(error=Overloaded("service is shut down"))
        if not self._slots.acquire(blocking=False):
            self._rejected.inc()
            self._shed.inc()
            return Outcome(
                error=Overloaded(
                    "admission queue full (%d running + %d queued)"
                    % (self.workers, self.queue_depth)
                )
            )

        def run() -> Any:
            # The submitter's contextvars (the current QueryContext, see
            # repro.obs.context) were captured below; inside them the
            # worker's get_tracer() resolves to the request's tracer, so
            # this span lands in the same per-query trace as the
            # ingress-side spans — and its start offset exposes queue wait.
            try:
                with get_tracer().span("executor.run", category="service"):
                    return fn()
            finally:
                self._slots.release()

        start = time.perf_counter()
        # Thread pools run callables in the *worker's* context; copying the
        # submitter's context keeps the query_id correlation intact across
        # the thread hop.
        context = contextvars.copy_context()
        future = self._pool.submit(context.run, run)
        try:
            value = future.result(timeout=timeout)
        except FutureTimeout:
            elapsed = time.perf_counter() - start
            self._timeouts.inc()
            future.cancel()  # a no-op once running; reclaims queued-only work
            return Outcome(
                error=QueryTimeout("query exceeded %.3fs deadline" % timeout),
                seconds=elapsed,
            )
        except ServiceError as exc:
            elapsed = time.perf_counter() - start
            if isinstance(exc, RuntimeQueryError):
                self._runtime_errors.inc()
            return Outcome(error=exc, seconds=elapsed)
        except Exception as exc:  # noqa: BLE001 - the serving loop must survive
            elapsed = time.perf_counter() - start
            self._runtime_errors.inc()
            return Outcome(
                error=RuntimeQueryError("%s: %s" % (type(exc).__name__, exc)),
                seconds=elapsed,
            )
        elapsed = time.perf_counter() - start
        self._ok.inc()
        self._latency.record(elapsed * 1e3)
        return Outcome(value=value, seconds=elapsed)

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "SessionExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
