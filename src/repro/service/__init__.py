"""``repro.service``: the query-serving subsystem.

Turns the one-shot compiler into a long-lived service, the way the
paper's Q*cert pipeline is meant to be used: compile ahead of time,
serve many executions.  Five pieces (see DESIGN.md for the full
architecture):

- :class:`Catalog` — named datasets with schemas and loaded data;
- :class:`PlanCache` — LRU cache of compiled plans keyed on a
  structural hash of the normalized source AST
  (:func:`plan_key` / :func:`ast_fingerprint`);
- :class:`~repro.service.prepared.PreparedQuery` — compile once,
  execute many times, with ``$param`` bindings applied at execute time;
- :class:`SessionExecutor` — thread-pool execution with per-query
  timeouts and a bounded admission queue;
- :class:`QueryService` — the facade, plus the ``repro serve``
  JSON-lines wire protocol;
- :class:`ObsHttpServer` — the read-only HTTP observability sidecar
  (``/metrics``, ``/healthz``, ``/stats``, ``/telemetry``, ``/slow``)
  behind ``repro serve --obs-port``;
- :class:`ServeNetServer` — the asyncio network front end
  (``repro serve --http/--tcp``): the same wire protocol over HTTP and
  persistent TCP JSON-lines, with :class:`AdmissionController`
  load-shedding in front and an optional :class:`WorkerPool` of worker
  *processes* (``--workers N``) for multi-core scale-out;
- :class:`Fleet` — leader-side per-worker observability: metric deltas
  workers piggyback on replies merge into labeled ``/metrics`` series,
  heartbeat resource gauges and pool liveness feed ``/workers``, and
  worker span fragments stitch into one merged per-query trace
  (``/trace/<query_id>``, ``repro trace``).

All failures surface as the structured error taxonomy in
:mod:`repro.service.errors` (compile_error / runtime_error / timeout /
overloaded / catalog_error / bad_request) — never as a crashed loop.
"""

from repro.service.admission import AdmissionController
from repro.service.cache import PlanCache
from repro.service.catalog import Catalog, TableInfo
from repro.service.errors import (
    BadRequest,
    CatalogError,
    CompileError,
    Overloaded,
    QueryTimeout,
    RuntimeQueryError,
    ServiceError,
)
from repro.service.executor import Outcome, SessionExecutor
from repro.service.fleet import Fleet
from repro.service.http import ObsHttpServer
from repro.service.net import ServeNetServer
from repro.service.plan_key import ast_fingerprint, plan_key
from repro.service.prepared import CompiledPlan, PreparedQuery, compile_plan, parse_query
from repro.service.service import QueryService
from repro.service.telemetry import QueryTelemetry, TelemetryLog
from repro.service.worker import WorkerCrashed, WorkerPool, catalog_snapshot

__all__ = [
    "AdmissionController",
    "BadRequest",
    "Catalog",
    "CatalogError",
    "CompileError",
    "CompiledPlan",
    "Fleet",
    "ObsHttpServer",
    "Outcome",
    "Overloaded",
    "PlanCache",
    "PreparedQuery",
    "QueryService",
    "QueryTelemetry",
    "QueryTimeout",
    "RuntimeQueryError",
    "ServeNetServer",
    "ServiceError",
    "SessionExecutor",
    "TableInfo",
    "TelemetryLog",
    "WorkerCrashed",
    "WorkerPool",
    "ast_fingerprint",
    "catalog_snapshot",
    "compile_plan",
    "parse_query",
    "plan_key",
]
