"""Prepared queries: compile once, execute many times.

``compile_plan`` runs the full pipeline (frontend AST → NRAe → optimize
→ NNRC → optimize → Python codegen) exactly once and wraps the result in
a :class:`CompiledPlan` — an immutable artifact that is safe to share
across threads and across :class:`~repro.service.prepared.PreparedQuery`
handles (the generated callable is a pure function of ``constants``).

Parameters: ``$name`` placeholders in SQL compile to constant-environment
reads under the key ``"$name"`` (see :class:`repro.sql.ast.Param`), so
binding happens at execute time by merging ``{"$name": value}`` into the
constants snapshot — the plan itself never changes, which is what makes
it cacheable.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.compiler.pipeline import compile_parsed, parse_source
from repro.data import json_io
from repro.data.model import DataError
from repro.service.errors import BadRequest, CompileError
from repro.service.plan_key import plan_key
from repro.sql import ast as sql_ast


def collect_params(node: Any) -> Tuple[str, ...]:
    """The sorted ``$param`` names appearing in a frontend AST."""
    names = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, sql_ast.Param):
            names.add(current.name)
        if isinstance(current, sql_ast.SqlNode):
            stack.extend(current.children())
    return tuple(sorted(names))


class CompiledPlan:
    """The shareable compiled artifact for one structural plan key."""

    __slots__ = (
        "language",
        "key",
        "nnrc",
        "nraenv",
        "callable",
        "params",
        "compile_seconds",
        "timings",
    )

    def __init__(
        self,
        language: str,
        key: str,
        nnrc: Any,
        fn: Any,
        params: Tuple[str, ...],
        compile_seconds: float,
        timings: Dict[str, float],
        nraenv: Any = None,
    ):
        self.language = language
        self.key = key
        self.nnrc = nnrc
        self.nraenv = nraenv
        self.callable = fn
        self.params = params
        self.compile_seconds = compile_seconds
        self.timings = timings

    def bind(self, constants: Dict[str, Any], params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge parameter bindings into a constants snapshot."""
        params = params or {}
        missing = [name for name in self.params if name not in params]
        if missing:
            raise BadRequest(
                "unbound parameters: %s (query declares %s)"
                % (", ".join("$" + m for m in missing), ", ".join("$" + p for p in self.params))
            )
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise BadRequest(
                "unknown parameters: %s (query declares %s)"
                % (
                    ", ".join("$" + u for u in unknown),
                    ", ".join("$" + p for p in self.params) or "none",
                )
            )
        if not params:
            return constants
        bound = dict(constants)
        for name, value in params.items():
            # Parameters arrive in the JSON wire format, so tagged values
            # ({"$date": ...}) decode to their foreign types; data-model
            # values pass through unchanged.
            try:
                bound["$" + name] = json_io.from_jsonable(value)
            except DataError:
                bound["$" + name] = value
        return bound

    def execute(self, constants: Dict[str, Any], params: Optional[Dict[str, Any]] = None) -> Any:
        """Run the compiled callable against a constants snapshot."""
        return self.callable(self.bind(constants, params))

    def execute_analyzed(
        self, constants: Dict[str, Any], params: Optional[Dict[str, Any]] = None
    ) -> Tuple[Any, Dict[str, Any]]:
        """Run with EXPLAIN ANALYZE: (result, analysis summary).

        Executes the *optimized NRAe plan* through the join engine with
        per-node statistics collection — slower than the compiled
        callable (and serialized process-wide), so strictly an opt-in
        diagnostic path.  The summary includes the annotated plan tree.
        """
        from repro.data.model import Record
        from repro.nraenv.exec import eval_fast
        from repro.obs.analyze import analysis_summary, analyze_execution

        if self.nraenv is None:
            raise BadRequest("plan was compiled without its NRAe stage; cannot analyze")
        bound = self.bind(constants, params)
        with analyze_execution() as collector:
            value = eval_fast(self.nraenv, Record({}), None, bound)
        return value, analysis_summary(collector, self.nraenv)


def parse_query(language: str, text: str) -> Any:
    """Parse, mapping all frontend failures to :class:`CompileError`."""
    try:
        return parse_source(language, text)
    except ValueError as exc:  # syntax errors and unknown languages
        raise CompileError(str(exc))


def compile_plan(language: str, ast: Any, key: Optional[str] = None) -> CompiledPlan:
    """Compile a parsed AST into a :class:`CompiledPlan` (the slow path)."""
    from repro.backend.python_gen import compile_nnrc_to_callable
    from repro.compiler.pipeline import NRAENV_OPT

    if key is None:
        key = plan_key(language, ast)
    start = time.perf_counter()
    try:
        result = compile_parsed(language, ast)
        fn = compile_nnrc_to_callable(result.final, name="served")
    except (ValueError, TypeError, DataError) as exc:
        raise CompileError(str(exc))
    elapsed = time.perf_counter() - start
    try:
        nraenv = result.output(NRAENV_OPT)
    except (KeyError, ValueError):
        nraenv = None  # pipelines without an NRAe stage cannot be analyzed
    return CompiledPlan(
        language,
        key,
        result.final,
        fn,
        collect_params(ast),
        elapsed,
        result.timings(),
        nraenv=nraenv,
    )


class PreparedQuery:
    """A client-facing handle to a compiled plan."""

    __slots__ = ("handle", "language", "text", "plan", "cached", "executions")

    def __init__(self, handle: str, language: str, text: str, plan: CompiledPlan, cached: bool):
        self.handle = handle
        self.language = language
        self.text = text
        self.plan = plan
        self.cached = cached
        self.executions = 0

    @property
    def params(self) -> List[str]:
        return list(self.plan.params)

    def describe(self) -> Dict[str, Any]:
        return {
            "handle": self.handle,
            "language": self.language,
            "params": self.params,
            "cached": self.cached,
            "compile_seconds": self.plan.compile_seconds,
            "executions": self.executions,
        }
