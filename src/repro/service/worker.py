"""Worker processes: multi-core scale-out for the serving layer.

One Python process is one GIL; the thread-pool executor overlaps I/O
but cannot run two query executions on two cores.  This module moves
execution into **N worker processes** (``multiprocessing`` — ``spawn``
by default, ``fork``/``forkserver`` selectable), each holding

- a **read-only catalog snapshot**: the leader's registered tables,
  serialized through the JSON wire format at pool start (and at every
  respawn) so a worker can never see a half-registered catalog;
- a **per-worker LRU plan cache** with **warm-up replay**: the snapshot
  carries the leader's live prepared handles ``(handle, language,
  text)``, and the worker re-prepares each one *under the leader's
  handle name* (``QueryService.prepare(handle=...)``), so any handle a
  client holds is valid on whichever worker the request lands on;
- its own :class:`~repro.service.executor.SessionExecutor`, which is
  what enforces the request deadline the leader propagates (the
  ``timeout`` field of the worker message is the *remaining* budget).

The leader talks to each worker over a private pipe, serialized by a
dedicated **IO thread** per worker (:class:`WorkerHandle`): requests
enqueue into a mailbox, the thread does one blocking send/recv round
trip per message, and completion lands in a ``concurrent.futures``
future the asyncio front end awaits.  A worker death (EOF on the pipe)
fails the in-flight future with :class:`WorkerCrashed` — which the
front end reports as a structured ``runtime_error``, never a hung
client — and the pool **respawns** a replacement from a fresh snapshot
before putting it back into rotation.

Transient handles: one-shot ``query`` ops prepared inside a worker use
the worker's own ``w<N>t…`` handle prefix so they can never collide
with the leader-broadcast ``q…`` handles.
"""

from __future__ import annotations

import asyncio
import os
import queue
import sys
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional


class WorkerCrashed(Exception):
    """The worker process died while (or before) answering a request."""


def catalog_snapshot(service: Any) -> Dict[str, Any]:
    """The read-only state a new worker needs, as plain picklable data.

    Tables ship as each :class:`~repro.service.catalog.TableInfo`'s
    cached :meth:`wire_payload` — column-oriented for columnar tables
    (one list per field), the classic row list otherwise.  The payload
    is built once per registration and shared *by reference* across
    every snapshot (copy-on-write: respawns after new registrations
    pick up the new tables' payloads, unchanged tables re-use theirs),
    so respawning a worker does not re-encode the whole catalog.
    Prepared queries ride along as ``(handle, language, text)`` triples
    in creation order so warm-up replay assigns identical handles.
    """
    tables = {}
    for info in service.catalog.tables():
        tables[info.name] = info.wire_payload()
    prepared = [
        {"handle": p.handle, "language": p.language, "text": p.text}
        for p in service.prepared_queries()
    ]
    return {"tables": tables, "prepared": prepared}


def worker_resources(service: Any, catalog_bytes: int, started_at: float) -> Dict[str, Any]:
    """The resource document a worker reports on every heartbeat.

    RSS comes from ``resource.getrusage`` (``ru_maxrss`` is KiB on
    Linux, bytes on macOS); columnar-cache bytes from the catalog's
    :meth:`~repro.service.catalog.Catalog.columnar_bytes`; plan-cache
    size and hit rate from the worker's own
    :meth:`~repro.service.cache.PlanCache.stats`.  ``catalog_bytes`` is
    the pickled size of the warm-up snapshot — what this worker's copy
    of the catalog actually cost to ship.
    """
    doc: Dict[str, Any] = {
        "pid": os.getpid(),
        "catalog_bytes": catalog_bytes,
        "uptime_seconds": time.time() - started_at,
    }
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        scale = 1 if sys.platform == "darwin" else 1024
        doc["rss_bytes"] = usage.ru_maxrss * scale
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        pass
    try:
        doc["columnar_cache_bytes"] = service.catalog.columnar_bytes()
    except Exception:  # noqa: BLE001 - resources must never kill the loop
        pass
    stats = service.cache.stats()
    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    doc["plan_cache_entries"] = stats.get("size", 0)
    doc["plan_cache_hit_rate"] = (hits / (hits + misses)) if (hits + misses) else 0.0
    return doc


def worker_main(
    worker_id: int, conn: Any, snapshot: Dict[str, Any], options: Dict[str, Any]
) -> None:
    """The worker process entry point: rebuild state, answer requests.

    Runs a private :class:`~repro.service.service.QueryService` (own
    plan cache, own executor) and loops over the pipe: one request dict
    in, one response dict out.  The leader's ``_obs`` envelope (or the
    legacy bare ``_query_id``) rides along so the worker's internal
    spans, telemetry, and (leader-side) audit events all share the
    request's correlation id; when it asks for trace recording the
    worker records its spans into a private tracer and ships them back
    — wall-clock anchored — in the reply's ``_obs`` field, together
    with a mergeable metrics delta, for the leader to stitch into the
    request's single merged trace.  ``{"op": "_heartbeat"}`` answers
    with the worker's resource gauges; ``{"op": "_shutdown"}`` ends the
    loop; fault injection (``_inject: "crash"``) is honored only when
    the pool opted in — it exists so tests can prove a worker crash
    surfaces as a structured error.
    """
    import pickle

    from repro.obs.context import QueryContext, query_context
    from repro.obs.metrics import delta_is_empty, snapshot_delta
    from repro.obs.trace import Tracer, spans_to_wire
    from repro.service.catalog import rows_from_wire
    from repro.service.errors import ServiceError
    from repro.service.service import QueryService

    service = QueryService(
        cache_capacity=int(options.get("cache_capacity", 128)),
        workers=1,
        queue_depth=2,
        default_timeout=options.get("default_timeout", 30.0),
        telemetry_capacity=16,
        trace_sample_rate=None,
        handle_prefix="w%dt" % worker_id,
    )
    try:
        for name, table in snapshot.get("tables", {}).items():
            # both wire forms (columns / rows) are accepted, so a newer
            # leader can drive an older worker snapshot and vice versa
            service.register_table(name, rows_from_wire(table), table.get("schema"))
        for entry in snapshot.get("prepared", []):
            service.prepare(entry["language"], entry["text"], handle=entry["handle"])
    except Exception as exc:  # noqa: BLE001 - report, then die visibly
        try:
            conn.send(
                {
                    "ok": False,
                    "error": {
                        "kind": "internal_error",
                        "message": "worker warm-up failed: %s" % exc,
                    },
                    "_worker": "w%d" % worker_id,
                }
            )
        except (BrokenPipeError, OSError):
            pass
        return
    fault_injection = bool(options.get("fault_injection"))
    started_at = time.time()
    try:
        catalog_bytes = len(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - sizing is best-effort
        catalog_bytes = 0
    # Delta baseline: everything warm-up recorded is the worker's own
    # startup cost, not any query's — start shipping changes from here.
    metrics_prev = service.metrics.snapshot()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(msg, dict) or msg.get("op") == "_shutdown":
            try:
                conn.send({"ok": True, "_worker": "w%d" % worker_id})
            except (BrokenPipeError, OSError):
                pass
            break
        if msg.get("op") == "_heartbeat":
            metrics_cur = service.metrics.snapshot()
            delta = snapshot_delta(metrics_prev, metrics_cur)
            metrics_prev = metrics_cur
            beat: Dict[str, Any] = {
                "ok": True,
                "_worker": "w%d" % worker_id,
                "_obs": {
                    "resources": worker_resources(service, catalog_bytes, started_at),
                },
            }
            if not delta_is_empty(delta):
                beat["_obs"]["metrics"] = delta
            try:
                conn.send(beat)
            except (BrokenPipeError, OSError):
                break
            continue
        if fault_injection and msg.pop("_inject", None) == "crash":
            os._exit(23)
        obs_in = msg.pop("_obs", None)
        query_id = msg.pop("_query_id", None)
        forced_handle = msg.pop("_handle", None)
        tracer = None
        try:
            if forced_handle is not None and msg.get("op") == "prepare":
                try:
                    prepared = service.prepare(
                        msg.get("language", "sql"), msg["query"], handle=forced_handle
                    )
                    response: Dict[str, Any] = {"ok": True, **prepared.describe()}
                except ServiceError as exc:
                    response = {"ok": False, "error": exc.to_payload()}
            else:
                if isinstance(obs_in, dict):
                    if obs_in.get("record_trace"):
                        tracer = Tracer()
                    context = QueryContext.from_wire(obs_in, tracer=tracer)
                else:
                    context = QueryContext(query_id=query_id)
                with query_context(context):
                    response = service.handle_request(msg)
        except Exception as exc:  # noqa: BLE001 - the worker loop must survive
            response = {
                "ok": False,
                "error": {
                    "kind": "internal_error",
                    "message": "%s: %s" % (type(exc).__name__, exc),
                },
            }
        response["_worker"] = "w%d" % worker_id
        obs_out: Dict[str, Any] = {}
        if tracer is not None and tracer.roots:
            obs_out["spans"] = spans_to_wire(tracer)
        metrics_cur = service.metrics.snapshot()
        delta = snapshot_delta(metrics_prev, metrics_cur)
        metrics_prev = metrics_cur
        if not delta_is_empty(delta):
            obs_out["metrics"] = delta
        if obs_out:
            response["_obs"] = obs_out
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break
    service.close(wait=False)


class WorkerHandle:
    """The leader's end of one worker: a mailbox and an IO thread.

    :meth:`submit` is thread-safe and non-blocking — it enqueues the
    message and returns a future.  The IO thread serializes the pipe
    (one in-flight round trip per worker by construction), which is
    also what makes broadcast ordering trivial: per-worker FIFO.
    """

    def __init__(
        self,
        worker_id: int,
        process: Any,
        conn: Any,
        on_crash: Optional[Callable[["WorkerHandle"], None]] = None,
    ):
        self.worker_id = worker_id
        self.name = "w%d" % worker_id
        self.process = process
        self._conn = conn
        self._on_crash = on_crash
        self._outbox: "queue.Queue" = queue.Queue()
        self._crashed = False
        #: query id of the request currently on the pipe (None when
        #: idle) — what the crash audit event names as the casualty.
        self.in_flight_query_id: Optional[str] = None
        self._thread = threading.Thread(
            target=self._io_loop, name="repro-worker-io-%d" % worker_id, daemon=True
        )
        self._thread.start()

    @property
    def alive(self) -> bool:
        return not self._crashed and self.process.is_alive()

    def submit(self, msg: Dict[str, Any]) -> "Future":
        future: "Future" = Future()
        self._outbox.put((msg, future))
        return future

    def _io_loop(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:  # shutdown sentinel
                try:
                    self._conn.send({"op": "_shutdown"})
                    self._conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
                self._conn.close()
                return
            msg, future = item
            obs = msg.get("_obs")
            self.in_flight_query_id = (
                obs.get("query_id") if isinstance(obs, dict) else msg.get("_query_id")
            )
            try:
                self._conn.send(msg)
                reply = self._conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._crashed = True
                crash = WorkerCrashed(
                    "worker %s crashed mid-query (%s)"
                    % (self.name, exc or type(exc).__name__)
                )
                self._safe_fail(future, crash)
                self._fail_pending(crash)
                try:
                    self._conn.close()
                except OSError:
                    pass
                if self._on_crash is not None:
                    self._on_crash(self)
                return
            self.in_flight_query_id = None
            self._safe_result(future, reply)

    def _fail_pending(self, crash: WorkerCrashed) -> None:
        while True:
            try:
                item = self._outbox.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                self._safe_fail(item[1], crash)

    @staticmethod
    def _safe_result(future: "Future", value: Any) -> None:
        try:
            future.set_result(value)
        except Exception:  # noqa: BLE001 - cancelled concurrently; drop
            pass

    @staticmethod
    def _safe_fail(future: "Future", exc: Exception) -> None:
        try:
            future.set_exception(exc)
        except Exception:  # noqa: BLE001 - cancelled concurrently; drop
            pass

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate/kill if it won't."""
        if not self._crashed:
            self._outbox.put(None)
            self._thread.join(timeout=timeout)
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=timeout)


class WorkerPool:
    """N workers, an idle rotation, and crash-respawn supervision.

    ``snapshot_fn`` is called at every (re)spawn, so a replacement
    worker always warms up from the leader's *current* catalog and
    prepared handles — missed broadcasts are made up by construction.
    """

    def __init__(
        self,
        count: int,
        snapshot_fn: Callable[[], Dict[str, Any]],
        mp_start: str = "spawn",
        options: Optional[Dict[str, Any]] = None,
        metrics: Any = None,
        grace: float = 2.0,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        import multiprocessing

        if count < 1:
            raise ValueError("worker pool needs at least one worker, got %d" % count)
        self.count = count
        self.grace = grace
        #: Audit hook: called with ``worker_crash`` / ``worker_respawn``
        #: event dicts (the serve layer routes them to the query log).
        #: Assignable after construction; exceptions are swallowed.
        self.on_event = on_event
        self._snapshot_fn = snapshot_fn
        self._options = dict(options or {})
        self._ctx = multiprocessing.get_context(mp_start)
        self._handles: List[WorkerHandle] = []
        self._ids = iter(range(10**9))
        self._closing = False
        self._loop: Optional[Any] = None
        self._idle: Optional["asyncio.Queue"] = None
        self._lock = threading.Lock()
        if metrics is not None:
            self._respawns = metrics.counter("service.worker.respawns")
            self._lagging = metrics.counter("service.worker.lagging")
        else:
            self._respawns = self._lagging = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn all workers (blocking: process start + warm-up replay)."""
        self._handles = [self._spawn(next(self._ids)) for _ in range(self.count)]
        return self

    def _spawn(self, worker_id: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, self._snapshot_fn(), self._options),
            name="repro-worker-%d" % worker_id,
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(worker_id, process, parent_conn, self._handle_crash)

    def bind(self, loop: Any) -> None:
        """Attach to the serving event loop; builds the idle rotation."""
        self._loop = loop
        self._idle = asyncio.Queue()
        for handle in self._handles:
            self._idle.put_nowait(handle)

    @property
    def workers(self) -> List[str]:
        with self._lock:
            return [handle.name for handle in self._handles]

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "workers": [
                    {"name": h.name, "alive": h.alive} for h in self._handles
                ],
            }

    def pending(self) -> Dict[str, int]:
        """Per-worker queued-message depth (the /workers pending column)."""
        with self._lock:
            return {h.name: h._outbox.qsize() for h in self._handles}

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event(event)
        except Exception:  # noqa: BLE001 - audit must never break supervision
            pass

    # -- request path -----------------------------------------------------

    async def acquire(self, timeout: Optional[float] = None) -> WorkerHandle:
        """Wait for an idle worker; ``asyncio.TimeoutError`` on deadline."""
        assert self._idle is not None, "pool.bind(loop) was not called"
        if timeout is None:
            return await self._idle.get()
        return await asyncio.wait_for(self._idle.get(), max(0.001, timeout))

    def release(self, handle: WorkerHandle) -> None:
        if self._idle is not None and not self._closing and handle.alive:
            self._idle.put_nowait(handle)

    async def request(
        self,
        handle: WorkerHandle,
        msg: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One round trip on an *acquired* worker; returns it on success.

        The wait budget is ``timeout + grace``: the worker's own
        executor enforces ``timeout`` and answers with a structured
        ``timeout`` error, so the leader-side deadline only fires when
        the worker is truly wedged.  On that lagging path the worker is
        NOT released — a done-callback reclaims it whenever the late
        reply finally lands (or leaves it dead if the reply was a
        crash).  :class:`WorkerCrashed` propagates to the caller; the
        crash hook has already respawned a replacement.
        """
        future = handle.submit(msg)
        wrapped = asyncio.ensure_future(asyncio.wrap_future(future))
        budget = None if timeout is None else timeout + self.grace
        try:
            if budget is None:
                reply = await asyncio.shield(wrapped)
            else:
                reply = await asyncio.wait_for(
                    asyncio.shield(wrapped), max(0.001, budget)
                )
        except asyncio.TimeoutError:
            if self._lagging is not None:
                self._lagging.inc()
            wrapped.add_done_callback(lambda f: self._reclaim(handle, f))
            raise
        except WorkerCrashed:
            raise  # _handle_crash respawned; the dead handle stays out
        self.release(handle)
        return reply

    def _reclaim(self, handle: WorkerHandle, future: Any) -> None:
        """A lagging worker finally answered (or died): recycle or drop."""
        if future.cancelled() or future.exception() is not None:
            return  # crash path: _handle_crash already put a replacement in
        self.release(handle)

    async def broadcast(
        self, msg: Dict[str, Any], timeout: float = 60.0
    ) -> List[Any]:
        """Send ``msg`` to every worker; per-worker FIFO keeps ordering.

        Returns one entry per worker: the reply dict, or the exception
        that worker produced (crashed workers respawn from a snapshot
        taken *after* the leader applied the change, so they catch up).
        """
        with self._lock:
            handles = list(self._handles)
        futures = [
            asyncio.ensure_future(asyncio.wrap_future(h.submit(dict(msg))))
            for h in handles
        ]
        done = await asyncio.wait_for(
            asyncio.gather(*futures, return_exceptions=True), timeout
        )
        return list(done)

    # -- supervision ------------------------------------------------------

    def _handle_crash(self, dead: WorkerHandle) -> None:
        """IO-thread hook: replace a dead worker with a warm one."""
        if self._closing:
            return
        if self._respawns is not None:
            self._respawns.inc()
        crash_event: Dict[str, Any] = {"event": "worker_crash", "worker": dead.name}
        if dead.in_flight_query_id is not None:
            crash_event["query_id"] = dead.in_flight_query_id
        self._emit(crash_event)
        try:
            dead.process.join(timeout=1.0)
        except (OSError, ValueError):  # pragma: no cover - already reaped
            pass
        try:
            replacement = self._spawn(next(self._ids))
        except Exception:  # noqa: BLE001 - pragma: no cover - spawn failed
            return
        self._emit(
            {
                "event": "worker_respawn",
                "worker": replacement.name,
                "replaced": dead.name,
            }
        )
        with self._lock:
            for index, handle in enumerate(self._handles):
                if handle is dead:
                    self._handles[index] = replacement
                    break
        if self._loop is not None and self._idle is not None:
            try:
                self._loop.call_soon_threadsafe(self._idle.put_nowait, replacement)
            except RuntimeError:
                pass  # the loop is gone; the next bind() rebuilds the rotation

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (graceful ``_shutdown``, then escalate)."""
        self._closing = True
        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            handle.shutdown(timeout=timeout)


__all__ = [
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerPool",
    "catalog_snapshot",
    "worker_main",
    "worker_resources",
]
