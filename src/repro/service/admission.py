"""Admission control for the network front end: bound, shed, drain.

A serving layer that accepts everything eventually answers nothing: an
unbounded accept queue turns overload into unbounded latency for every
client.  The :class:`AdmissionController` is the front end's first
gate — a fixed in-flight capacity checked in O(1), *before* the request
touches the catalog, the plan cache, parameter binding, or a worker —
so a saturated server spends almost nothing per rejected request and
keeps answering the requests it already admitted.

Three states per work-bearing request:

- **admitted** — an in-flight slot was free; the request proceeds to a
  worker (or the leader's thread pool) and releases the slot when its
  response is written;
- **shed** — no slot free; the caller must answer with the structured
  ``overloaded`` error.  Counted in the ``service.shed`` metric — the
  same counter the thread-pool executor's reject path increments — so
  ``/metrics`` exposes one load-shedding total for the whole stack;
- **draining** — :meth:`start_drain` was called (SIGTERM, shutdown op):
  every new work request is shed with a "draining" message while
  requests already in flight run to completion.  :meth:`wait_idle`
  blocks until the last in-flight request releases (or a deadline
  passes), which is the barrier the graceful-drain sequence waits on
  before stopping workers and flushing the query log.

Thread-safe: the asyncio loop admits, but worker-IO threads and
executor callbacks release.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional


class AdmissionController:
    """A bounded in-flight gate with load-shedding and drain support."""

    def __init__(self, capacity: int, metrics: Any = None):
        if capacity < 1:
            raise ValueError("admission capacity must be positive, got %d" % capacity)
        self.capacity = capacity
        self._inflight = 0
        self._draining = False
        self._lock = threading.Lock()
        # set while no request is in flight; cleared by the first admit
        self._idle = threading.Event()
        self._idle.set()
        if metrics is not None:
            self._admitted = metrics.counter("service.admitted")
            self._shed = metrics.counter("service.shed")
            self._inflight_gauge = metrics.gauge("service.inflight")
        else:
            self._admitted = self._shed = self._inflight_gauge = None

    def try_admit(self) -> bool:
        """Take an in-flight slot if one is free; O(1), never blocks.

        Returns ``False`` (and counts the shed) when the controller is
        at capacity or draining — the caller owes the client a
        structured ``overloaded`` response and must *not* call
        :meth:`release`.
        """
        with self._lock:
            if self._draining or self._inflight >= self.capacity:
                if self._shed is not None:
                    self._shed.inc()
                return False
            self._inflight += 1
            self._idle.clear()
            inflight = self._inflight
        if self._admitted is not None:
            self._admitted.inc()
        if self._inflight_gauge is not None:
            self._inflight_gauge.track_max(inflight)
        return True

    def release(self) -> None:
        """Give back a slot taken by a successful :meth:`try_admit`."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching try_admit()")
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def start_drain(self) -> None:
        """Stop admitting; requests already in flight keep their slots."""
        with self._lock:
            self._draining = True

    def shed_message(self) -> str:
        """The message for the structured ``overloaded`` error."""
        if self.draining:
            return "server is draining; not accepting new queries"
        return "admission queue full (capacity %d in flight)" % self.capacity

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is in flight; ``True`` iff that happened."""
        return self._idle.wait(timeout)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "inflight": self._inflight,
                "draining": self._draining,
            }

    def __repr__(self) -> str:
        return "AdmissionController(%d/%d%s)" % (
            self.inflight,
            self.capacity,
            ", draining" if self.draining else "",
        )


__all__ = ["AdmissionController"]
