"""The dataset catalog: named tables with schemas and loaded data.

The catalog is the service's persistent "database side": it owns the
constant environment that compiled plans read tables from
(``GetConstant`` in NRAe / ``_rt.get_constant`` in generated code).
Registration accepts data-model bags, plain Python rows, or the JSON
wire format of :mod:`repro.data.json_io`; each table records a light
schema (sorted union of column names) that is inferred when not given
and validated when it is.

Thread safety: registrations take a lock and replace the snapshot dict,
so executing queries keep reading the constants snapshot they started
with — a query never sees a half-registered catalog.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.data import json_io
from repro.data.columnar import MISSING, ColumnarBag, cached_columnar, ensure_columnar
from repro.data.model import Bag, DataError, Record
from repro.service.errors import CatalogError

#: Tables at or above this row count are stored columnar at
#: registration: the engine's fused chains then find the column cache
#: already built, and worker snapshots ship columns instead of
#: re-encoding rows.  Smaller tables aren't worth the decomposition.
COLUMNAR_MIN_ROWS = 32


class TableInfo:
    """One registered table: its data plus the inferred/declared schema.

    ``columnar`` is True when the table's bag carries its column-wise
    twin (built at registration for large tables); ``wire_payload``
    lazily builds — and caches, so every snapshot shares it — the
    picklable form workers rebuild the table from.
    """

    __slots__ = ("name", "rows", "columns", "columnar", "_wire")

    def __init__(self, name: str, rows: Bag, columns: Sequence[str]):
        self.name = name
        self.rows = rows
        self.columns = tuple(columns)
        self.columnar = cached_columnar(rows) is not None
        self._wire: Optional[Dict[str, Any]] = None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rows": len(self.rows.items),
            "columns": list(self.columns),
            "columnar": self.columnar,
        }

    def wire_payload(self) -> Dict[str, Any]:
        """The table as JSON-wire data for worker snapshots, cached.

        Columnar tables whose columns have no missing positions ship
        column-oriented (``{"columns": {...}, "count": n}``) — one
        encode per registration, shared by reference across every
        snapshot since the payload is never mutated.  Everything else
        ships the classic row list.  :func:`rows_from_wire` inverts
        both forms.
        """
        payload = self._wire
        if payload is not None:
            return payload
        columnar = cached_columnar(self.rows)
        if columnar is not None and not any(
            columnar.has_missing(field) for field in columnar.fields()
        ):
            payload = {
                "columns": {
                    field: [
                        json_io.to_jsonable(value)
                        for value in columnar.column(field)
                    ]
                    for field in columnar.fields()
                },
                "count": len(columnar),
                "schema": list(self.columns),
            }
        else:
            payload = {
                "rows": json_io.to_jsonable(self.rows),
                "schema": list(self.columns),
            }
        self._wire = payload
        return payload


def rows_from_wire(payload: Dict[str, Any]) -> Bag:
    """Rebuild a table bag from a :meth:`TableInfo.wire_payload` dict.

    The column-oriented form rebuilds a :class:`ColumnarBag` first and
    returns its row bag — which keeps the back-link, so the receiving
    catalog registers a table that is *already* columnar.
    """
    if "columns" in payload:
        columns = {
            name: [json_io.from_jsonable(value) for value in column]
            for name, column in payload["columns"].items()
        }
        return ColumnarBag.from_columns(columns, int(payload["count"])).to_bag()
    return Bag(
        row if isinstance(row, Record) else json_io.from_jsonable(row)
        for row in payload["rows"]
    )


def _coerce_rows(name: str, rows: Any) -> Bag:
    """Accept a Bag, an iterable of rows, or JSON-decoded data.

    Plain Python rows are read as the JSON wire format, so tagged values
    (``{"$date": "YYYY-MM-DD"}``) decode to their foreign types.
    """
    if isinstance(rows, Bag):
        return rows
    if isinstance(rows, (list, tuple)):
        try:
            converted = [
                row if isinstance(row, Record) else json_io.from_jsonable(row)
                for row in rows
            ]
        except (DataError, TypeError) as exc:
            raise CatalogError("table %r: cannot convert rows: %s" % (name, exc))
        return Bag(converted)
    raise CatalogError(
        "table %r: rows must be a Bag or a list of records, got %s"
        % (name, type(rows).__name__)
    )


def _infer_columns(name: str, rows: Bag) -> List[str]:
    columns: set = set()
    for row in rows.items:
        if not isinstance(row, Record):
            raise CatalogError(
                "table %r: rows must be records, found %s" % (name, type(row).__name__)
            )
        columns.update(row.domain())
    return sorted(columns)


class Catalog:
    """Named datasets backing the service's constant environment."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableInfo] = {}
        self._constants: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- registration -----------------------------------------------------

    def register_table(
        self, name: str, rows: Any, schema: Optional[Sequence[str]] = None
    ) -> TableInfo:
        """Register (or replace) table ``name`` with ``rows``.

        ``schema`` optionally declares the column list; rows containing
        columns outside it are rejected.  Without it the schema is the
        sorted union of the rows' columns.
        """
        if not name or name.startswith("$"):
            raise CatalogError("invalid table name %r" % (name,))
        bag_rows = _coerce_rows(name, rows)
        columns = _infer_columns(name, bag_rows)
        if len(bag_rows.items) >= COLUMNAR_MIN_ROWS:
            # store large datasets columnar: the engine's fused chains
            # (and repeat queries) find the cache already on the bag
            ensure_columnar(bag_rows)
        if schema is not None:
            declared = sorted(schema)
            extra = sorted(set(columns) - set(declared))
            if extra:
                raise CatalogError(
                    "table %r: rows have columns %s outside the declared schema %s"
                    % (name, extra, declared)
                )
            columns = declared
        info = TableInfo(name, bag_rows, columns)
        with self._lock:
            self._tables[name] = info
            constants = dict(self._constants)
            constants[name] = bag_rows
            self._constants = constants
        return info

    def load_json(self, path: str) -> List[TableInfo]:
        """Register every table in a JSON file (``{"table": [rows...]}``)."""
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise CatalogError("cannot read %s: %s" % (path, exc.strerror or exc))
        return self.loads_json(text, source=path)

    def loads_json(self, text: str, source: str = "<string>") -> List[TableInfo]:
        """Register every table in a JSON string mapping names to rows."""
        try:
            value = json_io.loads(text)
        except (ValueError, DataError) as exc:
            raise CatalogError("malformed JSON in %s: %s" % (source, exc))
        if not isinstance(value, Record):
            raise CatalogError(
                "%s: expected a JSON object mapping table names to row arrays"
                % (source,)
            )
        return [self.register_table(name, value[name]) for name in value.domain()]

    def drop_table(self, name: str) -> None:
        with self._lock:
            if name not in self._tables:
                raise CatalogError("unknown table %r" % (name,))
            del self._tables[name]
            constants = dict(self._constants)
            del constants[name]
            self._constants = constants

    # -- lookup -----------------------------------------------------------

    def constants(self) -> Dict[str, Any]:
        """The current constant environment (a stable snapshot)."""
        return self._constants

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError("unknown table %r" % (name,))

    def tables(self) -> List[TableInfo]:
        with self._lock:
            return list(self._tables.values())

    def describe(self) -> List[Dict[str, Any]]:
        return [info.describe() for info in self.tables()]

    def columnar_bytes(self) -> int:
        """Approximate resident bytes of every table's columnar cache.

        Sums :meth:`~repro.data.columnar.ColumnarBag.approx_bytes` over
        the tables that carry a columnar twin — the number a worker
        heartbeat reports as ``columnar_cache_bytes``.
        """
        total = 0
        for info in self.tables():
            columnar = cached_columnar(info.rows)
            if columnar is not None:
                total += columnar.approx_bytes()
        return total

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
