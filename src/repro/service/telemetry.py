"""Per-query telemetry: what every query the service ran actually did.

The :mod:`repro.obs` metrics registry aggregates (how many executions,
latency distribution); this module keeps the *per-query* records a
production debugging session needs — did this query hit the plan cache,
how long did compile vs execute take, how big did its intermediates
get, which operators were hottest — in a bounded ring buffer, plus a
separate ring of queries that crossed a configurable slow-query
threshold.

Both rings are capped (:class:`TelemetryLog` drops the oldest record
on overflow), so a long-lived service's memory stays bounded no matter
how many queries it serves.  Records are plain data
(:meth:`QueryTelemetry.describe` is JSON-safe) so the ``telemetry``
wire op can return them directly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional


class QueryTelemetry:
    """One query's life: cache behaviour, phase timings, data volume.

    ``query_id`` is the correlation id assigned at service ingress (see
    :mod:`repro.obs.context`) — the same id appears in the query-log
    audit event, any kept trace fragment, and the analyze report for
    this execution.  ``started_at`` is the wall-clock ingress time
    (``time.time()``), stamped at construction unless supplied.  When
    tail sampling keeps this query's trace, the chrome-trace fragment
    lands on ``trace``.
    """

    __slots__ = (
        "handle",
        "language",
        "cache_hit",
        "compile_seconds",
        "execute_seconds",
        "ok",
        "error_kind",
        "rows",
        "peak_rows",
        "hot_operators",
        "join_engine",
        "analyzed",
        "slow",
        "query_id",
        "started_at",
        "worker",
        "trace",
    )

    def __init__(
        self,
        handle: str,
        language: str,
        cache_hit: bool,
        compile_seconds: float,
        execute_seconds: float,
        ok: bool,
        error_kind: Optional[str] = None,
        rows: Optional[int] = None,
        peak_rows: Optional[int] = None,
        hot_operators: Optional[List[Dict[str, Any]]] = None,
        join_engine: Optional[Dict[str, Any]] = None,
        analyzed: bool = False,
        query_id: Optional[str] = None,
        started_at: Optional[float] = None,
        worker: Optional[str] = None,
    ):
        self.handle = handle
        self.language = language
        self.cache_hit = cache_hit
        self.compile_seconds = compile_seconds
        self.execute_seconds = execute_seconds
        self.ok = ok
        self.error_kind = error_kind
        self.rows = rows
        self.peak_rows = peak_rows
        self.hot_operators = hot_operators
        self.join_engine = join_engine
        self.analyzed = analyzed
        self.slow = False
        self.query_id = query_id
        self.started_at = time.time() if started_at is None else started_at
        # The worker-process label ("w0", "w1", ...) when the execution
        # ran in a scale-out worker rather than the leader's thread pool.
        self.worker = worker
        self.trace: Optional[Dict[str, Any]] = None

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "handle": self.handle,
            "language": self.language,
            "started_at": self.started_at,
            "cache_hit": self.cache_hit,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "ok": self.ok,
        }
        if self.query_id is not None:
            out["query_id"] = self.query_id
        if self.worker is not None:
            out["worker"] = self.worker
        if self.error_kind is not None:
            out["error_kind"] = self.error_kind
        if self.rows is not None:
            out["rows"] = self.rows
        if self.analyzed:
            out["analyzed"] = True
            out["peak_rows"] = self.peak_rows
            out["hot_operators"] = self.hot_operators
            if self.join_engine is not None:
                out["join_engine"] = self.join_engine
        if self.slow:
            out["slow"] = True
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    def __repr__(self) -> str:
        return "QueryTelemetry(%s, %s, %.4fs)" % (
            self.handle,
            "ok" if self.ok else self.error_kind,
            self.execute_seconds,
        )


class TelemetryLog:
    """Bounded rings of recent and slow query records (thread-safe).

    ``slow_query_seconds=None`` disables the slow ring entirely; any
    other value marks and retains queries whose execute phase met or
    exceeded it.  Counters ``service.telemetry.recorded`` and
    ``service.slow_queries`` land in the given metrics registry.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_query_seconds: Optional[float] = None,
        metrics: Any = None,
    ):
        if capacity < 1:
            raise ValueError("telemetry capacity must be positive, got %d" % capacity)
        self.capacity = capacity
        self.slow_query_seconds = slow_query_seconds
        self._recent: deque = deque(maxlen=capacity)
        self._slow: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0
        self._metrics = metrics

    def record(self, telemetry: QueryTelemetry) -> None:
        threshold = self.slow_query_seconds
        if threshold is not None and telemetry.execute_seconds >= threshold:
            telemetry.slow = True
        with self._lock:
            self._recorded += 1
            self._recent.append(telemetry)
            if telemetry.slow:
                self._slow.append(telemetry)
        if self._metrics is not None:
            self._metrics.counter("service.telemetry.recorded").inc()
            if telemetry.slow:
                self._metrics.counter("service.slow_queries").inc()

    def recent(self, n: Optional[int] = None) -> List[QueryTelemetry]:
        with self._lock:
            records = list(self._recent)
        return records if n is None else records[-n:]

    def slow(self, n: Optional[int] = None) -> List[QueryTelemetry]:
        with self._lock:
            records = list(self._slow)
        return records if n is None else records[-n:]

    def select(
        self,
        n: Optional[int] = None,
        slow: bool = False,
        outcome: Optional[str] = None,
        handle: Optional[str] = None,
        worker: Optional[str] = None,
    ) -> List[QueryTelemetry]:
        """Filtered view of a ring: by outcome (``ok``/``error``),
        handle, or the worker process that executed the query.

        Filters apply before the ``n`` cut, so asking for the last 5
        errors returns 5 errors (if that many are retained), not
        whatever errors happen to sit in the last 5 records.
        """
        if outcome not in (None, "ok", "error"):
            raise ValueError("outcome filter must be 'ok' or 'error', got %r" % (outcome,))
        records = self.slow(None) if slow else self.recent(None)
        if outcome is not None:
            wanted = outcome == "ok"
            records = [record for record in records if record.ok is wanted]
        if handle is not None:
            records = [record for record in records if record.handle == handle]
        if worker is not None:
            records = [record for record in records if record.worker == worker]
        return records if n is None else records[-n:]

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "recorded": self._recorded,
                "capacity": self.capacity,
                "recent": len(self._recent),
                "slow": len(self._slow),
                "slow_query_seconds": self.slow_query_seconds,
            }


__all__ = ["QueryTelemetry", "TelemetryLog"]
