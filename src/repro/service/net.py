"""``repro.service.net``: the asyncio network front end.

``repro serve`` without flags is one client on stdin/stdout.  This
module is the production shape: an asyncio server speaking the *same*
JSON wire protocol over two transports —

- **HTTP** (``--http PORT``): ``POST /`` with a JSON request body gets
  the JSON response back, status-mapped from the error taxonomy
  (``overloaded`` → 503, ``timeout`` → 504, ``bad_request`` /
  ``compile_error`` / ``catalog_error`` → 400, internal → 500);
  ``GET`` serves the observability surface (``/healthz /metrics /stats
  /telemetry /slow``) through the same :func:`repro.service.http.obs_route`
  the sidecar uses, so the query port and the obs port answer
  identically.  Connections are keep-alive HTTP/1.1.
- **TCP JSON-lines** (``--tcp PORT``): the stdin protocol verbatim,
  one JSON object per line per direction, persistent connections.

Request flow per work op (``execute``/``query``)::

    ingress context (query_id)  ->  admission.try_admit()   O(1) shed
        -> worker pool acquire (deadline-bounded)
        -> round trip to a worker process (remaining budget rides along)
        -> record_remote (telemetry, rates, query log, per-worker metrics)

With ``--workers 0`` there is no pool and admitted work runs on the
leader's own thread-pool executor instead; everything else (admission,
shedding, drain) is identical.  Control ops (``register``/``load``/
``prepare``/``close``) apply to the leader first and then broadcast to
every worker under a lock, with ``prepare`` forcing the leader's handle
name so every worker's handle space mirrors the leader's.

Graceful drain (SIGTERM, SIGINT, or the ``shutdown`` op): stop
admitting (new work is shed with the structured ``overloaded`` error),
close the listeners, wait for in-flight requests up to
``drain_timeout``, stop the workers, then run
:meth:`~repro.service.service.QueryService.drain` — the same path the
stdin loop uses — so the query log gets its final ``shutdown`` audit
event and the obs sidecar stops.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.obs.context import QueryContext, query_context
from repro.service.admission import AdmissionController
from repro.service.errors import ServiceError
from repro.service.http import obs_route
from repro.service.worker import WorkerCrashed, WorkerPool

_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Ops that consume an execution slot and may be shed under load.
WORK_OPS = frozenset(("execute", "query"))

#: Ops that mutate leader state and must be broadcast to every worker.
CONTROL_BROADCAST_OPS = frozenset(("register", "load", "prepare", "close"))

#: Error kind → HTTP status for POST responses.
_STATUS_BY_KIND = {
    "bad_request": 400,
    "compile_error": 400,
    "catalog_error": 400,
    "overloaded": 503,
    "timeout": 504,
}

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _error_response(kind: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": {"kind": kind, "message": message}}


class ServeNetServer:
    """The asyncio front end over one :class:`QueryService` (+ workers).

    ``pool=None`` serves in-process (admitted work runs on the service's
    thread-pool executor); otherwise work ops round-robin over the
    pool's idle workers.  Admission capacity is the execution
    parallelism (pool size, or the executor's thread count) plus
    ``queue_depth`` waiters; everything beyond that is shed in O(1)
    with the structured ``overloaded`` error *before* compilation or
    parameter binding happens.
    """

    def __init__(
        self,
        service: Any,
        pool: Optional[WorkerPool] = None,
        http_port: Optional[int] = None,
        tcp_port: Optional[int] = None,
        host: str = "127.0.0.1",
        queue_depth: int = 16,
        default_timeout: Optional[float] = 30.0,
        drain_timeout: float = 10.0,
        obs_server: Any = None,
        heartbeat_interval: float = 2.0,
    ):
        if http_port is None and tcp_port is None:
            raise ValueError("serve over the network needs --http and/or --tcp")
        self.service = service
        self.pool = pool
        self.heartbeat_interval = heartbeat_interval
        self._heartbeat_task: Optional[Any] = None
        if pool is not None:
            # Fleet wiring: /workers joins the pool's liveness view with
            # the heartbeat resources, and crash/respawn supervision
            # events land in the query log under the victim's query_id.
            service.fleet.attach_pool(pool.describe, pool.pending)
            if pool.on_event is None:
                pool.on_event = self._worker_event
        self.host = host
        self.http_port = http_port
        self.tcp_port = tcp_port
        self.default_timeout = default_timeout
        self.drain_timeout = drain_timeout
        self.obs_server = obs_server
        slots = pool.count if pool is not None else service.executor.workers
        self.admission = AdmissionController(
            capacity=slots + queue_depth, metrics=service.metrics
        )
        self.served = 0
        self._loop: Optional[Any] = None
        self._http_server: Optional[Any] = None
        self._tcp_server: Optional[Any] = None
        self._connections: set = set()
        self._control_lock: Optional["asyncio.Lock"] = None
        self._shutdown_event: Optional["asyncio.Event"] = None
        self._shutdown_reason = "shutdown"
        self._shutdown_requested = False
        self._drained = False
        self._thread: Optional[threading.Thread] = None
        self._http_requests = service.metrics.counter("service.net.http_requests")
        self._tcp_requests = service.metrics.counter("service.net.tcp_requests")

    # -- request handling --------------------------------------------------

    async def handle(self, request: Any) -> Dict[str, Any]:
        """One wire request → one response dict; never raises.

        This is the network ingress: the correlation context is created
        *here* (so even a shed response carries a real ``query_id``),
        then the request is admitted, dispatched, and answered.
        """
        context = self.service.ingress_context()
        with query_context(context):
            try:
                response = await self._route(request, context)
            except ServiceError as exc:
                response = {"ok": False, "error": exc.to_payload()}
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                response = _error_response(
                    "internal_error", "%s: %s" % (type(exc).__name__, exc)
                )
        response.setdefault("query_id", context.query_id)
        return response

    async def _route(self, request: Any, context: QueryContext) -> Dict[str, Any]:
        if not isinstance(request, dict):
            return _error_response("bad_request", "request must be a JSON object")
        op = request.get("op")
        if op == "shutdown":
            served = self.served
            self.request_shutdown("shutdown_op")
            return {"ok": True, "served": served}
        if op in WORK_OPS:
            # The load-shedding fast path: O(1), before the catalog, the
            # plan cache, parameter binding, or any worker is touched.
            if not self.admission.try_admit():
                if context.tracer is not None:
                    with context.tracer.span("serve.admission", category="serve", shed=True):
                        pass
                response = _error_response("overloaded", self.admission.shed_message())
                response["shed"] = True
                return response
            try:
                response = await self._dispatch_work(request, context)
            finally:
                self.admission.release()
        elif op in CONTROL_BROADCAST_OPS and self.pool is not None:
            response = await self._dispatch_control(request, context)
        else:
            response = await self._run_local(request)
        self.served += 1
        return response

    async def _run_local(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run a request on the leader's service without blocking the loop.

        ``copy_context`` carries the request's ``QueryContext`` into the
        executor thread, so the service reuses our ``query_id`` instead
        of minting a new one.
        """
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(
            None, ctx.run, self.service.handle_request, request
        )

    async def _dispatch_work(
        self, request: Dict[str, Any], context: QueryContext
    ) -> Dict[str, Any]:
        if self.pool is None:
            return await self._run_local(request)
        op = request.get("op")
        handle = language = None
        cache_hit = False
        if op == "execute":
            handle = request.get("handle")
            if handle is None:
                return _error_response("bad_request", "request is missing field 'handle'")
            try:
                # Leader-side validation: an unknown handle must not cost
                # a worker round trip (and must fail even on a worker
                # that missed the prepare broadcast).
                prepared = self.service.prepared(handle)
            except ServiceError as exc:
                return {"ok": False, "error": exc.to_payload()}
            language, cache_hit = prepared.language, True
        else:
            if "query" not in request:
                return _error_response("bad_request", "request is missing field 'query'")
            language = request.get("language", "sql")
        timeout = request.get("timeout", self.default_timeout)
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        tracer = context.tracer
        # Leader-side spans close *before* record_remote stitches the
        # merged trace — only completed spans are in the tracer's roots.
        acquire_span = (
            tracer.span("serve.acquire", category="serve") if tracer is not None else None
        )
        try:
            if acquire_span is not None:
                acquire_span.__enter__()
            try:
                worker = await self.pool.acquire(timeout)
            finally:
                if acquire_span is not None:
                    acquire_span.__exit__(None, None, None)
        except asyncio.TimeoutError:
            return _error_response(
                "timeout",
                "deadline expired after %.3fs waiting for a worker" % timeout,
            )
        remaining = None if deadline is None else max(0.001, deadline - loop.time())
        msg = dict(request)
        msg["_query_id"] = context.query_id  # legacy field; _obs supersedes it
        msg["_obs"] = context.to_wire()
        if remaining is not None:
            # The worker's own executor enforces the remaining budget —
            # deadline propagation, not a fresh full-size timeout.
            msg["timeout"] = remaining
        dispatch_span = (
            tracer.span("serve.dispatch", category="serve", worker=worker.name)
            if tracer is not None
            else None
        )
        try:
            if dispatch_span is not None:
                dispatch_span.__enter__()
            try:
                reply = await self.pool.request(worker, msg, timeout=remaining)
            finally:
                if dispatch_span is not None:
                    dispatch_span.__exit__(None, None, None)
        except asyncio.TimeoutError:
            return _error_response(
                "timeout",
                "query exceeded its %.3fs deadline on worker %s" % (timeout, worker.name),
            )
        except WorkerCrashed:
            crashed = _error_response(
                "runtime_error",
                "worker %s crashed mid-query; it was restarted" % worker.name,
            )
            # Satellite of the crash audit trail: the client's error and
            # the query-log event both carry the in-flight query_id.
            crashed["query_id"] = context.query_id
            return crashed
        if not isinstance(reply, dict):  # pragma: no cover - defensive
            return _error_response("internal_error", "worker sent a non-dict reply")
        worker_name = reply.pop("_worker", worker.name)
        obs = reply.pop("_obs", None)
        self.service.record_remote(
            context,
            reply,
            handle=handle if handle is not None else reply.get("handle"),
            language=language,
            cache_hit=cache_hit,
            worker=worker_name,
            obs=obs,
        )
        return reply

    async def _dispatch_control(
        self, request: Dict[str, Any], context: QueryContext
    ) -> Dict[str, Any]:
        """Leader-first, then broadcast: every worker sees control ops in
        the same order (the lock serializes; per-worker pipes are FIFO).

        A worker that crashes around a broadcast is not retried — its
        replacement warms up from a snapshot taken *after* the leader
        applied the change, which already includes it.
        """
        assert self._control_lock is not None
        async with self._control_lock:
            response = await self._run_local(request)
            if response.get("ok"):
                msg = dict(request)
                msg["_query_id"] = context.query_id
                if request.get("op") == "prepare":
                    # Force the leader's handle name in every worker.
                    msg["_handle"] = response.get("handle")
                await self.pool.broadcast(msg)
            return response

    # -- fleet supervision -------------------------------------------------

    def _worker_event(self, event: Dict[str, Any]) -> None:
        """Pool supervision hook (runs on a worker IO thread).

        ``worker_crash`` events carry the in-flight ``query_id`` when a
        query was on the pipe, so the audit trail ties the restart to
        the request the client saw fail.
        """
        kind = event.get("event", "worker_event")
        self.service.metrics.counter("service.worker.events.%s" % kind).inc()
        if self.service.query_log is not None:
            try:
                self.service.query_log.emit(dict(event))
            except ValueError:
                pass  # the log closed mid-drain

    async def _heartbeat_loop(self) -> None:
        """Poll every worker for resource gauges on a fixed cadence.

        Heartbeats ride the same per-worker FIFO pipes as queries, so a
        busy worker answers after its current query — the gauges are
        eventually fresh, never racing a query on the pipe.  Each reply
        also carries any metrics delta accrued since the last ship, so
        idle-period activity (e.g. broadcasts) reaches /metrics too.
        """
        assert self.pool is not None
        while not self._shutdown_requested:
            try:
                replies = await self.pool.broadcast(
                    {"op": "_heartbeat"}, timeout=max(5.0, self.heartbeat_interval * 4)
                )
            except (asyncio.TimeoutError, RuntimeError):
                replies = []
            for reply in replies:
                if not isinstance(reply, dict):
                    continue
                worker = reply.get("_worker")
                obs = reply.get("_obs")
                if worker is None or not isinstance(obs, dict):
                    continue
                self.service.fleet.set_resources(worker, obs.get("resources"))
                self.service.fleet.apply_delta(worker, obs.get("metrics"))
            try:
                await asyncio.sleep(self.heartbeat_interval)
            except asyncio.CancelledError:
                return

    @staticmethod
    def status_for(response: Dict[str, Any]) -> int:
        if response.get("ok"):
            return 200
        kind = (response.get("error") or {}).get("kind")
        return _STATUS_BY_KIND.get(kind, 500)

    # -- HTTP transport ----------------------------------------------------

    async def _serve_http(self, reader: Any, writer: Any) -> None:
        self._connections.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._write_http(
                        writer,
                        400,
                        _JSON_CONTENT_TYPE,
                        json.dumps(_error_response("bad_request", "malformed request line"))
                        + "\n",
                        keep_alive=False,
                    )
                    break
                method, target, version = parts[0].upper(), parts[1], parts[2]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    if b":" in line:
                        key, value = line.decode("latin-1").split(":", 1)
                        headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and version.upper() != "HTTP/1.0"
                )
                self._http_requests.inc()
                parsed = urlsplit(target)
                if method == "GET":
                    answer = obs_route(self.service, parsed.path, parsed.query)
                    if answer is None:
                        answer = (
                            404,
                            _JSON_CONTENT_TYPE,
                            json.dumps({"error": "unknown path %r" % parsed.path}) + "\n",
                        )
                    await self._write_http(writer, *answer, keep_alive=keep_alive)
                elif method == "POST":
                    try:
                        request = json.loads(body.decode("utf-8"))
                    except ValueError as exc:
                        response: Dict[str, Any] = _error_response(
                            "bad_request", "malformed JSON: %s" % exc
                        )
                    else:
                        response = await self.handle(request)
                    await self._write_http(
                        writer,
                        self.status_for(response),
                        _JSON_CONTENT_TYPE,
                        json.dumps(response) + "\n",
                        keep_alive=keep_alive,
                    )
                else:
                    await self._write_http(
                        writer,
                        405,
                        _JSON_CONTENT_TYPE,
                        json.dumps({"error": "method %s not allowed" % method}) + "\n",
                        keep_alive=False,
                    )
                    break
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass
        finally:
            self._connections.discard(writer)
            self._close_writer(writer)

    async def _write_http(
        self,
        writer: Any,
        status: int,
        content_type: str,
        body: str,
        keep_alive: bool = True,
    ) -> None:
        data = body.encode("utf-8")
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: %s\r\n\r\n"
            % (
                status,
                _HTTP_REASONS.get(status, "Status"),
                content_type,
                len(data),
                "keep-alive" if keep_alive else "close",
            )
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # -- TCP JSON-lines transport -----------------------------------------

    async def _serve_tcp(self, reader: Any, writer: Any) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                self._tcp_requests.inc()
                try:
                    request = json.loads(line.decode("utf-8"))
                except ValueError as exc:
                    response: Dict[str, Any] = _error_response(
                        "bad_request", "malformed JSON: %s" % exc
                    )
                    request = None
                else:
                    response = await self.handle(request)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            self._close_writer(writer)

    @staticmethod
    def _close_writer(writer: Any) -> None:
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - already gone
            pass

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ServeNetServer":
        """Bind listeners (port 0 → ephemeral; the attribute is updated to
        the bound port) and attach the worker pool to this loop."""
        self._loop = asyncio.get_running_loop()
        self._control_lock = asyncio.Lock()
        self._shutdown_event = asyncio.Event()
        if self._shutdown_requested:  # a signal beat start(); honor it
            self._shutdown_event.set()
        if self.pool is not None:
            self.pool.bind(self._loop)
            if self.heartbeat_interval and self.heartbeat_interval > 0:
                self._heartbeat_task = self._loop.create_task(self._heartbeat_loop())
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._serve_http, self.host, self.http_port
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        if self.tcp_port is not None:
            self._tcp_server = await asyncio.start_server(
                self._serve_tcp, self.host, self.tcp_port
            )
            self.tcp_port = self._tcp_server.sockets[0].getsockname()[1]
        return self

    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        out: Dict[str, Tuple[str, int]] = {}
        if self.http_port is not None:
            out["http"] = (self.host, self.http_port)
        if self.tcp_port is not None:
            out["tcp"] = (self.host, self.tcp_port)
        return out

    def request_shutdown(self, reason: str = "shutdown") -> None:
        """Begin graceful drain; safe from any thread or signal handler.

        Idempotent, and the *first* reason wins — a later ``stop`` must
        not relabel a drain the ``shutdown`` op already started.
        """
        if not self._shutdown_requested:
            self._shutdown_reason = reason
            self._shutdown_requested = True
        self.admission.start_drain()
        if self._loop is not None and self._shutdown_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown_event.set)
            except RuntimeError:
                pass  # the loop already exited; nothing left to wake

    async def run(self, install_signals: bool = True) -> int:
        """Serve until shutdown is requested, then drain gracefully."""
        if self._loop is None:
            await self.start()
        if install_signals:
            import signal as _signal

            for signum, name in (
                (_signal.SIGTERM, "sigterm"),
                (_signal.SIGINT, "sigint"),
            ):
                try:
                    self._loop.add_signal_handler(
                        signum, self.request_shutdown, name
                    )
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        await self._shutdown_event.wait()
        await self.drain()
        return 0

    async def drain(self) -> None:
        """The drain sequence (idempotent):

        1. stop admitting — new work ops shed as ``overloaded``;
        2. close the listeners (no new connections);
        3. wait for in-flight requests, up to ``drain_timeout``;
        4. close surviving connections;
        5. stop the worker pool;
        6. :meth:`QueryService.drain` — final ``shutdown`` audit event,
           query-log close, obs-sidecar stop.
        """
        if self._drained:
            return
        self._drained = True
        loop = asyncio.get_running_loop()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self.admission.start_drain()
        for server in (self._http_server, self._tcp_server):
            if server is not None:
                server.close()
        for server in (self._http_server, self._tcp_server):
            if server is not None:
                await server.wait_closed()
        await loop.run_in_executor(None, self.admission.wait_idle, self.drain_timeout)
        # One beat so completed handlers flush their final response bytes.
        await asyncio.sleep(0.05)
        for writer in list(self._connections):
            self._close_writer(writer)
        self._connections.clear()
        if self.pool is not None:
            await loop.run_in_executor(None, self.pool.close)
        service_drain = self.service.drain
        obs_server = self.obs_server

        def _drain_service() -> None:
            service_drain(reason=self._shutdown_reason, wait=True, obs_server=obs_server)

        await loop.run_in_executor(None, _drain_service)

    # -- background-thread harness (tests, benchmarks) ---------------------

    def start_background(self, timeout: float = 60.0) -> "ServeNetServer":
        """Run the server on a private loop in a daemon thread.

        Returns once the listeners are bound (ports resolved), so tests
        and the benchmark can connect immediately.  Pair with
        :meth:`stop_background`.
        """
        started = threading.Event()
        failure: Dict[str, BaseException] = {}

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def main() -> None:
                try:
                    await self.start()
                finally:
                    started.set()
                await self._shutdown_event.wait()
                await self.drain()

            try:
                loop.run_until_complete(main())
            except BaseException as exc:  # noqa: BLE001 - surface to caller
                failure["error"] = exc
                started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve-net", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("serve-net background thread failed to start")
        if "error" in failure:
            raise RuntimeError(
                "serve-net background thread died: %s" % failure["error"]
            )
        return self

    def stop_background(self, timeout: float = 60.0) -> None:
        self.request_shutdown("stop")
        if self._thread is not None:
            self._thread.join(timeout)


__all__ = [
    "CONTROL_BROADCAST_OPS",
    "ServeNetServer",
    "WORK_OPS",
]
