"""NRAλ → NRAe translation (paper Figure 6).

::

    J x K            = Env.x
    J d K            = d
    J ⊙l K           = ⊙JlK
    J l1 ⊡ l2 K      = Jl1K ⊡ Jl2K
    J map (f) l K    = χ⟨JfK⟩(JlK)
    J d-join (f) l K = ⋈d⟨JfK⟩(JlK)
    J l1 × l2 K      = Jl1K × Jl2K
    J filter (f) l K = σ⟨JfK⟩(JlK)
    J λx.l K         = JlK ∘e (Env ⊕ [x: In])

Lambdas become an environment extension: the argument is pushed into the
reified environment under the variable's name, and variable occurrences
read it back with ``Env.x``.  Record concatenation's right bias gives
exactly lexical shadowing.
"""

from __future__ import annotations

from repro.lambda_nra import ast as lnra
from repro.nraenv import ast as nraenv
from repro.nraenv import builders as b


def lnra_to_nraenv(expr: lnra.LnraNode) -> nraenv.NraeNode:
    """Translate an NRAλ expression to an equivalent NRAe plan.

    Correctness (tested in ``tests/translate``): for every variable
    environment ρ, ``eval_lnra(l, ρ) == eval_nraenv(JlK, record(ρ), d)``
    for any input datum ``d`` (the translated plan ignores its input
    until a lambda binds it).
    """
    if isinstance(expr, lnra.LVar):
        return b.dot(b.env(), expr.name)
    if isinstance(expr, lnra.LConst):
        return nraenv.Const(expr.value)
    if isinstance(expr, lnra.LTable):
        return nraenv.GetConstant(expr.cname)
    if isinstance(expr, lnra.LUnop):
        return nraenv.Unop(expr.op, lnra_to_nraenv(expr.arg))
    if isinstance(expr, lnra.LBinop):
        return nraenv.Binop(
            expr.op, lnra_to_nraenv(expr.left), lnra_to_nraenv(expr.right)
        )
    if isinstance(expr, lnra.LMap):
        return nraenv.Map(_lambda(expr.fn), lnra_to_nraenv(expr.arg))
    if isinstance(expr, lnra.LFilter):
        return nraenv.Select(_lambda(expr.fn), lnra_to_nraenv(expr.arg))
    if isinstance(expr, lnra.LDJoin):
        return nraenv.DepJoin(_lambda(expr.fn), lnra_to_nraenv(expr.arg))
    if isinstance(expr, lnra.LProduct):
        return nraenv.Product(
            lnra_to_nraenv(expr.left), lnra_to_nraenv(expr.right)
        )
    raise TypeError("unknown NRAλ node %r" % (expr,))


def _lambda(fn: lnra.Lambda) -> nraenv.NraeNode:
    """``Jλx.lK = JlK ∘e (Env ⊕ [x: In])``."""
    body = lnra_to_nraenv(fn.body)
    return b.appenv(body, b.concat(b.env(), b.rec_field(fn.var, b.id_())))
