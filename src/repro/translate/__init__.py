"""Translations between the compiler's intermediate languages (paper §5–§7).

Every translation is accompanied by property tests asserting the
correctness statement of the corresponding paper figure or theorem.
"""

from repro.translate.camp_to_nra import camp_to_nra
from repro.translate.camp_to_nraenv import camp_to_nraenv
from repro.translate.lambda_nra_to_nraenv import lnra_to_nraenv
from repro.translate.nraenv_to_nnrc import nra_to_nnrc, nraenv_to_nnrc
from repro.translate.nraenv_to_nra import encode_input, nraenv_to_nra

__all__ = [
    "camp_to_nra",
    "camp_to_nraenv",
    "encode_input",
    "lnra_to_nraenv",
    "nra_to_nnrc",
    "nraenv_to_nnrc",
    "nraenv_to_nra",
]
