"""CAMP → NRA direct translation (paper Figure 11, left column; from [34]).

This is the *baseline* path that Figure 9 compares against: without
environment support in the algebra, the two CAMP inputs must be encoded
in the single NRA input as a record ``[E: environment, D: datum]``, and
every construct that touches ``it`` or ``env`` pays for packing and
unpacking that record with unnests (``ρ``).  The result is the plan-size
blow-up the paper reports (e.g. p01: 417 operators via NRA vs 78 via
NRAe, before optimization).
"""

from __future__ import annotations

from repro.camp import ast as camp
from repro.data.model import Record
from repro.nraenv import ast as nraenv
from repro.nraenv import builders as b
from repro.nraenv.ast import unnest

DATA_FIELD = "D"
ENV_FIELD = "E"
_T = "T"
_T1 = "T1"
_T2 = "T2"
_E1 = "E1"
_E2 = "E2"


def _in_d() -> nraenv.NraeNode:
    return b.dot(b.id_(), DATA_FIELD)


def _in_e() -> nraenv.NraeNode:
    return b.dot(b.id_(), ENV_FIELD)


def camp_to_nra(pattern: camp.CampNode) -> nraenv.NraeNode:
    """Translate a CAMP pattern to a pure-NRA plan.

    The plan expects input ``[E: γ, D: d]`` and returns ∅ on match
    failure or ``{v}`` on success, like the NRAe translation.
    """
    if isinstance(pattern, camp.PConst):
        return b.coll(nraenv.Const(pattern.value))
    if isinstance(pattern, camp.PIt):
        return b.coll(_in_d())
    if isinstance(pattern, camp.PEnv):
        return b.coll(_in_e())
    if isinstance(pattern, camp.PGetConstant):
        return b.coll(nraenv.GetConstant(pattern.cname))
    if isinstance(pattern, camp.PUnop):
        return b.chi(nraenv.Unop(pattern.op, b.id_()), camp_to_nra(pattern.arg))
    if isinstance(pattern, camp.PBinop):
        left = b.chi(b.rec_field(_T1, b.id_()), camp_to_nra(pattern.left))
        right = b.chi(b.rec_field(_T2, b.id_()), camp_to_nra(pattern.right))
        body = nraenv.Binop(pattern.op, b.dot(b.id_(), _T1), b.dot(b.id_(), _T2))
        return b.chi(body, b.product(left, right))
    if isinstance(pattern, camp.PMap):
        # {flatten(χ⟨JpK⟩( ρ_{D/{T}}( {[E: In.E] ⊕ [T: In.D]} ) ))}
        seed = b.coll(
            b.concat(b.rec_field(ENV_FIELD, _in_e()), b.rec_field(_T, _in_d()))
        )
        return b.coll(
            b.flatten_(b.chi(camp_to_nra(pattern.body), unnest(DATA_FIELD, _T, seed)))
        )
    if isinstance(pattern, camp.PAssert):
        empty_rec = nraenv.Const(Record({}))
        return b.chi(empty_rec, b.sigma(b.id_(), camp_to_nra(pattern.body)))
    if isinstance(pattern, camp.POrElse):
        return b.default(camp_to_nra(pattern.left), camp_to_nra(pattern.right))
    if isinstance(pattern, camp.PLetIt):
        # flatten(χ⟨Jp2K⟩( ρ_{D/{T}}( {[E: In.E] ⊕ [T: Jp1K]} ) ))
        seed = b.coll(
            b.concat(
                b.rec_field(ENV_FIELD, _in_e()),
                b.rec_field(_T, camp_to_nra(pattern.defn)),
            )
        )
        return b.flatten_(
            b.chi(camp_to_nra(pattern.body), unnest(DATA_FIELD, _T, seed))
        )
    if isinstance(pattern, camp.PLetEnv):
        # flatten(χ⟨Jp2K⟩(
        #   χ⟨[E: In.E2] ⊕ [D: In.D]⟩(
        #     ρ_{E2/{T2}}( χ⟨In ⊕ [T2: In.E ⊗ In.E1]⟩(
        #       ρ_{E1/{T1}}( {In ⊕ [T1: Jp1K]} ) ) ) ) ))
        seed = b.coll(b.concat(b.id_(), b.rec_field(_T1, camp_to_nra(pattern.defn))))
        with_bindings = unnest(_E1, _T1, seed)
        merged = b.chi(
            b.concat(b.id_(), b.rec_field(_T2, b.merge(_in_e(), b.dot(b.id_(), _E1)))),
            with_bindings,
        )
        spread = unnest(_E2, _T2, merged)
        repacked = b.chi(
            b.concat(
                b.rec_field(ENV_FIELD, b.dot(b.id_(), _E2)),
                b.rec_field(DATA_FIELD, _in_d()),
            ),
            spread,
        )
        return b.flatten_(b.chi(camp_to_nra(pattern.body), repacked))
    raise TypeError("unknown CAMP node %r" % (pattern,))


def encode_input(env_value, datum):
    """Build the encoded NRA input record ``[E: γ, D: d]``."""
    return Record({ENV_FIELD: env_value, DATA_FIELD: datum})
