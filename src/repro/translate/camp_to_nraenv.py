"""CAMP → NRAe translation (paper Figure 11, right column).

The translation invariant from [34] is kept: the output of a translated
pattern is always a bag, either ∅ (recoverable match failure) or a
singleton ``{v}`` (success with value ``v``).  The two CAMP inputs map
*directly* onto the two NRAe inputs — the simplification the paper's
Section 7 is about::

    J it K  = {In}          J env K = {Env}

    J d K                 = {d}
    J ⊙p K                = χ⟨⊙In⟩(JpK)
    J p1 ⊡ p2 K           = χ⟨In.T1 ⊡ In.T2⟩(χ⟨[T1:In]⟩(Jp1K) × χ⟨[T2:In]⟩(Jp2K))
    J map p K             = { flatten(χ⟨JpK⟩(In)) }
    J assert p K          = χ⟨[]⟩(σ⟨In⟩(JpK))
    J p1 || p2 K          = Jp1K || Jp2K
    J let it = p1 in p2 K = flatten(χ⟨Jp2K⟩(Jp1K))
    J let env += p1 in p2 K
                          = flatten( χe⟨Jp2K⟩ ∘e flatten(χ⟨In ⊗ Env⟩(Jp1K)) )
"""

from __future__ import annotations

from repro.camp import ast as camp
from repro.data.model import Record
from repro.nraenv import ast as nraenv
from repro.nraenv import builders as b

_T1 = "T1"
_T2 = "T2"


def camp_to_nraenv(pattern: camp.CampNode) -> nraenv.NraeNode:
    """Translate a CAMP pattern to an NRAe plan returning ∅ or ``{v}``."""
    if isinstance(pattern, camp.PConst):
        return b.coll(nraenv.Const(pattern.value))
    if isinstance(pattern, camp.PIt):
        return b.coll(b.id_())
    if isinstance(pattern, camp.PEnv):
        return b.coll(b.env())
    if isinstance(pattern, camp.PGetConstant):
        return b.coll(nraenv.GetConstant(pattern.cname))
    if isinstance(pattern, camp.PUnop):
        return b.chi(nraenv.Unop(pattern.op, b.id_()), camp_to_nraenv(pattern.arg))
    if isinstance(pattern, camp.PBinop):
        left = b.chi(b.rec_field(_T1, b.id_()), camp_to_nraenv(pattern.left))
        right = b.chi(b.rec_field(_T2, b.id_()), camp_to_nraenv(pattern.right))
        body = nraenv.Binop(pattern.op, b.dot(b.id_(), _T1), b.dot(b.id_(), _T2))
        return b.chi(body, b.product(left, right))
    if isinstance(pattern, camp.PMap):
        return b.coll(b.flatten_(b.chi(camp_to_nraenv(pattern.body), b.id_())))
    if isinstance(pattern, camp.PAssert):
        empty_rec = nraenv.Const(Record({}))
        return b.chi(empty_rec, b.sigma(b.id_(), camp_to_nraenv(pattern.body)))
    if isinstance(pattern, camp.POrElse):
        return b.default(camp_to_nraenv(pattern.left), camp_to_nraenv(pattern.right))
    if isinstance(pattern, camp.PLetIt):
        return b.flatten_(
            b.chi(camp_to_nraenv(pattern.body), camp_to_nraenv(pattern.defn))
        )
    if isinstance(pattern, camp.PLetEnv):
        merged_envs = b.flatten_(
            b.chi(b.merge(b.id_(), b.env()), camp_to_nraenv(pattern.defn))
        )
        return b.flatten_(
            b.appenv(b.chie(camp_to_nraenv(pattern.body)), merged_envs)
        )
    raise TypeError("unknown CAMP node %r" % (pattern,))
