"""NRAe → NNRC translation (paper Figure 5).

The translation function ``JqK_{xd,xe}`` is parameterized by two
variables encoding the input value (``xd``) and the environment
(``xe``); unlike the NRA translation, no record packing is needed —
NRAe's two implicit inputs map directly onto two NNRC variables::

    J In K          = xd
    J Env K         = xe
    J q2 ∘ q1 K     = let x = Jq1K_{xd,xe} in Jq2K_{x,xe}      (x fresh)
    J q2 ∘e q1 K    = let x = Jq1K_{xd,xe} in Jq2K_{xd,x}      (x fresh)
    J χ⟨q2⟩(q1) K   = { Jq2K_{x,xe} | x ∈ Jq1K_{xd,xe} }       (x fresh)
    J χe⟨q2⟩ K      = { Jq2K_{xd,x} | x ∈ xe }                 (x fresh)
    ...
"""

from __future__ import annotations

from typing import Tuple

from repro.data import operators as ops
from repro.data.model import Bag
from repro.nnrc import ast as nnrc
from repro.nnrc.freevars import FreshNames
from repro.nraenv import ast as nraenv

#: Default variable names for the top-level input and environment.
INPUT_VAR = "d0"
ENV_VAR = "e0"


def nraenv_to_nnrc(
    plan: nraenv.NraeNode,
    input_var: str = INPUT_VAR,
    env_var: str = ENV_VAR,
) -> nnrc.NnrcNode:
    """Translate an NRAe plan to an equivalent NNRC expression.

    Correctness: ``eval_nraenv(q, γ, d) == eval_nnrc(JqK, {xd: d, xe: γ})``
    (checked by property tests).
    """
    names = FreshNames(avoid=[input_var, env_var])
    return _translate(plan, input_var, env_var, names)


def _translate(
    plan: nraenv.NraeNode, xd: str, xe: str, names: FreshNames
) -> nnrc.NnrcNode:
    if isinstance(plan, nraenv.Const):
        return nnrc.Const(plan.value)
    if isinstance(plan, nraenv.ID):
        return nnrc.Var(xd)
    if isinstance(plan, nraenv.Env):
        return nnrc.Var(xe)
    if isinstance(plan, nraenv.GetConstant):
        return nnrc.GetConstant(plan.cname)
    if isinstance(plan, nraenv.Unop):
        return nnrc.Unop(plan.op, _translate(plan.arg, xd, xe, names))
    if isinstance(plan, nraenv.Binop):
        return nnrc.Binop(
            plan.op,
            _translate(plan.left, xd, xe, names),
            _translate(plan.right, xd, xe, names),
        )
    if isinstance(plan, nraenv.App):
        fresh = names.fresh("t")
        return nnrc.Let(
            fresh,
            _translate(plan.before, xd, xe, names),
            _translate(plan.after, fresh, xe, names),
        )
    if isinstance(plan, nraenv.AppEnv):
        fresh = names.fresh("e")
        return nnrc.Let(
            fresh,
            _translate(plan.before, xd, xe, names),
            _translate(plan.after, xd, fresh, names),
        )
    if isinstance(plan, nraenv.Map):
        fresh = names.fresh("x")
        return nnrc.For(
            fresh,
            _translate(plan.input, xd, xe, names),
            _translate(plan.body, fresh, xe, names),
        )
    if isinstance(plan, nraenv.MapEnv):
        fresh = names.fresh("g")
        return nnrc.For(fresh, nnrc.Var(xe), _translate(plan.body, xd, fresh, names))
    if isinstance(plan, nraenv.Select):
        # flatten({ Jq2K ? {x} : ∅ | x ∈ Jq1K })
        fresh = names.fresh("x")
        keep = nnrc.If(
            _translate(plan.pred, fresh, xe, names),
            nnrc.Unop(ops.OpBag(), nnrc.Var(fresh)),
            nnrc.Const(Bag([])),
        )
        return nnrc.Unop(
            ops.OpFlatten(),
            nnrc.For(fresh, _translate(plan.input, xd, xe, names), keep),
        )
    if isinstance(plan, nraenv.Product):
        # flatten({ {x1 ⊕ x2 | x2 ∈ Jq2K} | x1 ∈ Jq1K })
        x1 = names.fresh("x")
        x2 = names.fresh("y")
        inner = nnrc.For(
            x2,
            _translate(plan.right, xd, xe, names),
            nnrc.Binop(ops.OpConcat(), nnrc.Var(x1), nnrc.Var(x2)),
        )
        return nnrc.Unop(
            ops.OpFlatten(),
            nnrc.For(x1, _translate(plan.left, xd, xe, names), inner),
        )
    if isinstance(plan, nraenv.DepJoin):
        # flatten({ {x1 ⊕ x2 | x2 ∈ Jq2K_{x1}} | x1 ∈ Jq1K })
        x1 = names.fresh("x")
        x2 = names.fresh("y")
        inner = nnrc.For(
            x2,
            _translate(plan.body, x1, xe, names),
            nnrc.Binop(ops.OpConcat(), nnrc.Var(x1), nnrc.Var(x2)),
        )
        return nnrc.Unop(
            ops.OpFlatten(),
            nnrc.For(x1, _translate(plan.input, xd, xe, names), inner),
        )
    if isinstance(plan, nraenv.Default):
        # let x = Jq1K in ((x = ∅) ? Jq2K : x)
        fresh = names.fresh("t")
        return nnrc.Let(
            fresh,
            _translate(plan.left, xd, xe, names),
            nnrc.If(
                nnrc.Binop(ops.OpEq(), nnrc.Var(fresh), nnrc.Const(Bag([]))),
                _translate(plan.right, xd, xe, names),
                nnrc.Var(fresh),
            ),
        )
    raise TypeError("unknown NRAe node %r" % (plan,))


def nra_to_nnrc(plan: nraenv.NraeNode, input_var: str = INPUT_VAR) -> nnrc.NnrcNode:
    """NRA → NNRC ([34]): the environment-free restriction of Figure 5.

    Translates a pure-NRA plan; used by the Figure 9 comparison path
    (CAMP → NRA → NNRC).
    """
    from repro.nraenv.ast import is_nra

    if not is_nra(plan):
        raise ValueError("nra_to_nnrc requires a pure-NRA plan")
    # The translation never consults xe on NRA nodes, so reuse Figure 5
    # with a dummy environment variable.
    names = FreshNames(avoid=[input_var, "_no_env"])
    return _translate(plan, input_var, "_no_env", names)
