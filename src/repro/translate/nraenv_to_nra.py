"""NRAe → NRA translation (paper Figure 4).

The two implicit inputs of NRAe (``In`` and ``Env``) are encoded as one
NRA input record with fields ``D`` (datum) and ``E`` (environment)::

    J In K        = In.D
    J Env K       = In.E
    J q2 ∘ q1 K   = Jq2K ∘ ([E: In.E] ⊕ [D: Jq1K])
    J q2 ∘e q1 K  = Jq2K ∘ ([E: Jq1K] ⊕ [D: In.D])
    J χ⟨q2⟩(q1) K = χ⟨Jq2K⟩( ρ_{D/{T1}}( {[E: In.E] ⊕ [T1: Jq1K]} ) )
    ...

(one figure entry, ``Jχe⟨q2⟩K``, writes ``[D : In]`` where the input
datum must be preserved; we implement ``[D : In.D]``, which is what the
correctness statement of Theorem 2 requires).

Theorem 2 states the round-trip correctness::

    γ ⊢ q @ d ⇓a d'   ⇔   ⊢ JqK @ ([E: γ] ⊕ [D: d]) ⇓n d'

and is checked empirically by the property tests.
"""

from __future__ import annotations

from repro.nraenv import ast
from repro.nraenv import builders as b
from repro.nraenv.ast import unnest

#: Field names of the Figure 4 encoding.
DATA_FIELD = "D"
ENV_FIELD = "E"
_T1 = "T1"
_T2 = "T2"


def _in_d() -> ast.NraeNode:
    return b.dot(b.id_(), DATA_FIELD)


def _in_e() -> ast.NraeNode:
    return b.dot(b.id_(), ENV_FIELD)


def _paired(env_part: ast.NraeNode, data_part: ast.NraeNode) -> ast.NraeNode:
    """``[E: env_part] ⊕ [D: data_part]``."""
    return b.concat(b.rec_field(ENV_FIELD, env_part), b.rec_field(DATA_FIELD, data_part))


def _spread(translated_input: ast.NraeNode) -> ast.NraeNode:
    """``ρ_{D/{T1}}({[E: In.E] ⊕ [T1: Jq1K]})``.

    Produces one ``[E: γ, D: dᵢ]`` record per element ``dᵢ`` of the
    translated input's bag — the per-element encoded inputs that the
    translated body consumes.
    """
    seed = b.coll(b.concat(b.rec_field(ENV_FIELD, _in_e()), b.rec_field(_T1, translated_input)))
    return unnest(DATA_FIELD, _T1, seed)


def nraenv_to_nra(plan: ast.NraeNode) -> ast.NraeNode:
    """Translate an NRAe plan to an equivalent pure-NRA plan (Figure 4)."""
    if isinstance(plan, ast.Const):
        return plan
    if isinstance(plan, ast.ID):
        return _in_d()
    if isinstance(plan, ast.Env):
        return _in_e()
    if isinstance(plan, ast.GetConstant):
        return plan
    if isinstance(plan, ast.App):
        return b.comp(
            nraenv_to_nra(plan.after), _paired(_in_e(), nraenv_to_nra(plan.before))
        )
    if isinstance(plan, ast.AppEnv):
        return b.comp(
            nraenv_to_nra(plan.after), _paired(nraenv_to_nra(plan.before), _in_d())
        )
    if isinstance(plan, ast.Unop):
        return ast.Unop(plan.op, nraenv_to_nra(plan.arg))
    if isinstance(plan, ast.Binop):
        return ast.Binop(plan.op, nraenv_to_nra(plan.left), nraenv_to_nra(plan.right))
    if isinstance(plan, ast.Map):
        return ast.Map(nraenv_to_nra(plan.body), _spread(nraenv_to_nra(plan.input)))
    if isinstance(plan, ast.Select):
        selected = ast.Select(
            nraenv_to_nra(plan.pred), _spread(nraenv_to_nra(plan.input))
        )
        return ast.Map(_in_d(), selected)
    if isinstance(plan, ast.Product):
        return ast.Product(nraenv_to_nra(plan.left), nraenv_to_nra(plan.right))
    if isinstance(plan, ast.DepJoin):
        inner = ast.Map(b.rec_field(_T2, b.id_()), nraenv_to_nra(plan.body))
        joined = ast.DepJoin(inner, _spread(nraenv_to_nra(plan.input)))
        return ast.Map(b.concat(_in_d(), b.dot(b.id_(), _T2)), joined)
    if isinstance(plan, ast.Default):
        return ast.Default(nraenv_to_nra(plan.left), nraenv_to_nra(plan.right))
    if isinstance(plan, ast.MapEnv):
        seed = b.coll(
            b.concat(b.rec_field(_T1, _in_e()), b.rec_field(DATA_FIELD, _in_d()))
        )
        return ast.Map(nraenv_to_nra(plan.body), unnest(ENV_FIELD, _T1, seed))
    raise TypeError("unknown NRAe node %r" % (plan,))


def encode_input(env_value, datum):
    """Build the encoded NRA input ``[E: γ] ⊕ [D: d]`` of Theorem 2."""
    from repro.data.model import Record

    return Record({ENV_FIELD: env_value, DATA_FIELD: datum})
