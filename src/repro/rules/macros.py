"""Rule macros: the JRules-like frontend, compiled to CAMP (paper §7).

The paper's original motivation is a query DSL for a production rule
language (JRules); Q*cert models it as "Rule", a thin macro layer over
CAMP.  A rule is a chain of clauses::

    when(binder, ...)    match one working-memory element, bind variables
    not_(pattern, ...)   require that no working-memory element matches
    global_(binder, ...) match against the whole working memory (aggregates)
    return_(expr)        produce one result per surviving binding

The working memory is the database constant ``WORLD`` (a bag).  Every
clause composes CAMP patterns whose value is a *bag of results*: ``when``
flattens per-element continuations, ``return_`` yields a singleton.

Example (a join)::

    rule = when(bind_class("c", "Client"),
           when(bind_class("o", "Order"),
           guard(eq(dot(var("o"), "client"), dot(var("c"), "id")),
           return_(record({"name": dot(var("c"), "name")})))))
    results = eval_rule(rule, world_bag)
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.camp import ast as camp
from repro.camp.eval import eval_camp
from repro.data import operators as ops
from repro.data.model import Bag, Record

#: The database constant holding the working memory.
WORLD = "WORLD"


# -- expression helpers (plain CAMP constructors with rule-ish names) --------


def var(name: str) -> camp.CampNode:
    """Read a rule variable from the environment: ``env.name``."""
    return camp.PUnop(ops.OpDot(name), camp.PEnv())


def it() -> camp.CampNode:
    return camp.PIt()


def const(value: Any) -> camp.CampNode:
    return camp.PConst(value)


def dot(pattern: camp.CampNode, field: str) -> camp.CampNode:
    return camp.PUnop(ops.OpDot(field), pattern)


def record(fields: Mapping[str, camp.CampNode]) -> camp.CampNode:
    """``[A1: p1, ..., An: pn]`` via ⊕ of one-field records."""
    items = list(fields.items())
    if not items:
        return camp.PConst(Record({}))
    pattern: camp.CampNode = camp.PUnop(ops.OpRec(items[0][0]), items[0][1])
    for name, sub in items[1:]:
        pattern = camp.PBinop(
            ops.OpConcat(), pattern, camp.PUnop(ops.OpRec(name), sub)
        )
    return pattern


def eq(left: camp.CampNode, right: camp.CampNode) -> camp.CampNode:
    return camp.PBinop(ops.OpEq(), left, right)


def lt(left: camp.CampNode, right: camp.CampNode) -> camp.CampNode:
    return camp.PBinop(ops.OpLt(), left, right)


def gt(left: camp.CampNode, right: camp.CampNode) -> camp.CampNode:
    return camp.PBinop(ops.OpGt(), left, right)


def and_(left: camp.CampNode, right: camp.CampNode) -> camp.CampNode:
    return camp.PBinop(ops.OpAnd(), left, right)


# -- binder patterns ----------------------------------------------------------


def bind(name: str) -> camp.CampNode:
    """Bind the current working-memory element to ``name``: ``[name: it]``."""
    return camp.PUnop(ops.OpRec(name), camp.PIt())


def bind_class(name: str, klass: str, klass_field: str = "klass") -> camp.CampNode:
    """Bind the element to ``name`` if its class tag matches ``klass``.

    Working-memory elements are records carrying their class under
    ``klass_field`` (the stand-in for JRules/Q*cert brands)::

        let it = it.klass_check in assert(...); [name: it]
    """
    check = camp.PAssert(
        camp.PBinop(
            ops.OpEq(),
            camp.PUnop(ops.OpDot(klass_field), camp.PIt()),
            camp.PConst(klass),
        )
    )
    # assert returns []; merge it into env (a no-op) and bind.
    return camp.PLetEnv(check, bind(name))


# -- rule clauses -------------------------------------------------------------


def when(binder: camp.CampNode, rest: camp.CampNode) -> camp.CampNode:
    """Match ``binder`` against each working-memory element.

    ``binder`` produces a record of new bindings (or fails); ``rest``
    runs once per match with the bindings unified into the environment.
    The results (bags) of all matches are flattened together.
    """
    per_element = camp.PLetEnv(binder, rest)
    return camp.PUnop(
        ops.OpFlatten(),
        camp.PLetIt(camp.PGetConstant(WORLD), camp.PMap(per_element)),
    )


def not_(pattern: camp.CampNode, rest: camp.CampNode) -> camp.CampNode:
    """Succeed only when *no* working-memory element matches ``pattern``."""
    matches = camp.PLetIt(
        camp.PGetConstant(WORLD), camp.PMap(camp.PLetEnv(pattern, camp.PConst(True)))
    )
    none_matched = camp.PLetIt(
        matches,
        camp.PAssert(
            camp.PBinop(ops.OpEq(), camp.PUnop(ops.OpCount(), camp.PIt()), camp.PConst(0))
        ),
    )
    # assert yields the empty record: unifying it into env is a no-op,
    # which makes PLetEnv a clean sequencing construct.
    return camp.PLetEnv(none_matched, rest)


def global_(binder: camp.CampNode, rest: camp.CampNode) -> camp.CampNode:
    """Match ``binder`` against the whole working memory (aggregations)."""
    bound = camp.PLetIt(camp.PGetConstant(WORLD), binder)
    return camp.PLetEnv(bound, rest)


def aggregate(
    match: camp.CampNode, agg_op: ops.UnaryOp, bind_as: str
) -> camp.CampNode:
    """A ``global_`` binder: reduce all matches of ``match`` with ``agg_op``.

    ``match`` is applied to every element of the current datum (the
    working memory under ``global_``); successes are collected and
    reduced, and the result is bound as ``bind_as``.
    """
    return camp.PUnop(
        ops.OpRec(bind_as), camp.PUnop(agg_op, camp.PMap(match))
    )


def guard(condition: camp.CampNode, rest: camp.CampNode) -> camp.CampNode:
    """Proceed only when ``condition`` holds (a filter clause)."""
    return camp.PLetEnv(camp.PAssert(condition), rest)


def return_(result: camp.CampNode) -> camp.CampNode:
    """Terminal clause: one result for the current bindings."""
    return camp.PUnop(ops.OpBag(), result)


# -- evaluation ---------------------------------------------------------------


def eval_rule(
    rule: camp.CampNode,
    world: Bag,
    env: Optional[Record] = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Bag:
    """Run a rule against a working memory; returns the bag of results."""
    merged = dict(constants or {})
    merged[WORLD] = world
    result = eval_camp(rule, world, env or Record({}), merged)
    if not isinstance(result, Bag):
        raise TypeError("a rule must produce a bag, got %r" % (result,))
    return result
