"""The rule-macro frontend (JRules stand-in), compiled to CAMP (paper §7)."""

from repro.rules.macros import (
    WORLD,
    aggregate,
    bind,
    bind_class,
    const,
    dot,
    eq,
    eval_rule,
    global_,
    guard,
    gt,
    it,
    lt,
    not_,
    record,
    return_,
    var,
    when,
)

__all__ = [
    "WORLD", "aggregate", "bind", "bind_class", "const", "dot", "eq",
    "eval_rule", "global_", "guard", "gt", "it", "lt", "not_", "record",
    "return_", "var", "when",
]
