"""qcert-py: a query compiler built around NRAe, the nested relational
algebra with combinators and environments.

A Python reproduction of "Handling Environments in a Nested Relational
Algebra with Combinators and an Implementation in a Verified Query
Compiler" (Auerbach, Hirzel, Mandel, Shinnar, Siméon — SIGMOD 2017).

The paper's primary contribution lives in :mod:`repro.nraenv` (the
algebra) and :mod:`repro.optim` (the rewrite engine and the Figure 3 /
12 / 13 rule catalogs); everything else is the surrounding compiler:
frontends (:mod:`repro.sql`, :mod:`repro.oql`, :mod:`repro.lambda_nra`,
:mod:`repro.camp` + :mod:`repro.rules`), the NNRC calculus and backends,
and the TPC-H / CAMP experiment substrates.

Quickstart::

    from repro import compile_sql, compile_to_python
    from repro.tpch import generate, QUERIES

    result = compile_sql(QUERIES["q6"])     # SQL → NRAe → opt → NNRC → opt
    query = compile_to_python(result.final)
    print(query(generate()))                # run against the mini TPC-H db
"""

from repro.compiler.pipeline import (
    compile_camp,
    compile_camp_via_nra,
    compile_lnra,
    compile_oql,
    compile_sql,
    compile_to_python,
)
from repro.data.model import Bag, Record, bag, rec
from repro.nraenv.eval import eval_nraenv
from repro.optim.defaults import optimize_nnrc, optimize_nra, optimize_nraenv

__version__ = "1.0.0"

__all__ = [
    "Bag",
    "Record",
    "bag",
    "compile_camp",
    "compile_camp_via_nra",
    "compile_lnra",
    "compile_oql",
    "compile_sql",
    "compile_to_python",
    "eval_nraenv",
    "optimize_nnrc",
    "optimize_nra",
    "optimize_nraenv",
    "rec",
]
