"""The CAMP experiment suite p01–p14 (paper Figures 8–9)."""

from repro.camp_suite.programs import SAMPLE_WORLD, CampProgram, all_programs

__all__ = ["SAMPLE_WORLD", "CampProgram", "all_programs"]
