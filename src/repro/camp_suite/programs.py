"""The CAMP experiment suite p01–p14 (paper §7, Figures 8–9).

The paper evaluates its CAMP→NRAe path on fourteen programs: "p01 is the
example given as Figure 6 in [34], p02 is an example of select, p03 is a
join, p04 and p05 are joins with negation, p06 to p08 are simple
aggregations, and p09 to p14 are joins with aggregation."  The original
texts come from JRules tests and are not printed in the paper, so this
suite reconstructs fourteen programs with the same construct mix (see
DESIGN.md, substitutions): the Figure 8/9 plan-size and depth shapes
depend on the constructs exercised, not on the business content.

Each program is a :class:`CampProgram` carrying the pattern, a sample
working memory, and the expected results (used by correctness tests to
pin the whole compilation pipeline end to end).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.camp import ast as camp
from repro.data import operators as ops
from repro.data.model import Bag, Record, bag, rec
from repro.rules import macros as m


class CampProgram:
    """A named CAMP program with its sample working memory."""

    def __init__(self, name: str, description: str, pattern: camp.CampNode, world: Bag):
        self.name = name
        self.description = description
        self.pattern = pattern
        self.world = world

    def run(self) -> Bag:
        return m.eval_rule(self.pattern, self.world)

    def __repr__(self) -> str:
        return "CampProgram(%s: %s)" % (self.name, self.description)


def _client(ident: int, name: str, status: str, rep: int) -> Record:
    return rec(klass="Client", id=ident, name=name, status=status, rep=rep)


def _marketer(ident: int, name: str) -> Record:
    return rec(klass="Marketer", id=ident, name=name)


def _order(ident: int, client: int, amount: int) -> Record:
    return rec(klass="Order", id=ident, client=client, amount=amount)


#: A mixed working memory shared by most programs.
SAMPLE_WORLD = bag(
    _client(1, "ada", "gold", 10),
    _client(2, "bob", "silver", 10),
    _client(3, "cyd", "gold", 11),
    _marketer(10, "mia"),
    _marketer(11, "noa"),
    _order(100, 1, 250),
    _order(101, 1, 40),
    _order(102, 2, 70),
    _order(103, 3, 500),
)


def _p01() -> CampProgram:
    # The [34]-Figure-6 style example: clients paired with their marketer.
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.when(
            m.bind_class("mk", "Marketer"),
            m.guard(
                m.eq(m.dot(m.var("c"), "rep"), m.dot(m.var("mk"), "id")),
                m.return_(
                    m.record(
                        {
                            "client": m.dot(m.var("c"), "name"),
                            "rep": m.dot(m.var("mk"), "name"),
                        }
                    )
                ),
            ),
        ),
    )
    return CampProgram("p01", "two-pattern rule ([34] Fig. 6 style)", pattern, SAMPLE_WORLD)


def _p02() -> CampProgram:
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.guard(
            m.eq(m.dot(m.var("c"), "status"), m.const("gold")),
            m.return_(m.dot(m.var("c"), "name")),
        ),
    )
    return CampProgram("p02", "select", pattern, SAMPLE_WORLD)


def _p03() -> CampProgram:
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.when(
            m.bind_class("o", "Order"),
            m.guard(
                m.eq(m.dot(m.var("o"), "client"), m.dot(m.var("c"), "id")),
                m.return_(
                    m.record(
                        {
                            "name": m.dot(m.var("c"), "name"),
                            "amount": m.dot(m.var("o"), "amount"),
                        }
                    )
                ),
            ),
        ),
    )
    return CampProgram("p03", "join", pattern, SAMPLE_WORLD)


def _order_of_client(client_var: str) -> camp.CampNode:
    """A pattern matching an Order of the already-bound client."""
    check_class = camp.PAssert(
        m.eq(m.dot(m.it(), "klass"), m.const("Order"))
    )
    check_fk = camp.PAssert(
        m.eq(m.dot(m.it(), "client"), m.dot(m.var(client_var), "id"))
    )
    return camp.PLetEnv(check_class, camp.PLetEnv(check_fk, m.bind("o2")))


def _p04() -> CampProgram:
    # Clients with no order at all.
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.not_(
            _order_of_client("c"),
            m.return_(m.dot(m.var("c"), "name")),
        ),
    )
    return CampProgram("p04", "join with negation", pattern, SAMPLE_WORLD)


def _p05() -> CampProgram:
    # Gold clients with no large order.
    big_order = camp.PLetEnv(
        camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
        camp.PLetEnv(
            camp.PAssert(m.eq(m.dot(m.it(), "client"), m.dot(m.var("c"), "id"))),
            camp.PLetEnv(
                camp.PAssert(m.gt(m.dot(m.it(), "amount"), m.const(100))),
                m.bind("o2"),
            ),
        ),
    )
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.guard(
            m.eq(m.dot(m.var("c"), "status"), m.const("gold")),
            m.not_(big_order, m.return_(m.dot(m.var("c"), "name"))),
        ),
    )
    return CampProgram("p05", "join with negation and guard", pattern, SAMPLE_WORLD)


def _match_order_amount() -> camp.CampNode:
    """Match an Order element, producing its amount."""
    return camp.PLetEnv(
        camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
        m.dot(m.it(), "amount"),
    )


def _p06() -> CampProgram:
    pattern = m.global_(
        m.aggregate(_match_order_amount(), ops.OpSum(), "total"),
        m.return_(m.var("total")),
    )
    return CampProgram("p06", "aggregation (sum)", pattern, SAMPLE_WORLD)


def _p07() -> CampProgram:
    pattern = m.global_(
        m.aggregate(_match_order_amount(), ops.OpCount(), "n"),
        m.return_(m.var("n")),
    )
    return CampProgram("p07", "aggregation (count)", pattern, SAMPLE_WORLD)


def _p08() -> CampProgram:
    pattern = m.global_(
        m.aggregate(_match_order_amount(), ops.OpMax(), "biggest"),
        m.return_(m.var("biggest")),
    )
    return CampProgram("p08", "aggregation (max)", pattern, SAMPLE_WORLD)


def _sum_orders_of(client_var: str, bind_as: str) -> camp.CampNode:
    """Aggregate binder: total order amount of the bound client."""
    match = camp.PLetEnv(
        camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
        camp.PLetEnv(
            camp.PAssert(
                m.eq(m.dot(m.it(), "client"), m.dot(m.var(client_var), "id"))
            ),
            m.dot(m.it(), "amount"),
        ),
    )
    return m.aggregate(match, ops.OpSum(), bind_as)


def _p09() -> CampProgram:
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.global_(
            _sum_orders_of("c", "total"),
            m.return_(
                m.record({"name": m.dot(m.var("c"), "name"), "total": m.var("total")})
            ),
        ),
    )
    return CampProgram("p09", "join with aggregation", pattern, SAMPLE_WORLD)


def _p10() -> CampProgram:
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.global_(
            _sum_orders_of("c", "total"),
            m.guard(
                m.gt(m.var("total"), m.const(100)),
                m.return_(m.dot(m.var("c"), "name")),
            ),
        ),
    )
    return CampProgram("p10", "join with aggregation and guard", pattern, SAMPLE_WORLD)


def _p11() -> CampProgram:
    count_orders = m.aggregate(
        camp.PLetEnv(
            camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
            camp.PLetEnv(
                camp.PAssert(
                    m.eq(m.dot(m.it(), "client"), m.dot(m.var("c"), "id"))
                ),
                m.it(),
            ),
        ),
        ops.OpCount(),
        "n",
    )
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.global_(
            count_orders,
            m.return_(
                m.record({"name": m.dot(m.var("c"), "name"), "orders": m.var("n")})
            ),
        ),
    )
    return CampProgram("p11", "join with count aggregation", pattern, SAMPLE_WORLD)


def _p12() -> CampProgram:
    # Marketer → client join with per-client order totals.
    pattern = m.when(
        m.bind_class("mk", "Marketer"),
        m.when(
            m.bind_class("c", "Client"),
            m.guard(
                m.eq(m.dot(m.var("c"), "rep"), m.dot(m.var("mk"), "id")),
                m.global_(
                    _sum_orders_of("c", "total"),
                    m.return_(
                        m.record(
                            {
                                "rep": m.dot(m.var("mk"), "name"),
                                "client": m.dot(m.var("c"), "name"),
                                "total": m.var("total"),
                            }
                        )
                    ),
                ),
            ),
        ),
    )
    return CampProgram("p12", "two-way join with aggregation", pattern, SAMPLE_WORLD)


def _p13() -> CampProgram:
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.global_(
            _sum_orders_of("c", "total"),
            m.global_(
                m.aggregate(_match_order_amount(), ops.OpSum(), "grand"),
                m.guard(
                    m.gt(
                        camp.PBinop(ops.OpMult(), m.var("total"), m.const(2)),
                        m.var("grand"),
                    ),
                    m.return_(m.dot(m.var("c"), "name")),
                ),
            ),
        ),
    )
    return CampProgram(
        "p13", "join with two aggregations (share of total)", pattern, SAMPLE_WORLD
    )


def _p14() -> CampProgram:
    # Negation + aggregation: gold clients, their totals, only when no
    # other client outspends them.
    bigger_spender = camp.PLetEnv(
        camp.PAssert(m.eq(m.dot(m.it(), "klass"), m.const("Order"))),
        camp.PLetEnv(
            camp.PAssert(m.gt(m.dot(m.it(), "amount"), m.var("total"))),
            m.bind("spoiler"),
        ),
    )
    pattern = m.when(
        m.bind_class("c", "Client"),
        m.guard(
            m.eq(m.dot(m.var("c"), "status"), m.const("gold")),
            m.global_(
                _sum_orders_of("c", "total"),
                m.not_(
                    bigger_spender,
                    m.return_(
                        m.record(
                            {"name": m.dot(m.var("c"), "name"), "total": m.var("total")}
                        )
                    ),
                ),
            ),
        ),
    )
    return CampProgram(
        "p14", "join with aggregation and negation", pattern, SAMPLE_WORLD
    )


_BUILDERS: List[Callable[[], CampProgram]] = [
    _p01, _p02, _p03, _p04, _p05, _p06, _p07,
    _p08, _p09, _p10, _p11, _p12, _p13, _p14,
]


def all_programs() -> Dict[str, CampProgram]:
    """The full suite, keyed by name (p01–p14)."""
    programs = [build() for build in _BUILDERS]
    return {program.name: program for program in programs}
