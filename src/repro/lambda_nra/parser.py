r"""Parser for NRAλ (paper §8: "the system includes a parser for OQL and NRAλ").

Concrete syntax (λ written ``\``)::

    expr ::= map(\x -> expr)(expr)
           | filter(\x -> expr)(expr)
           | djoin(\x -> expr)(expr)
           | product(expr, expr)
           | flatten(expr) | distinct(expr) | count(expr) | sum(expr)
           | avg(expr) | min(expr) | max(expr)
           | bag(expr, ...) | struct(a: expr, ...)
           | expr.field | expr BINOP expr | - expr | not expr
           | ( expr ) | literal | name          -- variable or $table

    e.g.  map(\p -> p.name)(filter(\p -> p.age < 30)(Persons))

Free names are parsed as table references (``LTable``) unless bound by
an enclosing lambda, mirroring how the paper's examples write ``P``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from repro.data import operators as ops
from repro.lambda_nra import ast
from repro.sql.lexer import SqlSyntaxError, TokenStream, tokenize

_AGGREGATES = {
    "count": ops.OpCount,
    "sum": ops.OpSum,
    "avg": ops.OpAvg,
    "min": ops.OpMin,
    "max": ops.OpMax,
    "flatten": ops.OpFlatten,
    "distinct": ops.OpDistinct,
}

_DEPENDENT = ("map", "filter", "djoin")


def parse_lnra(text: str) -> ast.LnraNode:
    """Parse an NRAλ expression."""
    stream = TokenStream(tokenize(text.replace("\\", " lambda ")))
    expr = _parse_expr(stream, frozenset())
    if not stream.exhausted:
        token = stream.peek()
        raise SqlSyntaxError(
            "trailing NRAλ input at position %d: %r" % (token.position, token.value)
        )
    return expr


def _parse_expr(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    return _parse_or(stream, scope)


def _parse_or(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    left = _parse_and(stream, scope)
    while stream.accept_keyword("or"):
        left = ast.LBinop(ops.OpOr(), left, _parse_and(stream, scope))
    return left


def _parse_and(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    left = _parse_not(stream, scope)
    while stream.accept_keyword("and"):
        left = ast.LBinop(ops.OpAnd(), left, _parse_not(stream, scope))
    return left


def _parse_not(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    if stream.accept_keyword("not"):
        return ast.LUnop(ops.OpNeg(), _parse_not(stream, scope))
    return _parse_comparison(stream, scope)


_COMPARISONS: Tuple[Tuple[str, type], ...] = (
    ("<=", ops.OpLe),
    (">=", ops.OpGe),
    ("<", ops.OpLt),
    (">", ops.OpGt),
    ("=", ops.OpEq),
)


def _parse_comparison(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    left = _parse_additive(stream, scope)
    for symbol, op_cls in _COMPARISONS:
        if stream.at_symbol(symbol):
            stream.next()
            return ast.LBinop(op_cls(), left, _parse_additive(stream, scope))
    if stream.accept_keyword("in"):
        return ast.LBinop(ops.OpIn(), left, _parse_additive(stream, scope))
    if stream.accept_keyword("union"):
        return ast.LBinop(ops.OpUnion(), left, _parse_additive(stream, scope))
    return left


def _parse_additive(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    left = _parse_multiplicative(stream, scope)
    while stream.at_symbol("+", "-"):
        op = stream.next().value
        op_obj = ops.OpAdd() if op == "+" else ops.OpSub()
        left = ast.LBinop(op_obj, left, _parse_multiplicative(stream, scope))
    return left


def _parse_multiplicative(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    left = _parse_unary(stream, scope)
    while stream.at_symbol("*", "/"):
        op = stream.next().value
        op_obj = ops.OpMult() if op == "*" else ops.OpDiv()
        left = ast.LBinop(op_obj, left, _parse_unary(stream, scope))
    return left


def _parse_unary(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    if stream.accept_symbol("-"):
        return ast.LUnop(ops.OpNumNeg(), _parse_unary(stream, scope))
    return _parse_postfix(stream, scope)


def _parse_postfix(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    expr = _parse_primary(stream, scope)
    while stream.accept_symbol("."):
        expr = ast.LUnop(ops.OpDot(stream.expect_ident()), expr)
    return expr


def _parse_lambda(stream: TokenStream, scope: FrozenSet[str]) -> ast.Lambda:
    stream.expect_symbol("(")
    stream.expect_keyword("lambda")
    var = stream.expect_ident()
    stream.expect_symbol("-")
    stream.expect_symbol(">")
    body = _parse_expr(stream, scope | {var})
    stream.expect_symbol(")")
    return ast.Lambda(var, body)


def _parse_primary(stream: TokenStream, scope: FrozenSet[str]) -> ast.LnraNode:
    token = stream.peek()
    if token.kind == "number":
        stream.next()
        return ast.LConst(float(token.value) if "." in token.value else int(token.value))
    if token.kind == "string":
        stream.next()
        return ast.LConst(token.value)
    if stream.accept_symbol("("):
        expr = _parse_expr(stream, scope)
        stream.expect_symbol(")")
        return expr
    if token.kind != "ident":
        raise SqlSyntaxError(
            "unexpected NRAλ token %r at position %d" % (token.value, token.position)
        )
    word = token.value
    if word == "true":
        stream.next()
        return ast.LConst(True)
    if word == "false":
        stream.next()
        return ast.LConst(False)
    if word in _DEPENDENT:
        stream.next()
        fn = _parse_lambda(stream, scope)
        stream.expect_symbol("(")
        arg = _parse_expr(stream, scope)
        stream.expect_symbol(")")
        node = {"map": ast.LMap, "filter": ast.LFilter, "djoin": ast.LDJoin}[word]
        return node(fn, arg)
    if word == "product":
        stream.next()
        stream.expect_symbol("(")
        left = _parse_expr(stream, scope)
        stream.expect_symbol(",")
        right = _parse_expr(stream, scope)
        stream.expect_symbol(")")
        return ast.LProduct(left, right)
    if word == "bag":
        stream.next()
        stream.expect_symbol("(")
        items: List[ast.LnraNode] = []
        if not stream.at_symbol(")"):
            items.append(_parse_expr(stream, scope))
            while stream.accept_symbol(","):
                items.append(_parse_expr(stream, scope))
        stream.expect_symbol(")")
        from repro.data.model import Bag

        expr: ast.LnraNode = ast.LConst(Bag([]))
        for item in items:
            singleton = ast.LUnop(ops.OpBag(), item)
            expr = (
                singleton
                if expr == ast.LConst(Bag([]))
                else ast.LBinop(ops.OpUnion(), expr, singleton)
            )
        return expr
    if word == "struct":
        stream.next()
        stream.expect_symbol("(")
        fields: List[Tuple[str, ast.LnraNode]] = []
        if not stream.at_symbol(")"):
            while True:
                name = stream.expect_ident()
                stream.expect_symbol(":")
                fields.append((name, _parse_expr(stream, scope)))
                if not stream.accept_symbol(","):
                    break
        stream.expect_symbol(")")
        from repro.data.model import Record

        expr = ast.LConst(Record({}))
        for name, sub in fields:
            expr = ast.LBinop(ops.OpConcat(), expr, ast.LUnop(ops.OpRec(name), sub))
        return expr
    if word in _AGGREGATES and stream.peek(1).kind == "symbol" and stream.peek(1).value == "(":
        stream.next()
        stream.expect_symbol("(")
        arg = _parse_expr(stream, scope)
        stream.expect_symbol(")")
        return ast.LUnop(_AGGREGATES[word](), arg)
    stream.next()
    if word in scope:
        return ast.LVar(word)
    return ast.LTable(word)
