"""Pretty-printer for NRAλ expressions."""

from __future__ import annotations

from repro.lambda_nra import ast
from repro.nraenv.pretty import _BINOP_SYMBOLS, _value


def pretty(expr: ast.LnraNode) -> str:
    if isinstance(expr, ast.LVar):
        return expr.name
    if isinstance(expr, ast.LConst):
        return _value(expr.value)
    if isinstance(expr, ast.LTable):
        return "$%s" % expr.cname
    if isinstance(expr, ast.LUnop):
        from repro.data import operators as ops

        if isinstance(expr.op, ops.OpDot):
            return "%s.%s" % (pretty(expr.arg), expr.op.field)
        return "%s(%s)" % (expr.op.name, pretty(expr.arg))
    if isinstance(expr, ast.LBinop):
        symbol = _BINOP_SYMBOLS.get(type(expr.op), expr.op.name)
        return "(%s %s %s)" % (pretty(expr.left), symbol, pretty(expr.right))
    if isinstance(expr, ast.LMap):
        return "map (%s) %s" % (_lambda(expr.fn), pretty(expr.arg))
    if isinstance(expr, ast.LFilter):
        return "filter (%s) %s" % (_lambda(expr.fn), pretty(expr.arg))
    if isinstance(expr, ast.LDJoin):
        return "d-join (%s) %s" % (_lambda(expr.fn), pretty(expr.arg))
    if isinstance(expr, ast.LProduct):
        return "(%s × %s)" % (pretty(expr.left), pretty(expr.right))
    return "<%s>" % type(expr).__name__


def _lambda(fn: ast.Lambda) -> str:
    return "λ%s.(%s)" % (fn.var, pretty(fn.body))
