"""Operational semantics of NRAλ (paper §6, "unsurprising").

Lambdas close over the lexical environment (standard scoping rules); the
dependent operators apply their lambda to each bag element.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.data import kernel
from repro.data.model import Bag, DataError, Record
from repro.lambda_nra import ast
from repro.nraenv.eval import EvalError


def eval_lnra(
    expr: ast.LnraNode,
    env: Optional[Mapping[str, Any]] = None,
    constants: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Evaluate an NRAλ expression under a variable environment."""
    return _eval(expr, dict(env or {}), constants or {})


def _eval(expr: ast.LnraNode, env: dict, constants: Mapping[str, Any]) -> Any:
    if isinstance(expr, ast.LVar):
        if expr.name not in env:
            raise EvalError("unbound NRAλ variable %r" % expr.name)
        return env[expr.name]
    if isinstance(expr, ast.LConst):
        return expr.value
    if isinstance(expr, ast.LTable):
        if expr.cname not in constants:
            raise EvalError("unknown database constant %r" % expr.cname)
        return constants[expr.cname]
    if isinstance(expr, ast.LUnop):
        try:
            return expr.op.apply(_eval(expr.arg, env, constants))
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(expr, ast.LBinop):
        left = _eval(expr.left, env, constants)
        right = _eval(expr.right, env, constants)
        try:
            return expr.op.apply(left, right)
        except DataError as exc:
            raise EvalError(str(exc)) from exc
    if isinstance(expr, ast.LMap):
        source = _bag(_eval(expr.arg, env, constants), "map")
        return Bag(
            _apply(expr.fn, item, env, constants) for item in source
        )
    if isinstance(expr, ast.LFilter):
        source = _bag(_eval(expr.arg, env, constants), "filter")
        kept = []
        for item in source:
            verdict = _apply(expr.fn, item, env, constants)
            if not isinstance(verdict, bool):
                raise EvalError("filter lambda returned non-boolean %r" % (verdict,))
            if verdict:
                kept.append(item)
        return Bag(kept)
    if isinstance(expr, ast.LDJoin):
        source = _bag(_eval(expr.arg, env, constants), "d-join")
        out = []
        for item in source:
            if not isinstance(item, Record):
                raise EvalError("d-join expects records, got %r" % (item,))
            dependent = _bag(_apply(expr.fn, item, env, constants), "d-join body")
            out.extend(_product(Bag([item]), dependent).items)
        return Bag(out)
    if isinstance(expr, ast.LProduct):
        left = _bag(_eval(expr.left, env, constants), "×")
        right = _bag(_eval(expr.right, env, constants), "×")
        return _product(left, right)
    raise EvalError("unknown NRAλ node %r" % (expr,))


def _product(left: Bag, right: Bag) -> Bag:
    # The cartesian loop is the kernel's (one executable definition).
    try:
        return kernel.product(left, right)
    except DataError as exc:
        raise EvalError(str(exc)) from exc


def _apply(fn: ast.Lambda, argument: Any, env: dict, constants: Mapping[str, Any]) -> Any:
    inner = dict(env)
    inner[fn.var] = argument
    return _eval(fn.body, inner, constants)


def _bag(value: Any, op: str) -> Bag:
    if not isinstance(value, Bag):
        raise EvalError("%s expects a bag, got %r" % (op, value))
    return value
