"""NRAλ: the nested relational algebra with explicit lambdas (paper §6)."""

from repro.lambda_nra.ast import (
    Lambda,
    LBinop,
    LConst,
    LDJoin,
    LFilter,
    LMap,
    LnraNode,
    LProduct,
    LTable,
    LUnop,
    LVar,
)
from repro.lambda_nra.eval import eval_lnra
from repro.lambda_nra.parser import parse_lnra
from repro.lambda_nra.pretty import pretty

__all__ = [
    "LBinop",
    "LConst",
    "LDJoin",
    "LFilter",
    "LMap",
    "LProduct",
    "LTable",
    "LUnop",
    "LVar",
    "Lambda",
    "LnraNode",
    "eval_lnra",
    "parse_lnra",
    "pretty",
]
