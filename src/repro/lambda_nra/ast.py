"""Abstract syntax for NRAλ, the NRA with explicit lambdas (paper §6).

::

    l ::= x | d | ⊙l | l1 ⊡ l2 | map (f) l
        | d-join (f) l | l1 × l2 | filter (f) l
    f ::= λx.l

plus ``LTable`` for named database constants.  This is the
"traditional" variable-based algebra the paper contrasts with NRAe; the
translation in :mod:`repro.translate.lambda_nra_to_nraenv` (Figure 6)
eliminates its binders.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Tuple

from repro.data.model import is_value
from repro.data.operators import BinaryOp, UnaryOp


class LnraNode:
    """Base class for NRAλ expressions."""

    __slots__ = ()

    def children(self) -> Tuple["LnraNode", ...]:
        raise NotImplementedError

    def rebuild(self, children: Tuple["LnraNode", ...]) -> "LnraNode":
        raise NotImplementedError

    def _tag(self) -> Tuple[Any, ...]:
        return (type(self).__name__,)

    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, LnraNode) else False
        return self._tag() == other._tag() and self.children() == other.children()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self._tag(), self.children()))

    def __repr__(self) -> str:
        from repro.lambda_nra.pretty import pretty

        return pretty(self)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children())

    def walk(self) -> Iterator["LnraNode"]:
        yield self
        for child in self.children():
            for node in child.walk():
                yield node


class LVar(LnraNode):
    """``x``: a variable occurrence."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def children(self) -> Tuple[LnraNode, ...]:
        return ()

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("LVar", self.name)


class LConst(LnraNode):
    """``d``: a constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        assert is_value(value), "LConst requires a data-model value: %r" % (value,)
        self.value = value

    def children(self) -> Tuple[LnraNode, ...]:
        return ()

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        from repro.data.model import canonical_key

        return ("LConst", canonical_key(self.value))


class LTable(LnraNode):
    """A named database constant (a table)."""

    __slots__ = ("cname",)

    def __init__(self, cname: str):
        self.cname = cname

    def children(self) -> Tuple[LnraNode, ...]:
        return ()

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return self

    def _tag(self) -> Tuple[Any, ...]:
        return ("LTable", self.cname)


class LUnop(LnraNode):
    """``⊙ l``."""

    __slots__ = ("op", "arg")

    def __init__(self, op: UnaryOp, arg: LnraNode):
        self.op = op
        self.arg = arg

    def children(self) -> Tuple[LnraNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return LUnop(self.op, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("LUnop", self.op)


class LBinop(LnraNode):
    """``l1 ⊡ l2``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: BinaryOp, left: LnraNode, right: LnraNode):
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[LnraNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return LBinop(self.op, *children)

    def _tag(self) -> Tuple[Any, ...]:
        return ("LBinop", self.op)


class Lambda:
    """``λx.l``: the dependent-operator argument (not itself a plan)."""

    __slots__ = ("var", "body")

    def __init__(self, var: str, body: LnraNode):
        self.var = var
        self.body = body

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Lambda):
            return NotImplemented
        return self.var == other.var and self.body == other.body

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(("Lambda", self.var, self.body))

    def __repr__(self) -> str:
        return "λ%s.(%r)" % (self.var, self.body)

    def size(self) -> int:
        return 1 + self.body.size()


class LMap(LnraNode):
    """``map (f) l``."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Lambda, arg: LnraNode):
        self.fn = fn
        self.arg = arg

    def children(self) -> Tuple[LnraNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return LMap(self.fn, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("LMap", self.fn)

    def size(self) -> int:
        return 1 + self.fn.size() + self.arg.size()


class LFilter(LnraNode):
    """``filter (f) l``."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Lambda, arg: LnraNode):
        self.fn = fn
        self.arg = arg

    def children(self) -> Tuple[LnraNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return LFilter(self.fn, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("LFilter", self.fn)

    def size(self) -> int:
        return 1 + self.fn.size() + self.arg.size()


class LDJoin(LnraNode):
    """``d-join (f) l``: dependent join with an explicit lambda."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Lambda, arg: LnraNode):
        self.fn = fn
        self.arg = arg

    def children(self) -> Tuple[LnraNode, ...]:
        return (self.arg,)

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return LDJoin(self.fn, children[0])

    def _tag(self) -> Tuple[Any, ...]:
        return ("LDJoin", self.fn)

    def size(self) -> int:
        return 1 + self.fn.size() + self.arg.size()


class LProduct(LnraNode):
    """``l1 × l2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: LnraNode, right: LnraNode):
        self.left = left
        self.right = right

    def children(self) -> Tuple[LnraNode, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Tuple[LnraNode, ...]) -> LnraNode:
        return LProduct(*children)
