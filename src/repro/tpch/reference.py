"""Straight-Python reference implementations of the executable TPC-H
queries.

The paper's authors "inspected the query results to ensure they were as
expected according to the SQL semantics" (§6); these functions mechanise
that inspection: each implements one query directly over Python dicts,
with no shared code with the compiler, and the tests assert that the
compiled pipeline (interpreted *and* code-generated) produces the same
rows.

Row order is significant where the query has ORDER BY; aggregates are
floats compared with a tolerance by the callers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping

from repro.data.foreign import DateValue
from repro.data.model import Bag, to_python


def _rows(db: Mapping[str, Bag], table: str) -> List[dict]:
    return [dict(to_python(row)) for row in db[table]]


def _date(text: str) -> DateValue:
    return DateValue.parse(text)


def _like(pattern: str, text: str) -> bool:
    from repro.data.operators import _like_match

    return _like_match(pattern, text)


def _group(rows: List[dict], key: Callable[[dict], tuple]) -> "OrderedDict":
    groups: "OrderedDict" = OrderedDict()
    for row in rows:
        groups.setdefault(key(row), []).append(row)
    return groups


def q1(db: Mapping[str, Bag]) -> List[dict]:
    cutoff = _date("1998-12-01").minus_days(90)
    rows = [r for r in _rows(db, "lineitem") if r["l_shipdate"] <= cutoff]
    out = []
    for (flag, status), group in sorted(
        _group(rows, lambda r: (r["l_returnflag"], r["l_linestatus"])).items()
    ):
        disc_price = [r["l_extendedprice"] * (1 - r["l_discount"]) for r in group]
        charge = [
            r["l_extendedprice"] * (1 - r["l_discount"]) * (1 + r["l_tax"])
            for r in group
        ]
        out.append(
            {
                "l_returnflag": flag,
                "l_linestatus": status,
                "sum_qty": sum(r["l_quantity"] for r in group),
                "sum_base_price": sum(r["l_extendedprice"] for r in group),
                "sum_disc_price": sum(disc_price),
                "sum_charge": sum(charge),
                "avg_qty": sum(r["l_quantity"] for r in group) / len(group),
                "avg_price": sum(r["l_extendedprice"] for r in group) / len(group),
                "avg_disc": sum(r["l_discount"] for r in group) / len(group),
                "count_order": len(group),
            }
        )
    return out


def q3(db: Mapping[str, Bag]) -> List[dict]:
    pivot = _date("1995-03-15")
    customers = {
        c["c_custkey"]: c
        for c in _rows(db, "customer")
        if c["c_mktsegment"] == "BUILDING"
    }
    orders = {
        o["o_orderkey"]: o
        for o in _rows(db, "orders")
        if o["o_custkey"] in customers and o["o_orderdate"] < pivot
    }
    joined = [
        (l, orders[l["l_orderkey"]])
        for l in _rows(db, "lineitem")
        if l["l_orderkey"] in orders and l["l_shipdate"] > pivot
    ]
    out = []
    groups = _group(
        [dict(l, **{"__o": o}) for l, o in joined],
        lambda r: (r["l_orderkey"], r["__o"]["o_orderdate"], r["__o"]["o_shippriority"]),
    )
    for (orderkey, orderdate, priority), group in groups.items():
        out.append(
            {
                "l_orderkey": orderkey,
                "revenue": sum(
                    r["l_extendedprice"] * (1 - r["l_discount"]) for r in group
                ),
                "o_orderdate": orderdate,
                "o_shippriority": priority,
            }
        )
    out.sort(key=lambda r: (-r["revenue"], r["o_orderdate"]))
    return out[:10]


def q4(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1993-07-01")
    end = start.plus_months(3)
    committed = {
        l["l_orderkey"]
        for l in _rows(db, "lineitem")
        if l["l_commitdate"] < l["l_receiptdate"]
    }
    rows = [
        o
        for o in _rows(db, "orders")
        if start <= o["o_orderdate"] < end and o["o_orderkey"] in committed
    ]
    out = [
        {"o_orderpriority": priority, "order_count": len(group)}
        for priority, group in sorted(
            _group(rows, lambda r: r["o_orderpriority"]).items()
        )
    ]
    return out


def q5(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1994-01-01")
    end = start.plus_years(1)
    asia_regions = {
        r["r_regionkey"] for r in _rows(db, "region") if r["r_name"] == "ASIA"
    }
    asia_nations = {
        n["n_nationkey"]: n["n_name"]
        for n in _rows(db, "nation")
        if n["n_regionkey"] in asia_regions
    }
    customers = {
        c["c_custkey"]: c["c_nationkey"]
        for c in _rows(db, "customer")
        if c["c_nationkey"] in asia_nations
    }
    orders = {
        o["o_orderkey"]: customers[o["o_custkey"]]
        for o in _rows(db, "orders")
        if o["o_custkey"] in customers and start <= o["o_orderdate"] < end
    }
    suppliers = {
        s["s_suppkey"]: s["s_nationkey"]
        for s in _rows(db, "supplier")
        if s["s_nationkey"] in asia_nations
    }
    revenue: Dict[str, float] = {}
    for l in _rows(db, "lineitem"):
        if l["l_orderkey"] not in orders or l["l_suppkey"] not in suppliers:
            continue
        # c_nationkey = s_nationkey: customer and supplier in same nation
        if orders[l["l_orderkey"]] != suppliers[l["l_suppkey"]]:
            continue
        nation = asia_nations[suppliers[l["l_suppkey"]]]
        revenue[nation] = revenue.get(nation, 0.0) + l["l_extendedprice"] * (
            1 - l["l_discount"]
        )
    out = [{"n_name": nation, "revenue": value} for nation, value in revenue.items()]
    out.sort(key=lambda r: -r["revenue"])
    return out


def q6(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1994-01-01")
    end = start.plus_years(1)
    total = sum(
        l["l_extendedprice"] * l["l_discount"]
        for l in _rows(db, "lineitem")
        if start <= l["l_shipdate"] < end
        and 0.05 <= l["l_discount"] <= 0.07
        and l["l_quantity"] < 24
    )
    return [{"revenue": total}]


def q7(db: Mapping[str, Bag]) -> List[dict]:
    lo, hi = _date("1995-01-01"), _date("1996-12-31")
    nations = {n["n_nationkey"]: n["n_name"] for n in _rows(db, "nation")}
    suppliers = {s["s_suppkey"]: nations[s["s_nationkey"]] for s in _rows(db, "supplier")}
    customers = {c["c_custkey"]: nations[c["c_nationkey"]] for c in _rows(db, "customer")}
    orders = {o["o_orderkey"]: customers[o["o_custkey"]] for o in _rows(db, "orders")}
    groups: Dict[tuple, float] = {}
    for l in _rows(db, "lineitem"):
        if not (lo <= l["l_shipdate"] <= hi):
            continue
        supp_nation = suppliers.get(l["l_suppkey"])
        cust_nation = orders.get(l["l_orderkey"])
        pair_ok = (supp_nation == "FRANCE" and cust_nation == "GERMANY") or (
            supp_nation == "GERMANY" and cust_nation == "FRANCE"
        )
        if not pair_ok:
            continue
        key = (supp_nation, cust_nation, l["l_shipdate"].year)
        groups[key] = groups.get(key, 0.0) + l["l_extendedprice"] * (1 - l["l_discount"])
    out = [
        {"supp_nation": s, "cust_nation": c, "l_year": y, "revenue": v}
        for (s, c, y), v in groups.items()
    ]
    out.sort(key=lambda r: (r["supp_nation"], r["cust_nation"], r["l_year"]))
    return out


def q8(db: Mapping[str, Bag]) -> List[dict]:
    lo, hi = _date("1995-01-01"), _date("1996-12-31")
    america = {
        r["r_regionkey"] for r in _rows(db, "region") if r["r_name"] == "AMERICA"
    }
    nations = {n["n_nationkey"]: n for n in _rows(db, "nation")}
    parts = {
        p["p_partkey"]
        for p in _rows(db, "part")
        if p["p_type"] == "ECONOMY ANODIZED STEEL"
    }
    customers = {
        c["c_custkey"]
        for c in _rows(db, "customer")
        if nations[c["c_nationkey"]]["n_regionkey"] in america
    }
    orders = {
        o["o_orderkey"]: o
        for o in _rows(db, "orders")
        if o["o_custkey"] in customers and lo <= o["o_orderdate"] <= hi
    }
    suppliers = {
        s["s_suppkey"]: nations[s["s_nationkey"]]["n_name"]
        for s in _rows(db, "supplier")
    }
    volumes: Dict[int, List[tuple]] = {}
    for l in _rows(db, "lineitem"):
        if l["l_partkey"] not in parts or l["l_orderkey"] not in orders:
            continue
        year = orders[l["l_orderkey"]]["o_orderdate"].year
        volume = l["l_extendedprice"] * (1 - l["l_discount"])
        volumes.setdefault(year, []).append((suppliers[l["l_suppkey"]], volume))
    out = []
    for year in sorted(volumes):
        entries = volumes[year]
        total = sum(v for _, v in entries)
        brazil = sum(v for nation, v in entries if nation == "BRAZIL")
        out.append({"o_year": year, "mkt_share": brazil / total})
    return out


def q9(db: Mapping[str, Bag]) -> List[dict]:
    nations = {n["n_nationkey"]: n["n_name"] for n in _rows(db, "nation")}
    suppliers = {s["s_suppkey"]: nations[s["s_nationkey"]] for s in _rows(db, "supplier")}
    parts = {p["p_partkey"] for p in _rows(db, "part") if "green" in p["p_name"]}
    supply_cost = {
        (ps["ps_partkey"], ps["ps_suppkey"]): ps["ps_supplycost"]
        for ps in _rows(db, "partsupp")
    }
    orders = {o["o_orderkey"]: o["o_orderdate"].year for o in _rows(db, "orders")}
    groups: Dict[tuple, float] = {}
    for l in _rows(db, "lineitem"):
        key = (l["l_partkey"], l["l_suppkey"])
        if l["l_partkey"] not in parts or key not in supply_cost:
            continue
        amount = l["l_extendedprice"] * (1 - l["l_discount"]) - supply_cost[key] * l[
            "l_quantity"
        ]
        group = (suppliers[l["l_suppkey"]], orders[l["l_orderkey"]])
        groups[group] = groups.get(group, 0.0) + amount
    out = [
        {"nation": nation, "o_year": year, "sum_profit": profit}
        for (nation, year), profit in groups.items()
    ]
    out.sort(key=lambda r: (r["nation"], -r["o_year"]))
    return out


def q10(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1993-10-01")
    end = start.plus_months(3)
    nations = {n["n_nationkey"]: n["n_name"] for n in _rows(db, "nation")}
    customers = {c["c_custkey"]: c for c in _rows(db, "customer")}
    orders = {
        o["o_orderkey"]: o["o_custkey"]
        for o in _rows(db, "orders")
        if start <= o["o_orderdate"] < end
    }
    revenue: Dict[int, float] = {}
    for l in _rows(db, "lineitem"):
        if l["l_returnflag"] != "R" or l["l_orderkey"] not in orders:
            continue
        custkey = orders[l["l_orderkey"]]
        revenue[custkey] = revenue.get(custkey, 0.0) + l["l_extendedprice"] * (
            1 - l["l_discount"]
        )
    out = []
    for custkey, value in revenue.items():
        c = customers[custkey]
        out.append(
            {
                "c_custkey": custkey,
                "c_name": c["c_name"],
                "revenue": value,
                "c_acctbal": c["c_acctbal"],
                "n_name": nations[c["c_nationkey"]],
                "c_address": c["c_address"],
                "c_phone": c["c_phone"],
                "c_comment": c["c_comment"],
            }
        )
    out.sort(key=lambda r: -r["revenue"])
    return out[:20]


def q20(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1994-01-01")
    end = start.plus_years(1)
    forest_parts = {
        p["p_partkey"] for p in _rows(db, "part") if p["p_name"].startswith("forest")
    }
    shipped: Dict[tuple, int] = {}
    for l in _rows(db, "lineitem"):
        if start <= l["l_shipdate"] < end:
            key = (l["l_partkey"], l["l_suppkey"])
            shipped[key] = shipped.get(key, 0) + l["l_quantity"]
    eligible_suppliers = set()
    for ps in _rows(db, "partsupp"):
        if ps["ps_partkey"] not in forest_parts:
            continue
        key = (ps["ps_partkey"], ps["ps_suppkey"])
        # our model has no NULLs: an empty subquery sum is 0
        threshold = 0.5 * shipped.get(key, 0)
        if ps["ps_availqty"] > threshold:
            eligible_suppliers.add(ps["ps_suppkey"])
    canada = {
        n["n_nationkey"] for n in _rows(db, "nation") if n["n_name"] == "CANADA"
    }
    out = [
        {"s_name": s["s_name"], "s_address": s["s_address"]}
        for s in _rows(db, "supplier")
        if s["s_suppkey"] in eligible_suppliers and s["s_nationkey"] in canada
    ]
    out.sort(key=lambda r: r["s_name"])
    return out


def q21(db: Mapping[str, Bag]) -> List[dict]:
    saudi = {
        n["n_nationkey"] for n in _rows(db, "nation") if n["n_name"] == "SAUDI ARABIA"
    }
    suppliers = {
        s["s_suppkey"]: s["s_name"]
        for s in _rows(db, "supplier")
        if s["s_nationkey"] in saudi
    }
    orders = {
        o["o_orderkey"] for o in _rows(db, "orders") if o["o_orderstatus"] == "F"
    }
    lines = _rows(db, "lineitem")
    by_order: Dict[int, List[dict]] = {}
    for l in lines:
        by_order.setdefault(l["l_orderkey"], []).append(l)
    counts: Dict[str, int] = {}
    for l1 in lines:
        if l1["l_suppkey"] not in suppliers or l1["l_orderkey"] not in orders:
            continue
        if not (l1["l_receiptdate"] > l1["l_commitdate"]):
            continue
        siblings = by_order[l1["l_orderkey"]]
        other_supplier = any(l2["l_suppkey"] != l1["l_suppkey"] for l2 in siblings)
        other_late = any(
            l3["l_suppkey"] != l1["l_suppkey"]
            and l3["l_receiptdate"] > l3["l_commitdate"]
            for l3 in siblings
        )
        if other_supplier and not other_late:
            name = suppliers[l1["l_suppkey"]]
            counts[name] = counts.get(name, 0) + 1
    out = [{"s_name": name, "numwait": count} for name, count in counts.items()]
    out.sort(key=lambda r: (-r["numwait"], r["s_name"]))
    return out[:100]


def _q11_rows(db: Mapping[str, Bag]) -> List[dict]:
    nations = {
        n["n_nationkey"] for n in _rows(db, "nation") if n["n_name"] == "GERMANY"
    }
    suppliers = {
        s["s_suppkey"] for s in _rows(db, "supplier") if s["s_nationkey"] in nations
    }
    return [ps for ps in _rows(db, "partsupp") if ps["ps_suppkey"] in suppliers]


def q11(db: Mapping[str, Bag]) -> List[dict]:
    rows = _q11_rows(db)
    threshold = sum(r["ps_supplycost"] * r["ps_availqty"] for r in rows) * 0.0001
    out = []
    for partkey, group in _group(rows, lambda r: r["ps_partkey"]).items():
        value = sum(r["ps_supplycost"] * r["ps_availqty"] for r in group)
        if value > threshold:
            out.append({"ps_partkey": partkey, "value": value})
    out.sort(key=lambda r: -r["value"])
    return out


def q12(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1994-01-01")
    end = start.plus_years(1)
    orders = {o["o_orderkey"]: o for o in _rows(db, "orders")}
    rows = [
        dict(l, **{"__o": orders[l["l_orderkey"]]})
        for l in _rows(db, "lineitem")
        if l["l_shipmode"] in ("MAIL", "SHIP")
        and l["l_commitdate"] < l["l_receiptdate"]
        and l["l_shipdate"] < l["l_commitdate"]
        and start <= l["l_receiptdate"] < end
        and l["l_orderkey"] in orders
    ]
    out = []
    for mode, group in sorted(_group(rows, lambda r: r["l_shipmode"]).items()):
        high = sum(
            1
            for r in group
            if r["__o"]["o_orderpriority"] in ("1-URGENT", "2-HIGH")
        )
        out.append(
            {
                "l_shipmode": mode,
                "high_line_count": high,
                "low_line_count": len(group) - high,
            }
        )
    return out


def q14(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1995-09-01")
    end = start.plus_months(1)
    parts = {p["p_partkey"]: p for p in _rows(db, "part")}
    rows = [
        (l, parts[l["l_partkey"]])
        for l in _rows(db, "lineitem")
        if start <= l["l_shipdate"] < end and l["l_partkey"] in parts
    ]
    promo = sum(
        l["l_extendedprice"] * (1 - l["l_discount"])
        for l, p in rows
        if p["p_type"].startswith("PROMO")
    )
    total = sum(l["l_extendedprice"] * (1 - l["l_discount"]) for l, p in rows)
    return [{"promo_revenue": 100.0 * promo / total}]


def q15(db: Mapping[str, Bag]) -> List[dict]:
    start = _date("1996-01-01")
    end = start.plus_months(3)
    rows = [
        l
        for l in _rows(db, "lineitem")
        if start <= l["l_shipdate"] < end
    ]
    revenue = {
        suppkey: sum(r["l_extendedprice"] * (1 - r["l_discount"]) for r in group)
        for suppkey, group in _group(rows, lambda r: r["l_suppkey"]).items()
    }
    if not revenue:
        return []
    best = max(revenue.values())
    out = [
        {
            "s_suppkey": s["s_suppkey"],
            "s_name": s["s_name"],
            "s_address": s["s_address"],
            "s_phone": s["s_phone"],
            "total_revenue": revenue[s["s_suppkey"]],
        }
        for s in _rows(db, "supplier")
        if s["s_suppkey"] in revenue and revenue[s["s_suppkey"]] == best
    ]
    out.sort(key=lambda r: r["s_suppkey"])
    return out


def q16(db: Mapping[str, Bag]) -> List[dict]:
    complainers = {
        s["s_suppkey"]
        for s in _rows(db, "supplier")
        if _like("%Customer%Complaints%", s["s_comment"])
    }
    parts = {
        p["p_partkey"]: p
        for p in _rows(db, "part")
        if p["p_brand"] != "Brand#45"
        and not _like("MEDIUM POLISHED%", p["p_type"])
        and p["p_size"] in (49, 14, 23, 45, 19, 3, 36, 9)
    }
    rows = [
        dict(ps, **{"__p": parts[ps["ps_partkey"]]})
        for ps in _rows(db, "partsupp")
        if ps["ps_partkey"] in parts and ps["ps_suppkey"] not in complainers
    ]
    out = []
    groups = _group(
        rows,
        lambda r: (r["__p"]["p_brand"], r["__p"]["p_type"], r["__p"]["p_size"]),
    )
    for (brand, type_name, size), group in groups.items():
        out.append(
            {
                "p_brand": brand,
                "p_type": type_name,
                "p_size": size,
                "supplier_cnt": len({r["ps_suppkey"] for r in group}),
            }
        )
    out.sort(key=lambda r: (-r["supplier_cnt"], r["p_brand"], r["p_type"], r["p_size"]))
    return out


def q17(db: Mapping[str, Bag]) -> List[dict]:
    parts = {
        p["p_partkey"]
        for p in _rows(db, "part")
        if p["p_brand"] == "Brand#23" and p["p_container"] == "MED BOX"
    }
    lines = _rows(db, "lineitem")
    by_part: Dict[int, List[dict]] = {}
    for l in lines:
        by_part.setdefault(l["l_partkey"], []).append(l)
    total = 0.0
    for l in lines:
        if l["l_partkey"] not in parts:
            continue
        same_part = by_part[l["l_partkey"]]
        threshold = 0.2 * (sum(x["l_quantity"] for x in same_part) / len(same_part))
        if l["l_quantity"] < threshold:
            total += l["l_extendedprice"]
    return [{"avg_yearly": total / 7.0}]


def q18(db: Mapping[str, Bag]) -> List[dict]:
    lines = _rows(db, "lineitem")
    qty_by_order: Dict[int, int] = {}
    for l in lines:
        qty_by_order[l["l_orderkey"]] = qty_by_order.get(l["l_orderkey"], 0) + l["l_quantity"]
    big = {key for key, qty in qty_by_order.items() if qty > 300}
    customers = {c["c_custkey"]: c for c in _rows(db, "customer")}
    orders = [
        o
        for o in _rows(db, "orders")
        if o["o_orderkey"] in big and o["o_custkey"] in customers
    ]
    out = []
    for o in orders:
        c = customers[o["o_custkey"]]
        out.append(
            {
                "c_name": c["c_name"],
                "c_custkey": c["c_custkey"],
                "o_orderkey": o["o_orderkey"],
                "o_orderdate": o["o_orderdate"],
                "o_totalprice": o["o_totalprice"],
                "total_qty": qty_by_order[o["o_orderkey"]],
            }
        )
    out.sort(key=lambda r: (-r["o_totalprice"], r["o_orderdate"]))
    return out[:100]


def q19(db: Mapping[str, Bag]) -> List[dict]:
    parts = {p["p_partkey"]: p for p in _rows(db, "part")}

    def matches(l: dict, p: dict) -> bool:
        if l["l_shipmode"] not in ("AIR", "REG AIR"):
            return False
        if l["l_shipinstruct"] != "DELIVER IN PERSON":
            return False
        branches = (
            ("Brand#12", ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 5),
            ("Brand#23", ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 10),
            ("Brand#34", ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 15),
        )
        for brand, containers, qlo, qhi, max_size in branches:
            if (
                p["p_brand"] == brand
                and p["p_container"] in containers
                and qlo <= l["l_quantity"] <= qhi
                and 1 <= p["p_size"] <= max_size
            ):
                return True
        return False

    total = sum(
        l["l_extendedprice"] * (1 - l["l_discount"])
        for l in _rows(db, "lineitem")
        if l["l_partkey"] in parts and matches(l, parts[l["l_partkey"]])
    )
    return [{"revenue": total}]


def q22(db: Mapping[str, Bag]) -> List[dict]:
    codes = ("13", "31", "23", "29", "30", "18", "17")
    customers = _rows(db, "customer")
    eligible = [
        c for c in customers if c["c_phone"][:2] in codes and c["c_acctbal"] > 0.0
    ]
    if eligible:
        avg_bal = sum(c["c_acctbal"] for c in eligible) / len(eligible)
    else:
        avg_bal = 0.0
    with_orders = {o["o_custkey"] for o in _rows(db, "orders")}
    rows = [
        {"cntrycode": c["c_phone"][:2], "c_acctbal": c["c_acctbal"]}
        for c in customers
        if c["c_phone"][:2] in codes
        and c["c_acctbal"] > avg_bal
        and c["c_custkey"] not in with_orders
    ]
    out = []
    for code, group in sorted(_group(rows, lambda r: r["cntrycode"]).items()):
        out.append(
            {
                "cntrycode": code,
                "numcust": len(group),
                "totacctbal": sum(r["c_acctbal"] for r in group),
            }
        )
    return out


#: Reference implementation per executable query name.
REFERENCES: Dict[str, Callable[[Mapping[str, Bag]], List[dict]]] = {
    "q1": q1,
    "q3": q3,
    "q4": q4,
    "q5": q5,
    "q6": q6,
    "q7": q7,
    "q8": q8,
    "q9": q9,
    "q10": q10,
    "q11": q11,
    "q12": q12,
    "q14": q14,
    "q15": q15,
    "q16": q16,
    "q17": q17,
    "q18": q18,
    "q19": q19,
    "q20": q20,
    "q21": q21,
    "q22": q22,
}
# q2's correlated min-subquery needs SQL NULL semantics when the inner
# match set is empty (paper footnote 2 excludes NULLs; so do we).
