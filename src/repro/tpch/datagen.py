"""Deterministic miniature TPC-H data generator.

A laptop-scale stand-in for dbgen (see DESIGN.md, substitutions): the
same 8-table schema, the same value distributions in miniature (regions,
nations, brands, containers, ship modes, comment keywords), driven by a
seeded PRNG so every run reproduces the same database.

Figure 7's compiler metrics need only the query texts; this data backs
the end-to-end *correctness* checks (compiled queries vs the straight-
Python reference implementations in :mod:`repro.tpch.reference`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.data.foreign import DateValue
from repro.data.model import Bag, Record
from repro.tpch import schema


class TpchScale:
    """Row counts for each table (defaults: micro scale)."""

    def __init__(
        self,
        suppliers: int = 6,
        parts: int = 12,
        customers: int = 10,
        orders: int = 32,
        max_lines_per_order: int = 4,
        partsupp_per_part: int = 2,
    ):
        self.suppliers = suppliers
        self.parts = parts
        self.customers = customers
        self.orders = orders
        self.max_lines_per_order = max_lines_per_order
        self.partsupp_per_part = partsupp_per_part


#: The default micro database (executed-query tests).
MICRO = TpchScale()
#: A slightly larger database for the benchmark sanity checks.
SMALL = TpchScale(
    suppliers=10,
    parts=40,
    customers=20,
    orders=80,
    max_lines_per_order=5,
    partsupp_per_part=3,
)

_COMMENT_WORDS = (
    "quickly", "final", "ironic", "pending", "regular", "express",
    "special", "deposits", "requests", "accounts", "packages", "Customer",
    "Complaints", "unusual",
)


def _comment(rng: random.Random) -> str:
    return " ".join(rng.choice(_COMMENT_WORDS) for _ in range(rng.randint(2, 5)))


def _money(rng: random.Random, low: float, high: float) -> float:
    return round(rng.uniform(low, high), 2)


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> DateValue:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return DateValue(year, month, day)


def generate(scale: TpchScale = MICRO, seed: int = 7) -> Dict[str, Bag]:
    """Generate the 8 TPC-H tables as a constants mapping."""
    rng = random.Random(seed)

    region_rows = [
        Record(
            {
                "r_regionkey": key,
                "r_name": name,
                "r_comment": _comment(rng),
            }
        )
        for key, name in enumerate(schema.REGIONS)
    ]

    nation_rows = [
        Record(
            {
                "n_nationkey": key,
                "n_name": name,
                "n_regionkey": region,
                "n_comment": _comment(rng),
            }
        )
        for key, (name, region) in enumerate(schema.NATIONS)
    ]

    supplier_rows = []
    # Suppliers cycle through the nations the query predicates target
    # (INDIA/ASIA for q5, FRANCE for q7, BRAZIL for q8, CANADA for q20,
    # SAUDI ARABIA for q21) so those queries have candidates at any scale.
    supplier_nations = (8, 6, 2, 3, 20, 7)
    for key in range(1, scale.suppliers + 1):
        nation = supplier_nations[(key - 1) % len(supplier_nations)]
        supplier_rows.append(
            Record(
                {
                    "s_suppkey": key,
                    "s_name": "Supplier#%09d" % key,
                    "s_address": "addr-s%d" % key,
                    "s_nationkey": nation,
                    "s_phone": "%02d-%03d-%03d-%04d"
                    % (nation + 10, rng.randint(100, 999), rng.randint(100, 999), rng.randint(1000, 9999)),
                    "s_acctbal": _money(rng, -999.99, 9999.99),
                    "s_comment": _comment(rng),
                }
            )
        )

    part_rows = []
    for key in range(1, scale.parts + 1):
        type_name = "%s %s %s" % (
            rng.choice(schema.TYPE_SYLLABLES_1),
            rng.choice(schema.TYPE_SYLLABLES_2),
            rng.choice(schema.TYPE_SYLLABLES_3),
        )
        if key % 5 == 3:
            type_name = "ECONOMY ANODIZED STEEL"  # q8's exact p_type
        if key % 5 == 0:
            name = "forest part %d" % key  # q20's p_name like 'forest%'
        elif key % 5 == 2:
            name = "part %d green metal" % key  # q9's '%green%'
        else:
            name = "part %d %s" % (key, rng.choice(_COMMENT_WORDS))
        part_rows.append(
            Record(
                {
                    "p_partkey": key,
                    "p_name": name,
                    "p_mfgr": "Manufacturer#%d" % rng.randint(1, 5),
                    "p_brand": "Brand#%d%d" % (rng.randint(1, 5), rng.randint(1, 5)),
                    "p_type": type_name,
                    # Every fourth part lands in q16's size list.
                    "p_size": 14 if key % 4 == 0 else rng.randint(1, 50),
                    "p_container": rng.choice(schema.CONTAINERS),
                    "p_retailprice": _money(rng, 900.0, 2000.0),
                    "p_comment": _comment(rng),
                }
            )
        )

    partsupp_rows = []
    for part in part_rows:
        suppliers = rng.sample(
            range(1, scale.suppliers + 1),
            min(scale.partsupp_per_part, scale.suppliers),
        )
        if part["p_partkey"] % 5 == 0 and scale.suppliers >= 4 and 4 not in suppliers:
            # forest parts always have the CANADA supplier (q20)
            suppliers[0] = 4
        for supp in suppliers:
            partsupp_rows.append(
                Record(
                    {
                        "ps_partkey": part["p_partkey"],
                        "ps_suppkey": supp,
                        "ps_availqty": rng.randint(1, 9999),
                        "ps_supplycost": _money(rng, 1.0, 1000.0),
                        "ps_comment": _comment(rng),
                    }
                )
            )

    customer_rows = []
    # Nations whose phone prefix (nationkey + 10) is in q22's code list.
    q22_nations = (3, 7, 8, 13, 19, 20, 21)
    for key in range(1, scale.customers + 1):
        nation = rng.randrange(len(schema.NATIONS))
        if key % 4 == 0:
            nation = 8  # INDIA: same-nation ASIA pairs for q5
        elif key % 4 == 1:
            nation = 7  # GERMANY: the q7 France↔Germany trade lane
        elif key % 4 == 2:
            nation = 2  # BRAZIL: q8's AMERICA region customers
        if key > (scale.customers * 3) // 4:
            # Order-less customers (see below) rotate through q22's
            # country codes with healthy balances.
            nation = q22_nations[key % len(q22_nations)]
        # Cycle the first customers through every market segment so
        # segment-filtered queries (q3) always have candidates.
        segment = schema.SEGMENTS[(key - 1) % len(schema.SEGMENTS)]
        customer_rows.append(
            Record(
                {
                    "c_custkey": key,
                    "c_name": "Customer#%09d" % key,
                    "c_address": "addr-c%d" % key,
                    "c_nationkey": nation,
                    "c_phone": "%02d-%03d-%03d-%04d"
                    % (nation + 10, rng.randint(100, 999), rng.randint(100, 999), rng.randint(1000, 9999)),
                    "c_acctbal": _money(rng, 5000.0, 9999.99)
                    if key > (scale.customers * 3) // 4
                    else _money(rng, -999.99, 9999.99),
                    "c_mktsegment": segment,
                    "c_comment": _comment(rng),
                }
            )
        )

    order_rows = []
    lineitem_rows = []
    # The last quarter of customers place no orders, so anti-join
    # queries (q22) have matches.
    ordering_customers = max(1, (scale.customers * 3) // 4)
    for key in range(1, scale.orders + 1):
        customer = rng.randint(1, ordering_customers)
        order_date = _date(rng, 1992, 1998)
        # Guarantee a steady trickle of orders inside the date windows
        # the TPC-H predicates target (dbgen's uniform-by-construction
        # coverage, in miniature): q4/q10 (1993-Q3), q14/q15 (ships in
        # late 1995 / early 1996), q3 (early 1995), q12 (receipts in
        # 1994).
        clusters = {
            1: (1993, 7, 9),
            2: (1995, 7, 8),
            3: (1995, 1, 2),
            4: (1993, 10, 12),
            5: (1995, 11, 12),
        }
        if key % 8 in clusters:
            year, lo, hi = clusters[key % 8]
            order_date = DateValue(year, rng.randint(lo, hi), rng.randint(1, 28))
        # Curated orders pin down one qualifying row for the queries
        # whose predicates are too selective for random micro data
        # (what dbgen achieves statistically at SF ≥ 1):
        #   q3  — a BUILDING customer ordering just before 1995-03-15
        #   q5  — an INDIA customer buying from the INDIA supplier in 1994
        #   q8  — an AMERICA customer buying the ECONOMY ANODIZED STEEL
        #         part from the BRAZIL supplier in 1995
        #   q12 — MAIL/SHIP lines with ship < commit < receipt in 1994
        #   q21 — a SAUDI-supplier late line on a multi-supplier F-order
        if key % 8 == 3:
            customer = 2  # segment cycle makes customer 2 BUILDING
            order_date = DateValue(1995, rng.randint(1, 2), rng.randint(1, 28))
        if key % 8 == 6:
            customer = 4  # INDIA (q5); supplier forced below
            order_date = DateValue(1994, rng.randint(2, 10), rng.randint(1, 28))
        if key % 8 == 7:
            customer = 2 if scale.customers < 6 else 6  # 6 % 4 == 2: BRAZIL
            order_date = DateValue(1995, rng.randint(3, 9), rng.randint(1, 28))
        if key % 8 == 2 and scale.customers >= 5:
            customer = 5  # GERMANY (5 % 4 == 1): the q7 trade lane
        lines = rng.randint(1, scale.max_lines_per_order)
        if key == 1:
            # One intentionally heavy order so large-quantity queries
            # (q18's > 300 total) have a hit at any scale.
            lines = max(scale.max_lines_per_order, 8)
        if key == 2:
            lines = 2  # the curated q21 order: one late line, one not
        status = rng.choice(("O", "F", "P"))
        if key == 2:
            status = "F"
        total = 0.0
        for line_number in range(1, lines + 1):
            quantity = rng.randint(40, 50) if key == 1 else rng.randint(1, 50)
            extended = _money(rng, 900.0, 100000.0)
            total += extended
            ship = order_date.plus_days(rng.randint(1, 121))
            commit = order_date.plus_days(rng.randint(30, 90))
            receipt = ship.plus_days(rng.randint(1, 30))
            partkey = rng.randint(1, scale.parts)
            suppkey = rng.randint(1, scale.suppliers)
            shipmode = rng.choice(schema.SHIP_MODES)
            returnflag = rng.choice(("R", "A", "N"))
            if key % 8 == 6:
                suppkey = 1  # the INDIA supplier (q5's same-nation pair)
            if key % 8 == 2 and line_number % 2 == 1 and scale.suppliers >= 2:
                suppkey = 2  # the FRANCE supplier (q7's other side)
            if key % 8 == 7 and scale.parts >= 3:
                partkey = 3  # part 3 is ECONOMY ANODIZED STEEL (q8)
                if line_number % 2 == 0 and scale.suppliers >= 3:
                    suppkey = 3  # the BRAZIL supplier: q8's numerator
            if key % 8 == 4:
                # q12's shape: MAIL/SHIP, ship < commit < receipt in 1994
                shipmode = ("MAIL", "SHIP")[line_number % 2]
                ship = order_date.plus_days(10)
                commit = order_date.plus_days(40)
                receipt = order_date.plus_days(80)
            if key == 2 and scale.suppliers >= 5:
                # q21: line 1 from the SAUDI supplier, late; line 2 from
                # another supplier, on time.
                if line_number == 1:
                    suppkey = 5
                    commit = order_date.plus_days(30)
                    ship = order_date.plus_days(40)
                    receipt = order_date.plus_days(50)
                else:
                    suppkey = 1
                    commit = order_date.plus_days(60)
                    ship = order_date.plus_days(10)
                    receipt = order_date.plus_days(20)
            lineitem_rows.append(
                Record(
                    {
                        "l_orderkey": key,
                        "l_partkey": partkey,
                        "l_suppkey": suppkey,
                        "l_linenumber": line_number,
                        "l_quantity": quantity,
                        "l_extendedprice": extended,
                        "l_discount": round(rng.uniform(0.0, 0.10), 2),
                        "l_tax": round(rng.uniform(0.0, 0.08), 2),
                        "l_returnflag": returnflag,
                        "l_linestatus": rng.choice(("O", "F")),
                        "l_shipdate": ship,
                        "l_commitdate": commit,
                        "l_receiptdate": receipt,
                        "l_shipinstruct": rng.choice(schema.SHIP_INSTRUCTS),
                        "l_shipmode": shipmode,
                        "l_comment": _comment(rng),
                    }
                )
            )
        order_rows.append(
            Record(
                {
                    "o_orderkey": key,
                    "o_custkey": customer,
                    "o_orderstatus": status,
                    "o_totalprice": round(total, 2),
                    "o_orderdate": order_date,
                    "o_orderpriority": rng.choice(schema.PRIORITIES),
                    "o_clerk": "Clerk#%09d" % rng.randint(1, 1000),
                    "o_shippriority": 0,
                    "o_comment": _comment(rng),
                }
            )
        )

    return {
        "region": Bag(region_rows),
        "nation": Bag(nation_rows),
        "supplier": Bag(supplier_rows),
        "part": Bag(part_rows),
        "partsupp": Bag(partsupp_rows),
        "customer": Bag(customer_rows),
        "orders": Bag(order_rows),
        "lineitem": Bag(lineitem_rows),
    }
