"""The TPC-H substrate: schema, mini generator, queries, references (§6)."""

from repro.tpch.datagen import MICRO, SMALL, TpchScale, generate
from repro.tpch.queries import EXECUTABLE, QUERIES, QUERY_NAMES
from repro.tpch.reference import REFERENCES

__all__ = [
    "EXECUTABLE", "MICRO", "QUERIES", "QUERY_NAMES", "REFERENCES",
    "SMALL", "TpchScale", "generate",
]
