"""TPC-H schema (the 8 tables), used by the data generator and docs."""

from __future__ import annotations

from typing import Dict, Tuple

#: table → (column, kind) pairs; kinds are informal ("int", "float",
#: "str", "date") and drive the reference data generator.
TABLES: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "region": (
        ("r_regionkey", "int"),
        ("r_name", "str"),
        ("r_comment", "str"),
    ),
    "nation": (
        ("n_nationkey", "int"),
        ("n_name", "str"),
        ("n_regionkey", "int"),
        ("n_comment", "str"),
    ),
    "supplier": (
        ("s_suppkey", "int"),
        ("s_name", "str"),
        ("s_address", "str"),
        ("s_nationkey", "int"),
        ("s_phone", "str"),
        ("s_acctbal", "float"),
        ("s_comment", "str"),
    ),
    "part": (
        ("p_partkey", "int"),
        ("p_name", "str"),
        ("p_mfgr", "str"),
        ("p_brand", "str"),
        ("p_type", "str"),
        ("p_size", "int"),
        ("p_container", "str"),
        ("p_retailprice", "float"),
        ("p_comment", "str"),
    ),
    "partsupp": (
        ("ps_partkey", "int"),
        ("ps_suppkey", "int"),
        ("ps_availqty", "int"),
        ("ps_supplycost", "float"),
        ("ps_comment", "str"),
    ),
    "customer": (
        ("c_custkey", "int"),
        ("c_name", "str"),
        ("c_address", "str"),
        ("c_nationkey", "int"),
        ("c_phone", "str"),
        ("c_acctbal", "float"),
        ("c_mktsegment", "str"),
        ("c_comment", "str"),
    ),
    "orders": (
        ("o_orderkey", "int"),
        ("o_custkey", "int"),
        ("o_orderstatus", "str"),
        ("o_totalprice", "float"),
        ("o_orderdate", "date"),
        ("o_orderpriority", "str"),
        ("o_clerk", "str"),
        ("o_shippriority", "int"),
        ("o_comment", "str"),
    ),
    "lineitem": (
        ("l_orderkey", "int"),
        ("l_partkey", "int"),
        ("l_suppkey", "int"),
        ("l_linenumber", "int"),
        ("l_quantity", "int"),
        ("l_extendedprice", "float"),
        ("l_discount", "float"),
        ("l_tax", "float"),
        ("l_returnflag", "str"),
        ("l_linestatus", "str"),
        ("l_shipdate", "date"),
        ("l_commitdate", "date"),
        ("l_receiptdate", "date"),
        ("l_shipinstruct", "str"),
        ("l_shipmode", "str"),
        ("l_comment", "str"),
    ),
}

def table_types():
    """The schema as data-model types: table → TBag(TRecord(...)).

    Feeds the type-directed optimizer (``repro.optim.typed_rules``).
    """
    from repro.data.types import TBag, TDate, TFloat, TNat, TRecord, TString

    kind_types = {
        "int": TNat,
        "float": TFloat,
        "str": TString,
        "date": TDate,
    }
    return {
        table: TBag(TRecord({name: kind_types[kind]() for name, kind in columns}))
        for table, columns in TABLES.items()
    }


REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCTS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
CONTAINERS = (
    "SM CASE", "SM BOX", "SM PACK", "SM PKG",
    "MED BAG", "MED BOX", "MED PKG", "MED PACK",
    "LG CASE", "LG BOX", "LG PACK", "LG PKG",
)
TYPE_SYLLABLES_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLES_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLES_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
