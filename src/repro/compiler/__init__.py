"""Compilation pipelines with per-stage timing (paper §8)."""

from repro.compiler.metrics import describe, query_depth, query_size
from repro.compiler.pipeline import (
    CompilationResult,
    compile_camp,
    compile_camp_to_nra_via_nraenv,
    compile_camp_via_nra,
    compile_lnra,
    compile_oql,
    compile_sql,
    compile_to_python,
    run_pipeline,
)

__all__ = [
    "CompilationResult",
    "compile_camp",
    "compile_camp_to_nra_via_nraenv",
    "compile_camp_via_nra",
    "compile_lnra",
    "compile_oql",
    "compile_sql",
    "compile_to_python",
    "describe",
    "query_depth",
    "query_size",
    "run_pipeline",
]
