"""Query metrics (size, depth) across all intermediate languages.

Figures 7–9 plot "query size" and "query depth" for SQL, NRAe, NRA, and
NNRC; every AST in this repository exposes ``size()``/``depth()`` with
the conventions documented on each class, and this module provides the
uniform accessors the benchmark harness uses.
"""

from __future__ import annotations

from typing import Any, Dict


def query_size(node: Any) -> int:
    """Number of AST/plan nodes."""
    return node.size()


def query_depth(node: Any) -> int:
    """Nesting depth (iterator nesting for plans, block nesting for SQL)."""
    return node.depth()


def describe(node: Any) -> Dict[str, int]:
    return {"size": query_size(node), "depth": query_depth(node)}
