"""Compilation pipelines with per-stage timing (paper §8, Figures 7c/8c).

A pipeline is a sequence of named stages; the driver records each
stage's wall-clock time and output, which is exactly the data Figures
7c and 8c plot (SQL→NRAe, NRAe→NRAe-opt, NRAe-opt→NNRC, NNRC→NNRC-opt).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.context import current_query_id
from repro.obs.trace import get_tracer
from repro.optim.defaults import optimize_nnrc, optimize_nra, optimize_nraenv
from repro.optim.engine import OptimizeResult, ProvenanceLog
from repro.translate.camp_to_nra import camp_to_nra
from repro.translate.camp_to_nraenv import camp_to_nraenv
from repro.translate.lambda_nra_to_nraenv import lnra_to_nraenv
from repro.translate.nraenv_to_nnrc import nra_to_nnrc, nraenv_to_nnrc
from repro.translate.nraenv_to_nra import nraenv_to_nra


class StageValue:
    """A stage function's return carrying extra metadata.

    ``run_pipeline`` unwraps it: ``value`` becomes the stage output (and
    the next stage's input), ``meta`` lands on :attr:`Stage.meta` — how
    optimizer stages expose their full :class:`OptimizeResult` without
    changing the plan-in/plan-out stage contract.
    """

    __slots__ = ("value", "meta")

    def __init__(self, value: Any, meta: Dict[str, Any]):
        self.value = value
        self.meta = meta


class Stage:
    """One executed pipeline stage."""

    def __init__(self, name: str, output: Any, seconds: float, meta: Optional[Dict[str, Any]] = None):
        self.name = name
        self.output = output
        self.seconds = seconds
        self.meta = meta or {}

    def __repr__(self) -> str:
        return "Stage(%s, %.4fs)" % (self.name, self.seconds)


class CompilationResult:
    """The outcome of running a pipeline: stage outputs and timings."""

    def __init__(self, source: Any, stages: List[Stage]):
        self.source = source
        self.stages = stages

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError("no stage named %r (have %s)" % (name, [s.name for s in self.stages]))

    def output(self, name: str) -> Any:
        return self.stage(name).output

    def seconds(self, name: str) -> float:
        return self.stage(name).seconds

    def optimize_result(self, name: str) -> Optional[OptimizeResult]:
        """The full :class:`OptimizeResult` of an optimizer stage."""
        return self.stage(name).meta.get("optimize_result")

    def provenance(self, name: str) -> Optional[ProvenanceLog]:
        """The rewrite provenance log of an optimizer stage (when traced)."""
        result = self.optimize_result(name)
        return result.provenance if result is not None else None

    @property
    def final(self) -> Any:
        return self.stages[-1].output

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def timings(self) -> Dict[str, float]:
        return {stage.name: stage.seconds for stage in self.stages}

    def __repr__(self) -> str:
        return "CompilationResult(%s)" % " → ".join(s.name for s in self.stages)


def run_pipeline(
    source: Any, stages: Sequence[Tuple[str, Callable[[Any], Any]]]
) -> CompilationResult:
    """Run ``stages`` in order, timing each (and tracing, when enabled)."""
    tracer = get_tracer()
    executed: List[Stage] = []
    current = source
    span_args: Dict[str, Any] = {"stages": len(stages)}
    query_id = current_query_id()
    if query_id is not None:
        span_args["query_id"] = query_id
    with tracer.span("pipeline", category="pipeline", **span_args):
        for name, fn in stages:
            with tracer.span(name, category="stage"):
                start = time.perf_counter()
                value = fn(current)
                elapsed = time.perf_counter() - start
            meta = None
            if isinstance(value, StageValue):
                meta = value.meta
                value = value.value
            executed.append(Stage(name, value, elapsed, meta))
            current = value
    return CompilationResult(source, executed)


def _opt_plan(optimizer: Callable[[Any], Any]) -> Callable[[Any], Any]:
    def run(plan: Any) -> StageValue:
        result = optimizer(plan)
        return StageValue(result.plan, {"optimize_result": result})

    return run


#: Canonical stage names (shared with the benchmarks).
TO_NRAENV = "to_nraenv"
NRAENV_OPT = "nraenv_opt"
TO_NNRC = "to_nnrc"
NNRC_OPT = "nnrc_opt"
TO_NRA = "to_nra"
NRA_OPT = "nra_opt"


def compile_camp(pattern) -> CompilationResult:
    """CAMP → NRAe → NRAe-opt → NNRC → NNRC-opt (the paper's main path)."""
    return run_pipeline(
        pattern,
        [
            (TO_NRAENV, camp_to_nraenv),
            (NRAENV_OPT, _opt_plan(optimize_nraenv)),
            (TO_NNRC, nraenv_to_nnrc),
            (NNRC_OPT, _opt_plan(optimize_nnrc)),
        ],
    )


def compile_camp_via_nra(pattern) -> CompilationResult:
    """CAMP → NRA → NRA-opt → NNRC → NNRC-opt (the Figure 9 baseline)."""
    return run_pipeline(
        pattern,
        [
            (TO_NRA, camp_to_nra),
            (NRA_OPT, _opt_plan(optimize_nra)),
            (TO_NNRC, nra_to_nnrc),
            (NNRC_OPT, _opt_plan(optimize_nnrc)),
        ],
    )


def compile_camp_to_nra_via_nraenv(pattern) -> CompilationResult:
    """CAMP → NRAe → opt → NRA → opt (Figure 9's "through NRAe" path)."""
    return run_pipeline(
        pattern,
        [
            (TO_NRAENV, camp_to_nraenv),
            (NRAENV_OPT, _opt_plan(optimize_nraenv)),
            (TO_NRA, nraenv_to_nra),
            (NRA_OPT, _opt_plan(optimize_nra)),
        ],
    )


def compile_lnra(expr) -> CompilationResult:
    """NRAλ → NRAe → NRAe-opt → NNRC → NNRC-opt.

    Accepts either an NRAλ AST or concrete syntax (a string), e.g.
    ``compile_lnra(r"map(\\p -> p.name)(Persons)")``.
    """
    stages = [
        (TO_NRAENV, lnra_to_nraenv),
        (NRAENV_OPT, _opt_plan(optimize_nraenv)),
        (TO_NNRC, nraenv_to_nnrc),
        (NNRC_OPT, _opt_plan(optimize_nnrc)),
    ]
    if isinstance(expr, str):
        from repro.lambda_nra.parser import parse_lnra

        stages = [("parse", parse_lnra)] + stages
    return run_pipeline(expr, stages)


def compile_sql(text: str) -> CompilationResult:
    """SQL text → AST → NRAe → NRAe-opt → NNRC → NNRC-opt."""
    from repro.sql.parser import parse_sql
    from repro.sql.to_nraenv import sql_to_nraenv

    return run_pipeline(
        text,
        [
            ("parse", parse_sql),
            (TO_NRAENV, sql_to_nraenv),
            (NRAENV_OPT, _opt_plan(optimize_nraenv)),
            (TO_NNRC, nraenv_to_nnrc),
            (NNRC_OPT, _opt_plan(optimize_nnrc)),
        ],
    )


def compile_oql(text: str) -> CompilationResult:
    """OQL text → AST → NRAe → NRAe-opt → NNRC → NNRC-opt."""
    from repro.oql.parser import parse_oql
    from repro.oql.to_nraenv import oql_to_nraenv

    return run_pipeline(
        text,
        [
            ("parse", parse_oql),
            (TO_NRAENV, oql_to_nraenv),
            (NRAENV_OPT, _opt_plan(optimize_nraenv)),
            (TO_NNRC, nraenv_to_nnrc),
            (NNRC_OPT, _opt_plan(optimize_nnrc)),
        ],
    )


def compile_to_python(nnrc_expr, name: str = "query"):
    """NNRC → executable Python (the paper's JS backend, in Python)."""
    from repro.backend.python_gen import compile_nnrc_to_callable

    return compile_nnrc_to_callable(nnrc_expr, name)


# -- cacheable entry points (used by the query service) ------------------------
#
# ``parse_source`` and ``compile_parsed`` split the textual pipelines at
# the parse boundary: the service parses once, fingerprints the AST for
# its plan cache (see :mod:`repro.service.plan_key`), and only pays for
# optimization + codegen on a cache miss.

#: Languages the textual pipelines accept.
LANGUAGES = ("sql", "oql", "lnra")


def parse_source(language: str, text: str) -> Any:
    """Parse query ``text`` in ``language`` to its frontend AST."""
    if language == "sql":
        from repro.sql.parser import parse_sql

        return parse_sql(text)
    if language == "oql":
        from repro.oql.parser import parse_oql

        return parse_oql(text)
    if language == "lnra":
        from repro.lambda_nra.parser import parse_lnra

        return parse_lnra(text)
    raise ValueError("unknown source language %r (have %s)" % (language, LANGUAGES))


def compile_parsed(language: str, ast: Any) -> CompilationResult:
    """Compile an already-parsed frontend AST down to optimized NNRC."""
    if language == "sql":
        from repro.sql.to_nraenv import sql_to_nraenv

        to_nraenv: Callable[[Any], Any] = sql_to_nraenv
    elif language == "oql":
        from repro.oql.to_nraenv import oql_to_nraenv

        to_nraenv = oql_to_nraenv
    elif language == "lnra":
        to_nraenv = lnra_to_nraenv
    else:
        raise ValueError("unknown source language %r (have %s)" % (language, LANGUAGES))
    return run_pipeline(
        ast,
        [
            (TO_NRAENV, to_nraenv),
            (NRAENV_OPT, _opt_plan(optimize_nraenv)),
            (TO_NNRC, nraenv_to_nnrc),
            (NNRC_OPT, _opt_plan(optimize_nnrc)),
        ],
    )


def compile_source(language: str, text: str) -> CompilationResult:
    """Parse + compile: the one-shot textual entry point for any language."""
    return compile_parsed(language, parse_source(language, text))
