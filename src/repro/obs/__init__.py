"""Observability for the compiler and the service: spans, metrics,
correlation, logging, and trace export.

The layers, all disabled by default with near-zero overhead:

- :mod:`repro.obs.context` — the request-scoped :class:`QueryContext`:
  a ``contextvars``-based current-query identity (``query_id``) that
  every span, telemetry record, log event, and analyze report for one
  service request shares, across the executor's thread hop;
- :mod:`repro.obs.trace` — hierarchical :class:`Span`/:class:`Tracer`
  (context-manager API, thread-local span stack, a true no-op
  :data:`NULL_TRACER`), plus tail-based trace sampling
  (:class:`SamplingPolicy`, keep decided at completion) and the bounded
  :class:`TraceRing` of kept fragments;
- :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry`, plus the time-bucketed :class:`RateRing`
  behind the obs endpoint's QPS/latency ``/stats``;
- :mod:`repro.obs.log` — the durable structured query log: JSON-lines
  events with size-bounded rotation and a reader API;
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, a text
  report, and Prometheus text exposition;
- :mod:`repro.obs.analyze` — EXPLAIN ANALYZE: per-plan-node runtime
  statistics (cardinalities, timings, join-engine outcomes) and the
  cost-model calibration report, as text or JSON.

The one-call entry point is :func:`observe`, which installs a fresh
tracer + registry globally *and* hooks the evaluators and the backend
runtime, then tears everything down on exit::

    from repro.obs import observe
    from repro.obs.export import write_chrome_trace

    with observe() as session:
        result = compile_sql("select a from t")
    write_chrome_trace("out.json", session.tracer, session.metrics)

Used by ``repro compile --trace/--profile``, ``repro explain``, and the
benchmark harness (``REPRO_BENCH_TRACE=1``).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.analyze import (
    AnalyzeCollector,
    NodeStats,
    analysis_summary,
    analyze_execution,
    analyze_json,
    calibration_data,
    calibration_report,
    render_analyze,
)
from repro.obs.context import (
    QueryContext,
    current_query,
    current_query_id,
    new_query_id,
    query_context,
)
from repro.obs.export import (
    chrome_trace,
    merged_chrome_events,
    prometheus_text,
    render_trace_tree,
    text_report,
    write_chrome_trace,
)
from repro.obs.log import QueryLog, iter_events, read_events
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    EvalObserver,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    RateRing,
    delta_is_empty,
    get_metrics,
    set_metrics,
    snapshot_delta,
    use_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SamplingPolicy,
    Span,
    TraceRing,
    Tracer,
    get_tracer,
    set_tracer,
    span_to_wire,
    spans_to_wire,
    use_tracer,
)

__all__ = [
    "AnalyzeCollector",
    "Counter",
    "EvalObserver",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NodeStats",
    "NullMetrics",
    "NullTracer",
    "ObsSession",
    "QueryContext",
    "QueryLog",
    "RateRing",
    "SamplingPolicy",
    "Span",
    "TraceRing",
    "Tracer",
    "analysis_summary",
    "analyze_execution",
    "analyze_json",
    "calibration_data",
    "calibration_report",
    "chrome_trace",
    "current_query",
    "current_query_id",
    "delta_is_empty",
    "get_metrics",
    "get_tracer",
    "iter_events",
    "merged_chrome_events",
    "new_query_id",
    "observe",
    "prometheus_text",
    "query_context",
    "read_events",
    "render_analyze",
    "render_trace_tree",
    "set_metrics",
    "set_tracer",
    "snapshot_delta",
    "span_to_wire",
    "spans_to_wire",
    "text_report",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
]


class ObsSession(object):
    """Handle yielded by :func:`observe`: the live tracer and registry."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry):
        self.tracer = tracer
        self.metrics = metrics

    def report(self) -> str:
        return text_report(self.tracer, self.metrics)


@contextmanager
def observe(tracer: Tracer = None, metrics: MetricsRegistry = None):
    """Turn full observability on for the duration of the block.

    Installs the tracer and metrics registry as the process globals
    (compiler pipeline and optimizer pick them up automatically) and
    registers evaluator observers on the NRAe interpreter, the NNRC
    interpreter, and the generated-code runtime library.
    """
    from repro.backend import runtime
    from repro.nnrc import eval as nnrc_eval
    from repro.nraenv import eval as nraenv_eval

    tracer = tracer or Tracer()
    metrics = metrics or MetricsRegistry()
    session = ObsSession(tracer, metrics)
    with use_tracer(tracer), use_metrics(metrics):
        nraenv_eval.set_observer(EvalObserver(metrics, "eval.nraenv"))
        nnrc_eval.set_observer(EvalObserver(metrics, "eval.nnrc"))
        runtime.install_observer(metrics)
        try:
            yield session
        finally:
            nraenv_eval.set_observer(None)
            nnrc_eval.set_observer(None)
            runtime.uninstall_observer()
