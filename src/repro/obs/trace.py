"""Hierarchical span tracing for the compiler (observability substrate).

The paper's whole evaluation (§8, Figures 7–9) is built on measuring
the compiler — per-stage compile times, optimizer behavior — and every
later performance change needs the same data to justify itself.  This
module provides the measurement primitive: a :class:`Tracer` that
records a tree of timed :class:`Span` objects (plus zero-duration
:class:`Instant` marks), with a context-manager API::

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("optimize", category="optim", rules=62):
            ...
            tracer.instant("fire", rule="map_into_id")

Spans nest via a *thread-local* span stack, so concurrent compilations
on different threads produce disjoint, correctly-parented trees.

Disabled overhead is a hard requirement (the benchmarks must stay
honest when not being watched): the default global tracer is
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager and allocates nothing — the cost of an instrumentation point is
a global load plus a method call.  Code on genuinely hot paths can
check ``tracer.enabled`` and skip even that.

Export to Chrome ``trace_event`` JSON and to a text report lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.context import current_query


class Instant(object):
    """A zero-duration mark attached to the enclosing span."""

    __slots__ = ("name", "category", "args", "at", "tid")

    def __init__(self, name: str, category: str, args: Dict[str, Any], at: float, tid: int):
        self.name = name
        self.category = category
        self.args = args
        self.at = at
        self.tid = tid

    def __repr__(self) -> str:
        return "Instant(%s)" % self.name


class Span(object):
    """One timed region: name, category, args, children, instants."""

    __slots__ = ("name", "category", "args", "start", "end", "children", "instants", "tid")

    def __init__(self, name: str, category: str = "", args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.category = category
        self.args: Dict[str, Any] = args or {}
        self.start: float = 0.0
        self.end: float = 0.0
        self.children: List["Span"] = []
        self.instants: List[Instant] = []
        self.tid: int = 0

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def note(self, **args: Any) -> None:
        """Attach/overwrite args after the span was opened."""
        self.args.update(args)

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name, pre-order."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def __repr__(self) -> str:
        return "Span(%s, %.4fs, %d children)" % (self.name, self.seconds, len(self.children))


class _SpanContext(object):
    """Context manager that opens/closes one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.end = time.perf_counter()
        self._tracer._pop(self._span)
        return False


class Tracer(object):
    """Records a forest of spans; one stack per thread.

    Completed top-level spans accumulate in :attr:`roots` (guarded by a
    lock, so threads may share one tracer).  ``epoch`` anchors the
    relative ``perf_counter`` timestamps for export.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.orphan_instants: List[Instant] = []
        self.epoch = time.perf_counter()
        # Wall-clock anchor for the same instant as `epoch`: spans cross
        # process boundaries (worker -> leader) as absolute wall-clock
        # times, because perf_counter readings from two processes share
        # no origin.  See span_to_wire / spans_to_wire.
        self.wall_epoch = time.time()
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def span(self, name: str, category: str = "", **args: Any) -> _SpanContext:
        """Open a span: ``with tracer.span("stage", k=v) as s: ...``."""
        return _SpanContext(self, Span(name, category, args or None))

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Record a zero-duration event under the current span."""
        mark = Instant(name, category, args, time.perf_counter(), threading.get_ident())
        stack = self._stack()
        if stack:
            stack[-1].instants.append(mark)
        else:
            with self._lock:
                self.orphan_instants.append(mark)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- inspection -----------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        """All completed spans, every root's tree pre-order."""
        for root in self.roots:
            for span in root.walk():
                yield span

    def find(self, name: str) -> Optional[Span]:
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def total_seconds(self) -> float:
        return sum(root.seconds for root in self.roots)

    # -- internals ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        span.tid = threading.get_ident()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate a corrupted stack rather than masking the user's error.
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)


class _NullSpan(object):
    """Shared no-op stand-in for both the context manager and the span."""

    __slots__ = ()
    name = ""
    category = ""
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(object):
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, category: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    def spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def total_seconds(self) -> float:
        return 0.0


#: The process-wide disabled tracer (also the default global tracer).
NULL_TRACER = NullTracer()

_current_tracer = NULL_TRACER


def get_tracer():
    """The active tracer: the current query's, else the process global.

    A live :class:`~repro.obs.context.QueryContext` with a tracer wins —
    that is what routes pipeline/engine/service spans into the per-query
    trace the tail-sampling layer keeps or drops at completion.  Outside
    a request (or when per-query tracing is off) this degrades to the
    installed global tracer (:data:`NULL_TRACER` by default).
    """
    context = current_query()
    if context is not None and context.tracer is not None:
        return context.tracer
    return _current_tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` globally; ``None`` restores the null tracer."""
    global _current_tracer
    _current_tracer = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = _current_tracer
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------------
# Span wire form: shipping span trees across process boundaries
# ---------------------------------------------------------------------------
#
# A worker's tracer and the leader's tracer have unrelated perf_counter
# epochs, so a span fragment crosses the pipe in *wall-clock* time: each
# span's start/end is rebased to `tracer.wall_epoch + (t - tracer.epoch)`.
# Wall clocks of processes on one box agree to well under a millisecond,
# which is plenty for per-query lanes; the merged-trace exporter
# re-anchors everything to the earliest span anyway, so modest skew only
# shifts lanes relative to each other, never corrupts durations.


def span_to_wire(span: Span, tracer: Tracer) -> Dict[str, Any]:
    """One span tree as JSON-safe data with wall-clock timestamps."""
    offset = tracer.wall_epoch - tracer.epoch
    out: Dict[str, Any] = {
        "name": span.name,
        "start": span.start + offset,
        "end": span.end + offset,
        "tid": span.tid,
    }
    if span.category:
        out["cat"] = span.category
    if span.args:
        out["args"] = _wire_args(span.args)
    if span.instants:
        out["instants"] = [
            {
                "name": mark.name,
                "at": mark.at + offset,
                "cat": mark.category,
                "args": _wire_args(mark.args),
            }
            for mark in span.instants
        ]
    if span.children:
        out["children"] = [span_to_wire(child, tracer) for child in span.children]
    return out


def spans_to_wire(tracer: Tracer) -> List[Dict[str, Any]]:
    """Every completed root span of ``tracer``, in wire form."""
    return [span_to_wire(root, tracer) for root in tracer.roots]


def _wire_args(args: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in args.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[key] = value
        else:
            out[key] = repr(value)
    return out


# ---------------------------------------------------------------------------
# Tail-based trace sampling
# ---------------------------------------------------------------------------


class SamplingPolicy:
    """Which per-query traces to keep, decided *at completion*.

    Tail-based sampling: every request records its (small) span tree,
    and the keep/drop decision happens once the outcome is known —

    - **head**: a probabilistic coin flipped at ingress (``rate`` in
      ``[0, 1]``); ``0.0`` keeps nothing by chance, ``1.0`` keeps
      everything, exactly (no float-comparison edge cases);
    - **slow**: a query the telemetry layer marked slow is always kept
      (``keep_slow``);
    - **errors**: a failed query is always kept (``keep_errors``).

    The point of deciding late is that the interesting traces — slow
    ones, failing ones — are precisely the ones a head-only sampler at
    a low rate would usually throw away.

    ``seed`` pins the head coin for deterministic tests; by default the
    module-level :mod:`random` generator is used.
    """

    __slots__ = ("rate", "keep_slow", "keep_errors", "_random")

    def __init__(
        self,
        rate: float = 0.05,
        keep_slow: bool = True,
        keep_errors: bool = True,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sampling rate must be in [0, 1], got %r" % (rate,))
        self.rate = rate
        self.keep_slow = keep_slow
        self.keep_errors = keep_errors
        self._random = random.Random(seed) if seed is not None else random

    def head(self) -> bool:
        """The ingress-time coin: keep this trace regardless of outcome?"""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return self._random.random() < self.rate

    def keep(self, head_sampled: bool, slow: bool, ok: bool) -> bool:
        """The completion-time decision: head ∨ (slow) ∨ (errored)."""
        if head_sampled:
            return True
        if slow and self.keep_slow:
            return True
        if not ok and self.keep_errors:
            return True
        return False

    def describe(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "keep_slow": self.keep_slow,
            "keep_errors": self.keep_errors,
        }


class TraceRing:
    """A bounded ring of kept trace fragments, keyed by ``query_id``.

    Fragments are the JSON-safe chrome-trace documents the service
    attaches to telemetry records.  The ring holds at most ``capacity``
    of them (oldest evicted first), so a service keeping every slow
    trace under sustained load still has flat memory.  Thread-safe.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("trace ring capacity must be positive, got %d" % capacity)
        self.capacity = capacity
        self._fragments: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.kept = 0
        self.dropped = 0

    def add(self, query_id: str, fragment: Dict[str, Any]) -> None:
        with self._lock:
            self.kept += 1
            self._fragments[query_id] = fragment
            self._fragments.move_to_end(query_id)
            while len(self._fragments) > self.capacity:
                self._fragments.popitem(last=False)

    def drop(self) -> None:
        """Record that a trace was discarded (sampling said no)."""
        with self._lock:
            self.dropped += 1

    def get(self, query_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._fragments.get(query_id)

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            fragments = list(self._fragments.values())
        return fragments if n is None else fragments[-n:]

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "held": len(self._fragments),
                "kept": self.kept,
                "dropped": self.dropped,
            }
