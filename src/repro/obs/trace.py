"""Hierarchical span tracing for the compiler (observability substrate).

The paper's whole evaluation (§8, Figures 7–9) is built on measuring
the compiler — per-stage compile times, optimizer behavior — and every
later performance change needs the same data to justify itself.  This
module provides the measurement primitive: a :class:`Tracer` that
records a tree of timed :class:`Span` objects (plus zero-duration
:class:`Instant` marks), with a context-manager API::

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("optimize", category="optim", rules=62):
            ...
            tracer.instant("fire", rule="map_into_id")

Spans nest via a *thread-local* span stack, so concurrent compilations
on different threads produce disjoint, correctly-parented trees.

Disabled overhead is a hard requirement (the benchmarks must stay
honest when not being watched): the default global tracer is
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager and allocates nothing — the cost of an instrumentation point is
a global load plus a method call.  Code on genuinely hot paths can
check ``tracer.enabled`` and skip even that.

Export to Chrome ``trace_event`` JSON and to a text report lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Instant(object):
    """A zero-duration mark attached to the enclosing span."""

    __slots__ = ("name", "category", "args", "at", "tid")

    def __init__(self, name: str, category: str, args: Dict[str, Any], at: float, tid: int):
        self.name = name
        self.category = category
        self.args = args
        self.at = at
        self.tid = tid

    def __repr__(self) -> str:
        return "Instant(%s)" % self.name


class Span(object):
    """One timed region: name, category, args, children, instants."""

    __slots__ = ("name", "category", "args", "start", "end", "children", "instants", "tid")

    def __init__(self, name: str, category: str = "", args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.category = category
        self.args: Dict[str, Any] = args or {}
        self.start: float = 0.0
        self.end: float = 0.0
        self.children: List["Span"] = []
        self.instants: List[Instant] = []
        self.tid: int = 0

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def note(self, **args: Any) -> None:
        """Attach/overwrite args after the span was opened."""
        self.args.update(args)

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name, pre-order."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def __repr__(self) -> str:
        return "Span(%s, %.4fs, %d children)" % (self.name, self.seconds, len(self.children))


class _SpanContext(object):
    """Context manager that opens/closes one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.end = time.perf_counter()
        self._tracer._pop(self._span)
        return False


class Tracer(object):
    """Records a forest of spans; one stack per thread.

    Completed top-level spans accumulate in :attr:`roots` (guarded by a
    lock, so threads may share one tracer).  ``epoch`` anchors the
    relative ``perf_counter`` timestamps for export.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.orphan_instants: List[Instant] = []
        self.epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def span(self, name: str, category: str = "", **args: Any) -> _SpanContext:
        """Open a span: ``with tracer.span("stage", k=v) as s: ...``."""
        return _SpanContext(self, Span(name, category, args or None))

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Record a zero-duration event under the current span."""
        mark = Instant(name, category, args, time.perf_counter(), threading.get_ident())
        stack = self._stack()
        if stack:
            stack[-1].instants.append(mark)
        else:
            with self._lock:
                self.orphan_instants.append(mark)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- inspection -----------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        """All completed spans, every root's tree pre-order."""
        for root in self.roots:
            for span in root.walk():
                yield span

    def find(self, name: str) -> Optional[Span]:
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def total_seconds(self) -> float:
        return sum(root.seconds for root in self.roots)

    # -- internals ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        span.tid = threading.get_ident()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate a corrupted stack rather than masking the user's error.
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)


class _NullSpan(object):
    """Shared no-op stand-in for both the context manager and the span."""

    __slots__ = ()
    name = ""
    category = ""
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(object):
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, category: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    def spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def total_seconds(self) -> float:
        return 0.0


#: The process-wide disabled tracer (also the default global tracer).
NULL_TRACER = NullTracer()

_current_tracer = NULL_TRACER


def get_tracer():
    """The active global tracer (:data:`NULL_TRACER` unless installed)."""
    return _current_tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` globally; ``None`` restores the null tracer."""
    global _current_tracer
    _current_tracer = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = _current_tracer
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
