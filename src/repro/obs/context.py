"""The current-query context: one identity for everything a request does.

A long-lived ``repro serve`` process interleaves many queries across a
thread pool; spans, telemetry records, log events, and EXPLAIN ANALYZE
reports are useless for debugging one request unless they all carry the
same identity.  This module provides that identity: a
:class:`QueryContext` holding a ``query_id`` (assigned once, at service
ingress) plus the per-query :class:`~repro.obs.trace.Tracer` the
tail-sampling layer records into.

The context is stored in a :mod:`contextvars` variable, not a thread
local, because one request *crosses threads*: the service accepts it on
the wire thread and executes it on a pool worker.  The executor
propagates the submitter's context into the worker with
``contextvars.copy_context()`` (see
:meth:`repro.service.executor.SessionExecutor.submit`), so
:func:`current_query` answers the same on both sides of the hop.

Deliberately import-light (stdlib only): :mod:`repro.obs.trace`,
:mod:`repro.compiler.pipeline`, and :mod:`repro.nraenv.exec` all read
the context from their hot-path entry points.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from contextlib import contextmanager
from typing import Any, Optional


def new_query_id() -> str:
    """A fresh, globally unique query id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


class QueryContext:
    """Everything request-scoped the observability layer threads along.

    - ``query_id`` — the correlation id every span, telemetry record,
      log event, and analyze report for this request carries;
    - ``tracer`` — the per-query tracer tail sampling records into
      (``None`` when per-query tracing is disabled; spans then go to
      whatever global tracer is installed);
    - ``started_at`` — wall-clock ingress time (``time.time()``);
    - ``head_sampled`` — the probabilistic head-sampling decision, made
      at ingress; the final keep decision (head ∨ slow ∨ error) happens
      at completion (:meth:`repro.obs.trace.SamplingPolicy.keep`).
    """

    __slots__ = ("query_id", "tracer", "started_at", "head_sampled")

    def __init__(
        self,
        query_id: Optional[str] = None,
        tracer: Any = None,
        started_at: Optional[float] = None,
        head_sampled: bool = False,
    ):
        self.query_id = query_id if query_id is not None else new_query_id()
        self.tracer = tracer
        self.started_at = time.time() if started_at is None else started_at
        self.head_sampled = head_sampled

    def to_wire(self, record_trace: Optional[bool] = None) -> dict:
        """The context as plain data for the leader→worker pipe.

        ``record_trace`` tells the receiving worker whether to record
        spans at all; it defaults to "this context has a tracer", which
        is exactly the leader's tail-sampling configuration (a tracer
        exists whenever sampling is enabled — the keep/drop decision
        happens back on the leader, at completion, over the *merged*
        trace).
        """
        return {
            "query_id": self.query_id,
            "started_at": self.started_at,
            "head_sampled": self.head_sampled,
            "record_trace": (
                self.tracer is not None if record_trace is None else record_trace
            ),
        }

    @classmethod
    def from_wire(cls, payload: dict, tracer: Any = None) -> "QueryContext":
        """Rebuild the propagated context in a worker process.

        ``tracer`` is the worker-local tracer to record into (the caller
        creates one when ``payload["record_trace"]`` asks for it; this
        module stays import-light and never constructs tracers itself).
        """
        return cls(
            query_id=payload.get("query_id"),
            tracer=tracer,
            started_at=payload.get("started_at"),
            head_sampled=bool(payload.get("head_sampled", False)),
        )

    def __repr__(self) -> str:
        return "QueryContext(%s%s)" % (
            self.query_id,
            ", traced" if self.tracer is not None else "",
        )


_CURRENT_QUERY: "contextvars.ContextVar[Optional[QueryContext]]" = contextvars.ContextVar(
    "repro_current_query", default=None
)


def current_query() -> Optional[QueryContext]:
    """The active :class:`QueryContext`, or ``None`` outside a request."""
    return _CURRENT_QUERY.get()


def current_query_id() -> Optional[str]:
    """The active query id, or ``None`` outside a request."""
    context = _CURRENT_QUERY.get()
    return context.query_id if context is not None else None


@contextmanager
def query_context(context: QueryContext):
    """Install ``context`` as the current query for the block.

    Uses set/reset tokens, so nested scopes restore correctly and
    concurrent tasks (threads via ``copy_context``) never see each
    other's context.
    """
    token = _CURRENT_QUERY.set(context)
    try:
        yield context
    finally:
        _CURRENT_QUERY.reset(token)


__all__ = [
    "QueryContext",
    "current_query",
    "current_query_id",
    "new_query_id",
    "query_context",
]
