"""Exporters for traces and metrics.

Two consumers:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (open ``chrome://tracing`` or
  https://ui.perfetto.dev and load the file).  Spans become complete
  ("ph": "X") events with microsecond timestamps relative to the
  tracer's epoch; instants become "ph": "i" events.
- :func:`text_report` — a human-readable span tree plus a metrics
  digest, for ``repro compile --profile``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import Instant, Span, Tracer

#: trace_event files carry integer microseconds.
_US = 1_000_000


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten the tracer's span forest into ``traceEvents`` dicts."""
    events: List[Dict[str, Any]] = []

    def emit_span(span: Span) -> None:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "repro",
            "ph": "X",
            "ts": round((span.start - tracer.epoch) * _US, 3),
            "dur": round(span.seconds * _US, 3),
            "pid": 1,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = _plain(span.args)
        events.append(event)
        for mark in span.instants:
            emit_instant(mark)
        for child in span.children:
            emit_span(child)

    def emit_instant(mark: Instant) -> None:
        event: Dict[str, Any] = {
            "name": mark.name,
            "cat": mark.category or "repro",
            "ph": "i",
            "s": "t",
            "ts": round((mark.at - tracer.epoch) * _US, 3),
            "pid": 1,
            "tid": mark.tid,
        }
        if mark.args:
            event["args"] = _plain(mark.args)
        events.append(event)

    for root in tracer.roots:
        emit_span(root)
    for mark in tracer.orphan_instants:
        emit_instant(mark)
    return events


def chrome_trace(tracer: Tracer, metrics=None) -> Dict[str, Any]:
    """The complete trace_event document (optionally with a metrics dump)."""
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": metrics.snapshot()}
    return document


def write_chrome_trace(path: str, tracer: Tracer, metrics=None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, metrics), handle, indent=1)


def _plain(args: Dict[str, Any]) -> Dict[str, Any]:
    """Make span args JSON-safe (reprs for plans and other rich objects)."""
    out: Dict[str, Any] = {}
    for key, value in args.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def text_report(tracer: Optional[Tracer] = None, metrics=None) -> str:
    """Render the span tree and metrics digest as indented text."""
    lines: List[str] = []
    if tracer is not None and tracer.roots:
        lines.append("trace:")

        def walk(span: Span, depth: int) -> None:
            label = span.name
            extras = []
            if span.args:
                extras = ["%s=%s" % (k, v) for k, v in span.args.items()]
            if span.instants:
                extras.append("%d events" % len(span.instants))
            suffix = ("  [" + ", ".join(extras) + "]") if extras else ""
            lines.append(
                "  %s%-*s %9.3f ms%s"
                % ("  " * depth, max(1, 46 - 2 * depth), label, span.seconds * 1e3, suffix)
            )
            for child in span.children:
                walk(child, depth + 1)

        for root in tracer.roots:
            walk(root, 0)
    if metrics is not None:
        snapshot = metrics.snapshot()
        live_counters = {n: v for n, v in snapshot["counters"].items() if v}
        if live_counters:
            lines.append("counters:")
            for name, value in live_counters.items():
                lines.append("  %-46s %12d" % (name, value))
        live_gauges = {n: v for n, v in snapshot["gauges"].items() if v}
        if live_gauges:
            lines.append("gauges:")
            for name, value in live_gauges.items():
                lines.append("  %-46s %12s" % (name, value))
        live_histograms = {n: s for n, s in snapshot["histograms"].items() if s["count"]}
        if live_histograms:
            lines.append("histograms:")
            for name, summary in live_histograms.items():
                lines.append(
                    "  %-46s count=%d min=%s mean=%.1f max=%s"
                    % (name, summary["count"], summary["min"], summary["mean"], summary["max"])
                )
    if not lines:
        return "(no observability data recorded)\n"
    return "\n".join(lines) + "\n"
