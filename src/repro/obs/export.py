"""Exporters for traces and metrics.

Two consumers:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (open ``chrome://tracing`` or
  https://ui.perfetto.dev and load the file).  Spans become complete
  ("ph": "X") events with microsecond timestamps relative to the
  tracer's epoch; instants become "ph": "i" events.
- :func:`text_report` — a human-readable span tree plus a metrics
  digest, for ``repro compile --profile``.
- :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4), so a long-lived ``repro serve`` session can be
  scraped (directly over HTTP via ``repro serve --obs-port``, or
  through the ``metrics`` wire op).  Counters become
  ``repro_<name>_total``; each histogram is exposed twice: as a summary
  with interpolated ``quantile`` labels (what dashboards want) and as a
  proper cumulative ``le``-bucket histogram under ``<name>_buckets``
  (the registry's power-of-two buckets cumulate exactly, and the
  histogram form is what PromQL's ``histogram_quantile`` needs).
  Every family gets ``# HELP``/``# TYPE`` lines, and family names are
  collision-safe: two instrument names that sanitize to the same metric
  name get deterministic ``_2``, ``_3``… suffixes instead of emitting
  one family twice (which scrapers reject).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import Instant, Span, Tracer

#: trace_event files carry integer microseconds.
_US = 1_000_000


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten the tracer's span forest into ``traceEvents`` dicts."""
    events: List[Dict[str, Any]] = []

    def emit_span(span: Span) -> None:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "repro",
            "ph": "X",
            "ts": round((span.start - tracer.epoch) * _US, 3),
            "dur": round(span.seconds * _US, 3),
            "pid": 1,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = _plain(span.args)
        events.append(event)
        for mark in span.instants:
            emit_instant(mark)
        for child in span.children:
            emit_span(child)

    def emit_instant(mark: Instant) -> None:
        event: Dict[str, Any] = {
            "name": mark.name,
            "cat": mark.category or "repro",
            "ph": "i",
            "s": "t",
            "ts": round((mark.at - tracer.epoch) * _US, 3),
            "pid": 1,
            "tid": mark.tid,
        }
        if mark.args:
            event["args"] = _plain(mark.args)
        events.append(event)

    for root in tracer.roots:
        emit_span(root)
    for mark in tracer.orphan_instants:
        emit_instant(mark)
    return events


def chrome_trace(tracer: Tracer, metrics=None) -> Dict[str, Any]:
    """The complete trace_event document (optionally with a metrics dump)."""
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": metrics.snapshot()}
    return document


def write_chrome_trace(path: str, tracer: Tracer, metrics=None) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, metrics), handle, indent=1)


def merged_chrome_events(processes: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Chrome trace_event dicts for a *merged*, multi-process trace.

    ``processes`` is the merged-fragment shape the service builds:
    ``[{"process": "leader", "spans": [wire span trees]}, {"process":
    "w0", ...}]`` with wall-clock span times (see
    :func:`repro.obs.trace.span_to_wire`).  Each process gets its own
    ``pid`` lane plus a ``process_name`` metadata event, so Perfetto /
    ``chrome://tracing`` renders leader and worker spans as labelled
    parallel tracks of one trace.  Timestamps are rebased to the
    earliest span start across all processes.
    """
    events: List[Dict[str, Any]] = []
    epoch = None
    for entry in processes:
        for span in entry.get("spans", ()):
            start = span.get("start", 0.0)
            if epoch is None or start < epoch:
                epoch = start
    if epoch is None:
        epoch = 0.0

    def emit(span: Dict[str, Any], pid: int) -> None:
        event: Dict[str, Any] = {
            "name": span.get("name", ""),
            "cat": span.get("cat") or "repro",
            "ph": "X",
            "ts": round((span.get("start", 0.0) - epoch) * _US, 3),
            "dur": round(max(0.0, span.get("end", 0.0) - span.get("start", 0.0)) * _US, 3),
            "pid": pid,
            "tid": span.get("tid", 0),
        }
        if span.get("args"):
            event["args"] = span["args"]
        events.append(event)
        for mark in span.get("instants", ()):
            instant: Dict[str, Any] = {
                "name": mark.get("name", ""),
                "cat": mark.get("cat") or "repro",
                "ph": "i",
                "s": "t",
                "ts": round((mark.get("at", 0.0) - epoch) * _US, 3),
                "pid": pid,
                "tid": span.get("tid", 0),
            }
            if mark.get("args"):
                instant["args"] = mark["args"]
            events.append(instant)
        for child in span.get("children", ()):
            emit(child, pid)

    for index, entry in enumerate(processes):
        pid = index + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": entry.get("process", "p%d" % pid)},
            }
        )
        for span in entry.get("spans", ()):
            emit(span, pid)
    return events


def render_trace_tree(fragment: Dict[str, Any]) -> str:
    """A merged trace fragment as an indented per-process text tree.

    This is what ``repro trace <query_id>`` prints: one lane per
    process (leader first, then each worker), spans indented by depth
    with millisecond durations and their args.  Works on the fragment
    shape ``GET /trace/<query_id>`` returns.
    """
    lines: List[str] = []
    query_id = fragment.get("query_id")
    processes = fragment.get("processes", [])
    lines.append(
        "trace %s (%d process%s)"
        % (query_id or "?", len(processes), "" if len(processes) == 1 else "es")
    )

    def walk(span: Dict[str, Any], depth: int) -> None:
        extras = ["%s=%s" % (k, v) for k, v in (span.get("args") or {}).items()]
        if span.get("instants"):
            extras.append("%d events" % len(span["instants"]))
        suffix = ("  [" + ", ".join(extras) + "]") if extras else ""
        seconds = max(0.0, span.get("end", 0.0) - span.get("start", 0.0))
        lines.append(
            "  %s%-*s %9.3f ms%s"
            % (
                "  " * depth,
                max(1, 44 - 2 * depth),
                span.get("name", ""),
                seconds * 1e3,
                suffix,
            )
        )
        for child in span.get("children", ()):
            walk(child, depth + 1)

    for entry in processes:
        lines.append("  [%s]" % entry.get("process", "?"))
        for span in entry.get("spans", ()):
            walk(span, 1)
    return "\n".join(lines) + "\n"


def _plain(args: Dict[str, Any]) -> Dict[str, Any]:
    """Make span args JSON-safe (reprs for plans and other rich objects)."""
    out: Dict[str, Any] = {}
    for key, value in args.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def text_report(tracer: Optional[Tracer] = None, metrics=None) -> str:
    """Render the span tree and metrics digest as indented text."""
    lines: List[str] = []
    if tracer is not None and tracer.roots:
        lines.append("trace:")

        def walk(span: Span, depth: int) -> None:
            label = span.name
            extras = []
            if span.args:
                extras = ["%s=%s" % (k, v) for k, v in span.args.items()]
            if span.instants:
                extras.append("%d events" % len(span.instants))
            suffix = ("  [" + ", ".join(extras) + "]") if extras else ""
            lines.append(
                "  %s%-*s %9.3f ms%s"
                % ("  " * depth, max(1, 46 - 2 * depth), label, span.seconds * 1e3, suffix)
            )
            for child in span.children:
                walk(child, depth + 1)

        for root in tracer.roots:
            walk(root, 0)
    if metrics is not None:
        snapshot = metrics.snapshot()
        live_counters = {n: v for n, v in snapshot["counters"].items() if v}
        if live_counters:
            lines.append("counters:")
            for name, value in live_counters.items():
                lines.append("  %-46s %12d" % (name, value))
        live_gauges = {n: v for n, v in snapshot["gauges"].items() if v}
        if live_gauges:
            lines.append("gauges:")
            for name, value in live_gauges.items():
                lines.append("  %-46s %12s" % (name, value))
        live_histograms = {n: s for n, s in snapshot["histograms"].items() if s["count"]}
        if live_histograms:
            lines.append("histograms:")
            for name, summary in live_histograms.items():
                lines.append(
                    "  %-46s count=%d min=%s mean=%.1f p50=%s p95=%s p99=%s max=%s"
                    % (
                        name,
                        summary["count"],
                        summary["min"],
                        summary["mean"],
                        _quantile_text(summary.get("p50")),
                        _quantile_text(summary.get("p95")),
                        _quantile_text(summary.get("p99")),
                        summary["max"],
                    )
                )
    if not lines:
        return "(no observability data recorded)\n"
    return "\n".join(lines) + "\n"


def _quantile_text(value) -> str:
    if value is None:
        return "-"
    return "%.1f" % value


def _prom_name(name: str) -> str:
    """Sanitize an instrument name into a Prometheus metric name."""
    sanitized = []
    for char in name:
        if char.isalnum() or char in "_:":
            sanitized.append(char)
        else:
            sanitized.append("_")
    candidate = "".join(sanitized)
    if candidate and candidate[0].isdigit():
        candidate = "_" + candidate
    return "repro_" + candidate


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return "0"


def _prom_family(base: str, origin: str, used: Dict[str, str]) -> str:
    """Claim a unique metric-family name for instrument ``origin``.

    Sanitizing is lossy ("a.b" and "a_b" both become ``repro_a_b``), and
    the exposition format forbids emitting one family twice, so later
    claimants of a taken name get a deterministic ``_2``, ``_3``…
    suffix (stable because instruments render in sorted order).
    """
    candidate = base
    suffix = 2
    while candidate in used and used[candidate] != origin:
        candidate = "%s_%d" % (base, suffix)
        suffix += 1
    used[candidate] = origin
    return candidate


def _bucket_upper_bound(bucket: int) -> int:
    """The inclusive upper bound of power-of-two bucket ``bucket``."""
    return 1 if bucket == 0 else 1 << bucket


def prometheus_text(metrics, fleet=None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Output is deterministic (instruments sorted by name) and ends with
    a trailing newline, as the format requires.  Non-numeric gauge
    values are skipped — Prometheus samples are floats only.  Each
    registry histogram renders as both a quantile summary (under its
    own name) and a cumulative ``le``-bucket histogram (under
    ``<name>_buckets``): the registry's bucket ``k`` counts values in
    ``(2**(k-1), 2**k]``, so the running total over ascending ``k`` is
    exactly the count of values ``<= 2**k`` the ``le`` contract wants.

    ``fleet`` (a :class:`repro.service.fleet.Fleet`, or anything with a
    ``worker_snapshots()`` method) adds the per-worker series: each
    worker-registry instrument becomes one ``repro_worker_*`` family —
    HELP/TYPE emitted once — with one sample per worker carrying a
    ``worker`` label.  The ``worker_`` prefix keeps fleet families
    collision-safe against the leader's own families (the leader runs
    the same instruments under their unprefixed names), and the shared
    ``used`` map still deduplicates lossy sanitizations inside the
    fleet section itself.
    """
    snapshot = metrics.snapshot()
    lines: List[str] = []
    used: Dict[str, str] = {}

    def header(metric: str, origin: str, kind: str) -> None:
        lines.append("# HELP %s repro instrument %s" % (metric, origin))
        lines.append("# TYPE %s %s" % (metric, kind))

    for name, value in snapshot["counters"].items():
        metric = _prom_family(_prom_name(name) + "_total", name, used)
        header(metric, name, "counter")
        lines.append("%s %s" % (metric, _prom_value(value)))
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        metric = _prom_family(_prom_name(name), name, used)
        header(metric, name, "gauge")
        lines.append("%s %s" % (metric, _prom_value(value)))
    for name, summary in snapshot["histograms"].items():
        metric = _prom_family(_prom_name(name), name, used)
        header(metric, name, "summary")
        for label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            value = summary.get(key)
            if value is not None:
                lines.append('%s{quantile="%s"} %s' % (metric, label, _prom_value(float(value))))
        lines.append("%s_sum %s" % (metric, _prom_value(summary["sum"])))
        lines.append("%s_count %s" % (metric, _prom_value(summary["count"])))
        histogram = _prom_family(_prom_name(name) + "_buckets", name, used)
        header(histogram, name, "histogram")
        cumulative = 0
        for bucket, tally in sorted(summary["buckets"].items()):
            cumulative += tally
            lines.append(
                '%s_bucket{le="%d"} %d' % (histogram, _bucket_upper_bound(bucket), cumulative)
            )
        lines.append('%s_bucket{le="+Inf"} %d' % (histogram, summary["count"]))
        lines.append("%s_sum %s" % (histogram, _prom_value(summary["sum"])))
        lines.append("%s_count %s" % (histogram, _prom_value(summary["count"])))
    if fleet is not None:
        _fleet_lines(fleet, lines, used, header)
    if not lines:
        return "# (no metrics recorded)\n"
    return "\n".join(lines) + "\n"


def _fleet_lines(fleet, lines: List[str], used: Dict[str, str], header) -> None:
    """Worker-labeled families: one family per instrument, one sample
    per worker.  Regrouped so HELP/TYPE appear exactly once per family
    even with many workers (scrapers reject duplicate declarations)."""
    snapshots = fleet.worker_snapshots()
    if not snapshots:
        return
    workers = sorted(snapshots)
    by_kind: Dict[str, Dict[str, Dict[str, Any]]] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for worker in workers:
        snapshot = snapshots[worker]
        for kind in by_kind:
            for name, value in snapshot.get(kind, {}).items():
                by_kind[kind].setdefault(name, {})[worker] = value
    for name in sorted(by_kind["counters"]):
        origin = "worker." + name
        metric = _prom_family(_prom_name(origin) + "_total", origin, used)
        header(metric, origin, "counter")
        for worker, value in sorted(by_kind["counters"][name].items()):
            lines.append('%s{worker="%s"} %s' % (metric, worker, _prom_value(value)))
    for name in sorted(by_kind["gauges"]):
        origin = "worker." + name
        metric = None
        for worker, value in sorted(by_kind["gauges"][name].items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if metric is None:
                metric = _prom_family(_prom_name(origin), origin, used)
                header(metric, origin, "gauge")
            lines.append('%s{worker="%s"} %s' % (metric, worker, _prom_value(value)))
    for name in sorted(by_kind["histograms"]):
        origin = "worker." + name
        per_worker = by_kind["histograms"][name]
        metric = _prom_family(_prom_name(origin), origin, used)
        header(metric, origin, "summary")
        for worker, summary in sorted(per_worker.items()):
            for label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                value = summary.get(key)
                if value is not None:
                    lines.append(
                        '%s{worker="%s",quantile="%s"} %s'
                        % (metric, worker, label, _prom_value(float(value)))
                    )
            lines.append(
                '%s_sum{worker="%s"} %s' % (metric, worker, _prom_value(summary["sum"]))
            )
            lines.append(
                '%s_count{worker="%s"} %s'
                % (metric, worker, _prom_value(summary["count"]))
            )
        histogram = _prom_family(_prom_name(origin) + "_buckets", origin, used)
        header(histogram, origin, "histogram")
        for worker, summary in sorted(per_worker.items()):
            cumulative = 0
            for bucket, tally in sorted(summary["buckets"].items()):
                cumulative += tally
                lines.append(
                    '%s_bucket{worker="%s",le="%d"} %d'
                    % (histogram, worker, _bucket_upper_bound(bucket), cumulative)
                )
            lines.append(
                '%s_bucket{worker="%s",le="+Inf"} %d'
                % (histogram, worker, summary["count"])
            )
            lines.append(
                '%s_sum{worker="%s"} %s'
                % (histogram, worker, _prom_value(summary["sum"]))
            )
            lines.append(
                '%s_count{worker="%s"} %s'
                % (histogram, worker, _prom_value(summary["count"]))
            )
